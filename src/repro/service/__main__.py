"""``python -m repro.service`` / ``repro-service`` — run the analysis
service as a long-lived process.

The process serves until SIGTERM or SIGINT, then *drains*: the HTTP
listener closes, every accepted job runs to completion, and a one-line
summary is printed before exit — the contract an orchestrator's
rolling restart relies on.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from typing import List, Optional

from repro import obs
from repro.obs.slo import objectives_from_env
from repro.service.api import AnalysisService, ServiceConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-service",
        description="Serve snapshot analysis over an HTTP JSON API.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8585,
        help="TCP port (0 binds an ephemeral port, printed at startup)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="analysis worker threads (default 2)",
    )
    parser.add_argument(
        "--queue-size", type=int, default=64,
        help="bounded queue capacity; beyond it requests get 429",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-job deadline (default: none)",
    )
    parser.add_argument(
        "--wait", type=float, default=30.0, metavar="SECONDS",
        help="max synchronous wait before a question POST returns 202",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed snapshot cache directory "
        "(default: no cache; honors REPRO_CACHE_MAX_BYTES)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="JSONL",
        help="enable repro.obs tracing to this file",
    )
    parser.add_argument(
        "--debug-questions", action="store_true",
        help="expose debug questions (sleep) — tests/load drills only",
    )
    parser.add_argument("--verbose", action="store_true",
                        help="log one line per HTTP request")
    parser.add_argument(
        "--slo", action="append", default=[], metavar="QUESTION=SECONDS",
        help="per-question latency objective, e.g. --slo routes=2 "
        "--slo '*=30' (repeatable; merges over REPRO_SLO)",
    )
    parser.add_argument(
        "--slo-target", type=float, default=None, metavar="RATIO",
        help="SLO success-ratio target (default 0.99 = 1%% error budget)",
    )
    parser.add_argument(
        "--profile-hz", type=float, default=0.0, metavar="HZ",
        help="enable the sampling profiler at this rate "
        "(REPRO_PROFILE_HZ also enables it)",
    )
    parser.add_argument(
        "--flight-dump", default=None, metavar="JSON",
        help="write the flight-recorder ring + postmortem bundles to "
        "this file after drain (REPRO_FLIGHT_DUMP also enables it)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.trace:
        obs.enable(args.trace)
    slos = objectives_from_env(",".join(args.slo)) if args.slo else {}
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_queue=args.queue_size,
        default_timeout_s=args.timeout,
        wait_s=args.wait,
        cache=args.cache_dir,
        debug=args.debug_questions,
        verbose=args.verbose,
        slos=slos,
        profile_hz=args.profile_hz,
    )
    if args.slo_target is not None:
        config.slo_target = args.slo_target
    service = AnalysisService(config)
    service.start()
    print(
        f"repro.service listening on http://{args.host}:{service.port} "
        f"(workers={args.workers}, queue={args.queue_size})",
        flush=True,
    )

    stop_requested = threading.Event()

    def _request_stop(signum, frame):
        stop_requested.set()

    signal.signal(signal.SIGTERM, _request_stop)
    signal.signal(signal.SIGINT, _request_stop)
    stop_requested.wait()

    print("repro.service draining in-flight jobs ...", flush=True)
    # Freeze a bundle at the moment of the signal: what was queued and
    # running right before the drain is exactly what a postmortem of a
    # rolling restart gone wrong needs.
    obs.flight.snapshot_bundle(
        "sigterm", queue=service.queue.stats(), snapshots=len(service.store)
    )
    drained = service.stop(drain=True)
    stats = service.queue.stats()
    print(
        "repro.service drained: "
        f"completed={stats['completed']} failed={stats['failed']} "
        f"cancelled={stats['cancelled']} coalesced={stats['coalesced']} "
        f"clean={drained}",
        flush=True,
    )
    dump_path = args.flight_dump or obs.flight.dump_path_from_env()
    if dump_path:
        obs.flight.recorder().dump_to(dump_path)
        print(f"repro.service flight recorder dumped to {dump_path}", flush=True)
    if obs.enabled():
        obs.flush()
    return 0


if __name__ == "__main__":
    sys.exit(main())
