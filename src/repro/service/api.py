"""The HTTP JSON API over the snapshot store and job queue.

Dependency-free: one :class:`ThreadingHTTPServer` (stdlib) whose
request threads validate, enqueue, and optionally wait; all heavy
computation happens on the :class:`JobQueue` workers, so a slow
question never starves the accept loop.

Surface (all bodies JSON)::

    GET    /healthz                              liveness + queue depth
    GET    /metrics                              service counters + obs dump
    GET    /questions                            available question names
    GET    /snapshots                            list snapshot records
    POST   /snapshots                            {name, configs, settings?, force?}
    GET    /snapshots/{name}                     one record
    GET    /snapshots/{name}/coverage            per-question coverage + blind spots
    PATCH  /snapshots/{name}                     {configs} incremental update
    DELETE /snapshots/{name}
    POST   /snapshots/{name}/questions/{q}       {params?, timeout_s?, wait?}
    GET    /jobs/{id}                            job status / result / error
    DELETE /jobs/{id}                            cancel (queued jobs only)

Question POSTs block (up to ``wait_s``) for the synchronous case and
return 202 + a job id when still in flight (``wait=false`` skips the
wait entirely). Failures come back as the job's structured error with
its HTTP status — 422 for analysis failures like non-convergence, 429
when the bounded queue sheds load, 404/400 for bad names and params.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import re
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro import obs
from repro.obs import context as obs_context
from repro.obs import profiler
from repro.obs import slo as slo_mod
from repro.obs.prom import render_exposition
from repro.core.cache import resolve_cache
from repro.service.errors import (
    InvalidRequestError,
    NotFoundError,
    ServiceError,
    UnknownQuestionError,
)
from repro.service.jobs import Job, JobQueue, JobStatus
from repro.service.serialize import (
    ASYNC_QUESTIONS,
    DEBUG_QUESTIONS,
    QUESTIONS,
    run_question,
    settings_from_json,
)
from repro.service.store import SnapshotStore


@dataclass
class ServiceConfig:
    """Knobs for one service instance (CLI flags map 1:1)."""

    host: str = "127.0.0.1"
    port: int = 8585  # 0 = ephemeral (bound port on AnalysisService.port)
    workers: int = 2
    max_queue: int = 64
    #: Per-job deadline (queue wait); None = no deadline.
    default_timeout_s: Optional[float] = None
    #: How long a synchronous POST waits before returning 202.
    wait_s: float = 30.0
    #: Snapshot cache: None/False off, True = REPRO_CACHE_DIR, str = dir.
    cache: object = None
    #: Expose debug questions (``sleep``) — tests and load drills only.
    debug: bool = False
    #: Log one line per request to stderr.
    verbose: bool = False
    #: Per-question latency objectives (seconds; "*" = default). Merged
    #: over REPRO_SLO; see :mod:`repro.obs.slo`.
    slos: Dict[str, float] = field(default_factory=dict)
    #: SLO success-ratio target (0.99 = 1% error budget).
    slo_target: float = slo_mod.DEFAULT_TARGET
    #: Sampling-profiler rate; 0 = off (REPRO_PROFILE_HZ also enables).
    profile_hz: float = 0.0


class AnalysisService:
    """The long-running analysis service: store + queue + HTTP front."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        # A deployed service always populates /metrics; full span
        # tracing stays a separate opt-in (REPRO_TRACE / --trace).
        obs.enable_metrics()
        if self.config.profile_hz > 0:
            profiler.start(self.config.profile_hz)
        else:
            profiler.maybe_start_from_env()
        self.cache = resolve_cache(self.config.cache)
        self.store = SnapshotStore(cache=self.cache)
        objectives = dict(slo_mod.objectives_from_env())
        objectives.update(self.config.slos)
        self.slo = slo_mod.SloTracker(
            objectives=objectives,
            target=self.config.slo_target,
            metrics=obs.metrics(),
        )
        self.queue = JobQueue(
            executor=self._execute,
            workers=self.config.workers,
            max_queue=self.config.max_queue,
            default_timeout_s=self.config.default_timeout_s,
            slo=self.slo,
            bundle_extras=self._bundle_extras,
        )
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def _bundle_extras(self) -> Dict:
        """Service-level context folded into every postmortem bundle."""
        extras: Dict = {"snapshots": len(self.store)}
        if self.cache is not None:
            extras["cache"] = self.cache.stats()
        return extras

    # -- job execution -----------------------------------------------------

    def _execute(self, job: Job) -> Dict:
        return run_question(
            self.store, job.snapshot, job.question, job.params,
            debug=self.config.debug,
        )

    def submit_question(
        self,
        snapshot: str,
        question: str,
        params: Optional[Dict] = None,
        timeout_s: Optional[float] = None,
        ctx: Optional[obs_context.RequestContext] = None,
    ) -> Tuple[Job, bool]:
        """Validate and enqueue one question; returns (job, coalesced).

        Validation happens before enqueue so bad requests fail fast with
        400/404 instead of occupying a queue slot; the coalesce key is
        the snapshot's *content* key plus the canonical params, so two
        names holding identical configs (and settings) coalesce too.
        """
        params = params or {}
        if not isinstance(params, dict):
            raise InvalidRequestError("params must be an object")
        known = question in QUESTIONS or (
            self.config.debug and question in DEBUG_QUESTIONS
        )
        if not known:
            raise UnknownQuestionError(
                f"unknown question {question!r}", available=sorted(QUESTIONS)
            )
        session = self.store.get(snapshot)  # 404 before taking a slot
        try:
            canonical = json.dumps(params, sort_keys=True, separators=(",", ":"))
        except (TypeError, ValueError):
            raise InvalidRequestError("params must be JSON-serializable") from None
        digest = hashlib.sha256(session.snapshot_key.encode())
        digest.update(f"|{question}|{canonical}".encode())
        if ctx is None:
            ctx = obs_context.current()
        if ctx is not None and timeout_s is not None and ctx.deadline_ts is None:
            # The job deadline doubles as the request deadline, so
            # everything downstream can ask "how long do I have left".
            ctx = dataclasses.replace(ctx, deadline_ts=time.time() + timeout_s)
        # Stamp the question onto the context now, so coverage touches
        # are attributed even on paths that execute before the queue
        # worker's own attribution scope (coalesced waits, future
        # inline fast paths).
        if ctx is None:
            ctx = obs_context.RequestContext(request_id="", question=question)
        elif ctx.question != question:
            ctx = dataclasses.replace(ctx, question=question)
        return self.queue.submit(
            snapshot=snapshot,
            question=question,
            params=params,
            coalesce_key=digest.hexdigest(),
            timeout_s=timeout_s,
            ctx=ctx,
        )

    # -- introspection payloads --------------------------------------------

    def healthz(self) -> Dict:
        """Liveness: always 200 while the process serves requests."""
        return {
            "status": "ok" if self.queue.accepting else "draining",
            "snapshots": len(self.store),
            "queue_depth": self.queue.depth(),
            "queue_oldest_age_seconds": round(self.queue.oldest_age(), 3),
        }

    def readyz(self) -> Tuple[int, Dict]:
        """Readiness: 503 while draining or while the bounded queue is
        saturated — the load balancer should stop routing here, even
        though in-flight work is still being served (liveness stays
        200)."""
        depth = self.queue.depth()
        payload: Dict = {
            "ready": True,
            "queue_depth": depth,
            "queue_oldest_age_seconds": round(self.queue.oldest_age(), 3),
        }
        if not self.queue.accepting:
            payload["ready"] = False
            payload["reason"] = "draining"
            return 503, payload
        if depth >= self.queue.max_queue:
            payload["ready"] = False
            payload["reason"] = "saturated"
            return 503, payload
        return 200, payload

    def coverage_payload(self, name: str, witnesses: int = 0) -> Dict:
        """Per-question attribution matrix, recorded runs, and the
        uncovered-stanza list for snapshot ``name``. ``witnesses`` > 0
        synthesizes up to that many probe packets for reachable
        uncovered ACL lines."""
        from repro.questions import coverage as qcov

        session = self.store.get(name)
        payload = qcov.coverage_payload(session, witnesses=witnesses)
        payload["name"] = name
        return payload

    def metrics_payload(self) -> Dict:
        payload = {
            "queue": self.queue.stats(),
            "snapshots": len(self.store),
            "slo": self.slo.payload(),
            "flight": obs.flight.recorder().stats(),
            "obs": obs.metrics_dump(),
        }
        if self.cache is not None:
            payload["cache"] = self.cache.stats()
        return payload

    def prometheus_payload(self) -> str:
        """The registry plus service-level extras as Prometheus text
        exposition (version 0.0.4)."""
        stats = self.queue.stats()
        gauge_keys = ("depth", "running", "workers", "oldest_age_seconds")
        extra_gauges = {
            f"service.queue.{key}": float(stats[key]) for key in gauge_keys
        }
        extra_gauges["service.snapshots"] = float(len(self.store))
        extra_gauges.update(self.slo.gauges())
        # Queue/cache lifetime totals are always-on counters of their
        # own (they predate metrics_enabled); export them under
        # distinct names so they never collide with the obs registry's
        # service.jobs.* counters.
        extra_counters = {
            f"service.queue.{key}": float(value)
            for key, value in stats.items()
            if key not in gauge_keys
        }
        if self.cache is not None:
            extra_counters.update(
                {
                    f"service.cache.{key}": float(value)
                    for key, value in self.cache.stats().items()
                    if isinstance(value, (int, float))
                }
            )
        # Coverage attribution over the union of the stored snapshots:
        # repro_coverage_ratio{question, kind} gauges plus the
        # uncovered-stanza count (computed at scrape time — dashboards
        # poll this far less often than questions run).
        from repro.questions import coverage as qcov

        snapshots = []
        for record in self.store.list():
            try:
                snapshots.append(self.store.get(record.name).snapshot)
            except ServiceError:
                continue  # deleted between list and get
        labeled_gauges, uncovered = qcov.prometheus_coverage(
            obs.coverage(), snapshots
        )
        extra_counters["uncovered_stanzas"] = float(uncovered)
        return render_exposition(
            obs.metrics(),
            extra_counters=extra_counters,
            extra_gauges=extra_gauges,
            extra_labeled_gauges=labeled_gauges,
        )

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (meaningful after start(); supports port=0)."""
        if self._httpd is None:
            return self.config.port
        return self._httpd.server_address[1]

    def start(self) -> None:
        """Bind and serve on a background thread."""
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-service-http",
            daemon=True,
        )
        self._thread.start()

    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> bool:
        """Stop accepting, optionally drain in-flight jobs, shut down.

        The HTTP listener closes first so no new work arrives while the
        queue finishes what it already accepted (the SIGTERM path).
        """
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        return self.queue.stop(drain=drain, timeout=timeout)


# ----------------------------------------------------------------------
# HTTP plumbing

_SNAPSHOT_PATH = re.compile(r"^/snapshots/([^/]+)$")
_COVERAGE_PATH = re.compile(r"^/snapshots/([^/]+)/coverage$")
_QUESTION_PATH = re.compile(r"^/snapshots/([^/]+)/questions/([^/]+)$")
_JOB_PATH = re.compile(r"^/jobs/([^/]+)$")

#: Cap request bodies (configs can be large, but not unbounded).
_MAX_BODY = 64 * 1024 * 1024


def _make_handler(service: AnalysisService):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        # -- helpers -------------------------------------------------------

        def log_message(self, fmt, *args):  # noqa: N802 (stdlib name)
            if service.config.verbose:
                super().log_message(fmt, *args)

        def _begin_ctx(self):
            """Mint (or adopt from ``X-Request-Id``) the request context
            for this HTTP request; every span/metric/flight event down
            the line — including inside pmap pool workers — carries its
            request_id. Returns the contextvars token for deactivate."""
            rid = (self.headers.get("X-Request-Id") or "").strip()
            ctx = obs_context.RequestContext(
                request_id=rid or obs_context.new_request_id(),
                tenant=(self.headers.get("X-Tenant") or "").strip(),
            )
            self._rid = ctx.request_id
            return obs_context.activate(ctx)

        def _send_bytes(
            self, status: int, body: bytes, content_type: str
        ) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            rid = getattr(self, "_rid", None)
            if rid:
                self.send_header("X-Request-Id", rid)
            self.end_headers()
            self.wfile.write(body)

        def _send(self, status: int, payload: Dict) -> None:
            self._send_bytes(
                status, json.dumps(payload).encode(), "application/json"
            )

        def _send_error(self, error: ServiceError) -> None:
            self._send(error.status, error.payload())

        def _body(self) -> Dict:
            length = int(self.headers.get("Content-Length") or 0)
            if length > _MAX_BODY:
                raise InvalidRequestError(
                    f"body too large ({length} > {_MAX_BODY} bytes)"
                )
            raw = self.rfile.read(length) if length else b""
            if not raw:
                return {}
            try:
                parsed = json.loads(raw)
            except ValueError as exc:
                raise InvalidRequestError(f"bad JSON body: {exc}") from None
            if not isinstance(parsed, dict):
                raise InvalidRequestError("body must be a JSON object")
            return parsed

        def _path_and_query(self) -> Tuple[str, Dict[str, str]]:
            path, _, query_string = self.path.partition("?")
            query: Dict[str, str] = {}
            for pair in query_string.split("&"):
                if pair:
                    key, _, value = pair.partition("=")
                    query[key] = value
            return path.rstrip("/") or "/", query

        def _respond_job(self, job: Job, coalesced: bool, wait: bool) -> None:
            if wait:
                job.wait(service.config.wait_s)
            payload = job.to_json()
            if coalesced:
                payload["coalesced_request"] = True
            if job.status is JobStatus.DONE:
                self._send(200, payload)
            elif job.status is JobStatus.FAILED:
                self._send(job.error_status or 500, payload)
            elif job.status is JobStatus.CANCELLED:
                self._send(409, payload)
            else:  # still queued/running: poll GET /jobs/{id}
                self._send(202, payload)

        # -- verbs ---------------------------------------------------------

        def do_GET(self):  # noqa: N802
            token = self._begin_ctx()
            try:
                path, _query = self._path_and_query()
                if path == "/healthz":
                    self._send(200, service.healthz())
                elif path == "/readyz":
                    status, payload = service.readyz()
                    self._send(status, payload)
                elif path == "/metrics":
                    accept = self.headers.get("Accept") or ""
                    if "text/plain" in accept or "openmetrics" in accept:
                        self._send_bytes(
                            200,
                            service.prometheus_payload().encode(),
                            "text/plain; version=0.0.4; charset=utf-8",
                        )
                    else:
                        self._send(200, service.metrics_payload())
                elif path == "/debug/flightrecorder":
                    self._send(200, obs.flight.recorder().dump())
                elif path == "/questions":
                    available = sorted(QUESTIONS)
                    if service.config.debug:
                        available += sorted(DEBUG_QUESTIONS)
                    self._send(200, {"questions": available})
                elif path == "/snapshots":
                    self._send(
                        200,
                        {"snapshots": [r.to_json() for r in service.store.list()]},
                    )
                elif _COVERAGE_PATH.match(path):
                    name = _COVERAGE_PATH.match(path).group(1)
                    try:
                        witnesses = int(_query.get("witnesses", "0"))
                    except ValueError:
                        raise InvalidRequestError(
                            "witnesses must be an integer"
                        ) from None
                    self._send(
                        200, service.coverage_payload(name, witnesses=witnesses)
                    )
                elif _SNAPSHOT_PATH.match(path):
                    name = _SNAPSHOT_PATH.match(path).group(1)
                    self._send(200, service.store.record(name).to_json())
                elif _JOB_PATH.match(path):
                    job_id = _JOB_PATH.match(path).group(1)
                    self._send(200, service.queue.get(job_id).to_json())
                else:
                    self._send_error(NotFoundError(f"no such path {path!r}"))
            except ServiceError as error:
                self._send_error(error)
            finally:
                obs_context.deactivate(token)

        def do_POST(self):  # noqa: N802
            token = self._begin_ctx()
            try:
                path, query = self._path_and_query()
                body = self._body()
                if path == "/snapshots":
                    if "name" not in body or "configs" not in body:
                        raise InvalidRequestError(
                            "body must include 'name' and 'configs'"
                        )
                    record = service.store.init(
                        body["name"],
                        body["configs"],
                        settings=settings_from_json(body.get("settings")),
                        force=bool(body.get("force", False)),
                    )
                    self._send(201, record.to_json())
                    return
                match = _QUESTION_PATH.match(path)
                if match:
                    # Long-running questions (sweeps) default to
                    # async-202 job semantics; everything else blocks.
                    default_wait = (
                        "false"
                        if match.group(2) in ASYNC_QUESTIONS
                        else "true"
                    )
                    wait = _truthy(
                        body.get("wait", query.get("wait", default_wait))
                    )
                    timeout_s = body.get("timeout_s")
                    if timeout_s is not None:
                        timeout_s = float(timeout_s)
                    job, coalesced = service.submit_question(
                        match.group(1),
                        match.group(2),
                        params=body.get("params"),
                        timeout_s=timeout_s,
                    )
                    self._respond_job(job, coalesced, wait)
                    return
                raise NotFoundError(f"no such path {path!r}")
            except ServiceError as error:
                self._send_error(error)
            finally:
                obs_context.deactivate(token)

        def do_PATCH(self):  # noqa: N802
            token = self._begin_ctx()
            try:
                path, _query = self._path_and_query()
                match = _SNAPSHOT_PATH.match(path)
                if match:
                    body = self._body()
                    if "configs" not in body:
                        raise InvalidRequestError(
                            "body must include 'configs' "
                            "({filename: text-or-null})"
                        )
                    record = service.store.patch(
                        match.group(1), body["configs"]
                    )
                    payload = record.to_json()
                    session = service.store.get(match.group(1))
                    if session.delta_info is not None:
                        payload["delta"] = session.delta_info.to_json()
                    self._send(200, payload)
                    return
                raise NotFoundError(f"no such path {path!r}")
            except ServiceError as error:
                self._send_error(error)
            finally:
                obs_context.deactivate(token)

        def do_DELETE(self):  # noqa: N802
            token = self._begin_ctx()
            try:
                path, _query = self._path_and_query()
                match = _SNAPSHOT_PATH.match(path)
                if match:
                    service.store.delete(match.group(1))
                    self._send(200, {"deleted": match.group(1)})
                    return
                match = _JOB_PATH.match(path)
                if match:
                    cancelled = service.queue.cancel(match.group(1))
                    self._send(
                        200 if cancelled else 409,
                        {"id": match.group(1), "cancelled": cancelled},
                    )
                    return
                raise NotFoundError(f"no such path {path!r}")
            except ServiceError as error:
                self._send_error(error)
            finally:
                obs_context.deactivate(token)

    return Handler


def _truthy(value) -> bool:
    if isinstance(value, bool):
        return value
    return str(value).strip().lower() not in ("false", "0", "no", "")
