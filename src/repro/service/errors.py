"""Typed service errors with stable wire codes and HTTP statuses.

Every failure a client can observe maps to one exception class here;
the API layer renders :meth:`ServiceError.payload` as the JSON body and
:attr:`ServiceError.status` as the HTTP status. Analysis failures —
non-convergence, bad question parameters — degrade to structured
payloads instead of killing the worker thread that hit them
(:func:`to_service_error` does the mapping at the job boundary).
"""

from __future__ import annotations

from typing import Dict

from repro.core.session import NotConvergedError


class ServiceError(Exception):
    """Base class: a failure with a wire code and an HTTP status."""

    status = 500
    code = "internal_error"

    def __init__(self, message: str, **details):
        super().__init__(message)
        self.message = message
        self.details = {k: v for k, v in details.items() if v is not None}

    def payload(self) -> Dict:
        """The JSON error body the API returns."""
        body = {"code": self.code, "message": self.message}
        if self.details:
            body["details"] = self.details
        return {"error": body}


class InvalidRequestError(ServiceError):
    """Malformed body, unknown field, or out-of-range parameter."""

    status = 400
    code = "invalid_request"


class UnknownQuestionError(ServiceError):
    """The question name is not in the service's registry."""

    status = 400
    code = "unknown_question"


class NotFoundError(ServiceError):
    """Unknown API path."""

    status = 404
    code = "not_found"


class SnapshotNotFoundError(ServiceError):
    status = 404
    code = "snapshot_not_found"


class JobNotFoundError(ServiceError):
    status = 404
    code = "job_not_found"


class SnapshotConflictError(ServiceError):
    """Initializing a name that already exists (without ``force``)."""

    status = 409
    code = "snapshot_conflict"


class AnalysisError(ServiceError):
    """The analysis itself failed in a modelled way — non-convergent
    routing, parse-level breakage — as opposed to a service bug. The
    snapshot stays usable for other questions."""

    status = 422
    code = "analysis_failed"


class QueueFullError(ServiceError):
    """Backpressure: the bounded job queue is at capacity."""

    status = 429
    code = "queue_full"


class JobTimeoutError(ServiceError):
    """The job exceeded its deadline before a worker could finish it."""

    status = 504
    code = "job_timeout"


class ShuttingDownError(ServiceError):
    """The service is draining and no longer accepts new work."""

    status = 503
    code = "shutting_down"


def to_service_error(exc: BaseException) -> ServiceError:
    """Map an arbitrary exception escaping a job to a typed error.

    This is the graceful-degradation boundary: whatever the analysis
    raises becomes a structured payload, and the worker thread survives.
    """
    if isinstance(exc, ServiceError):
        return exc
    if isinstance(exc, NotConvergedError):
        return AnalysisError(str(exc), kind="not_converged")
    if isinstance(exc, KeyError):
        # The question surface raises KeyError for unknown nodes/filters.
        return InvalidRequestError(f"unknown entity: {exc}")
    if isinstance(exc, (TypeError, ValueError)):
        return InvalidRequestError(str(exc))
    error = ServiceError(f"{type(exc).__name__}: {exc}")
    error.details = {"kind": type(exc).__name__}
    return error
