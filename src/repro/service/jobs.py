"""The service's execution core: a bounded job queue over a thread
worker pool, with request coalescing and graceful degradation.

Analysis questions are I/O-light but CPU-heavy, and many of them hit
the same lazily-computed session state (data plane, FIBs, BDD engine),
so the execution model is:

* **Bounded queue + fixed workers.** Submissions beyond ``max_queue``
  fail fast with :class:`QueueFullError` (HTTP 429) instead of letting
  latency grow without bound — load shedding, not buffering.
* **Coalescing.** An in-flight (queued *or* running) job with the same
  coalesce key — snapshot content key + question + canonical params —
  absorbs duplicate submissions: the caller gets the *same* job, and
  the expensive computation runs once. Continuous-validation clients
  that re-ask on every commit make this hit constantly.
* **Timeouts and cancellation.** A job carries a deadline from
  submission; if no worker reaches it in time it fails with
  :class:`JobTimeoutError` without ever running. Queued jobs can be
  cancelled; running jobs cannot be preempted (Python threads), which
  the API documents — their results are simply discarded if nobody
  waits.
* **Worker survival.** Whatever the analysis raises is mapped by
  :func:`to_service_error` into the job's structured error; the worker
  thread itself never dies.
* **Drain.** :meth:`JobQueue.drain` stops intake and waits for every
  queued and running job to finish — the SIGTERM path.

Queue depth, job latency, and coalesce hits are mirrored to
:mod:`repro.obs` metrics (when enabled) on top of the queue's own
always-on counters.
"""

from __future__ import annotations

import enum
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro import obs
from repro.obs import profiler
from repro.obs.context import RequestContext
from repro.obs.slo import SloTracker
from repro.service.errors import (
    JobNotFoundError,
    JobTimeoutError,
    QueueFullError,
    ServiceError,
    ShuttingDownError,
    to_service_error,
)

#: Terminal jobs retained for GET /jobs/{id} after completion.
DEFAULT_MAX_HISTORY = 1024


class JobStatus(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


_TERMINAL = (JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED)


@dataclass
class Job:
    """One question execution request and its lifecycle state."""

    id: str
    snapshot: str
    question: str
    params: Dict
    coalesce_key: str
    timeout_s: Optional[float] = None
    status: JobStatus = JobStatus.QUEUED
    result: Optional[Dict] = None
    #: Structured error payload (ServiceError.payload()) plus its HTTP
    #: status, set when status is FAILED.
    error: Optional[Dict] = None
    error_status: int = 0
    created_ts: float = field(default_factory=time.time)
    started_ts: Optional[float] = None
    finished_ts: Optional[float] = None
    #: How many extra submissions were absorbed by this job.
    coalesced: int = 0
    #: Request attribution carried from the HTTP handler into the worker
    #: thread (and from there into pmap pool workers).
    ctx: Optional[RequestContext] = None
    _done: threading.Event = field(default_factory=threading.Event, repr=False)

    @property
    def terminal(self) -> bool:
        return self.status in _TERMINAL

    @property
    def deadline(self) -> Optional[float]:
        if self.timeout_s is None:
            return None
        return self.created_ts + self.timeout_s

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state (True) or the
        wait times out (False — the job keeps going)."""
        return self._done.wait(timeout)

    def to_json(self) -> Dict:
        body: Dict = {
            "id": self.id,
            "snapshot": self.snapshot,
            "question": self.question,
            "status": self.status.value,
            "coalesced": self.coalesced,
            "created_ts": round(self.created_ts, 3),
        }
        if self.ctx is not None:
            body["request_id"] = self.ctx.request_id
        if self.status is JobStatus.RUNNING:
            progress = self._latest_progress()
            if progress is not None:
                body["progress"] = progress
        if self.started_ts is not None:
            body["queue_s"] = round(self.started_ts - self.created_ts, 6)
        if self.finished_ts is not None and self.started_ts is not None:
            body["run_s"] = round(self.finished_ts - self.started_ts, 6)
        if self.result is not None:
            body["result"] = self.result
        if self.error is not None:
            body.update(self.error)  # {"error": {...}}
        return body

    def _latest_progress(self) -> Optional[Dict]:
        """Liveness for long sweeps: the newest ``sweep_progress`` flight
        event carrying this job's request id. Polling ``GET /jobs/{id}``
        then shows done/total instead of a bare "running"."""
        if self.ctx is None:
            return None
        from repro import obs

        for event in reversed(obs.flight.recent()):
            if (
                event.get("kind") == "sweep_progress"
                and event.get("rid") == self.ctx.request_id
            ):
                return {
                    "done": event.get("done"),
                    "total": event.get("total"),
                    "pruned": event.get("pruned"),
                }
        return None


class JobQueue:
    """Bounded queue + worker pool executing jobs via one callable."""

    def __init__(
        self,
        executor: Callable[[Job], Dict],
        workers: int = 2,
        max_queue: int = 64,
        default_timeout_s: Optional[float] = None,
        max_history: int = DEFAULT_MAX_HISTORY,
        slo: Optional[SloTracker] = None,
        bundle_extras: Optional[Callable[[], Dict]] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self._executor = executor
        self.max_queue = max_queue
        self.default_timeout_s = default_timeout_s
        self.slo = slo
        #: Extra context (cache stats, snapshot counts) the owning
        #: service wants folded into every postmortem bundle.
        self._bundle_extras = bundle_extras
        self._max_history = max_history
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._pending: deque = deque()
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._inflight: Dict[str, Job] = {}
        self._active = 0
        self._accepting = True
        self._stopped = False
        self._next_id = 0
        self._stats = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "coalesced": 0,
            "rejected": 0,
            "timeouts": 0,
        }
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission --------------------------------------------------------

    def submit(
        self,
        snapshot: str,
        question: str,
        params: Dict,
        coalesce_key: str,
        timeout_s: Optional[float] = None,
        ctx: Optional[RequestContext] = None,
    ) -> Tuple[Job, bool]:
        """Enqueue a job, or attach to an identical in-flight one.

        Returns ``(job, coalesced)``. Raises :class:`QueueFullError`
        when the bounded queue is at capacity and
        :class:`ShuttingDownError` after drain started.
        """
        if timeout_s is None:
            timeout_s = self.default_timeout_s
        with self._lock:
            if not self._accepting:
                raise ShuttingDownError("service is draining; not accepting jobs")
            existing = self._inflight.get(coalesce_key)
            if existing is not None and not existing.terminal:
                existing.coalesced += 1
                self._stats["coalesced"] += 1
                obs.add("service.jobs.coalesced")
                # The absorbed submission costs ~0s of its own; the
                # per-disposition count is the signal, not the latency.
                obs.observe_bucket(
                    "service.request.seconds", 0.0,
                    question=question, disposition="coalesced",
                )
                obs.flight.record(
                    "job", "coalesced", job_id=existing.id,
                    question=question,
                    absorbed_rid=ctx.request_id if ctx else None,
                )
                return existing, True
            if len(self._pending) >= self.max_queue:
                self._stats["rejected"] += 1
                obs.add("service.jobs.rejected")
                raise QueueFullError(
                    f"job queue is full ({self.max_queue} pending)",
                    max_queue=self.max_queue,
                )
            self._next_id += 1
            job = Job(
                id=f"job-{self._next_id:06d}",
                snapshot=snapshot,
                question=question,
                params=params,
                coalesce_key=coalesce_key,
                timeout_s=timeout_s,
                ctx=ctx,
            )
            self._jobs[job.id] = job
            self._trim_history_locked()
            self._inflight[coalesce_key] = job
            self._pending.append(job)
            self._stats["submitted"] += 1
            depth = len(self._pending)
            self._not_empty.notify()
        obs.add("service.jobs.submitted")
        obs.gauge("service.queue.depth", depth)
        obs.flight.record(
            "job", "submitted", job_id=job.id, question=question, depth=depth
        )
        return job, False

    # -- inspection --------------------------------------------------------

    def get(self, job_id: str) -> Job:
        expired = False
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None and job.status is JobStatus.QUEUED:
                expired = self._expire_locked(job)
        if job is None:
            raise JobNotFoundError(f"no job {job_id!r}", id=job_id)
        if expired:
            self._postmortem("deadline_expired", job, timeout_s=job.timeout_s)
        return job

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job (True). Running/terminal jobs are not
        cancellable — Python threads cannot be preempted — and return
        False."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise JobNotFoundError(f"no job {job_id!r}", id=job_id)
            if job.status is not JobStatus.QUEUED:
                return False
            self._finish_locked(job, JobStatus.CANCELLED)
            self._stats["cancelled"] += 1
        obs.add("service.jobs.cancelled")
        return True

    def depth(self) -> int:
        with self._lock:
            return len(self._pending)

    def oldest_age(self) -> float:
        """Age in seconds of the oldest still-queued job (0.0 when the
        queue is empty) — the readiness signal that catches a wedged
        worker pool even when depth looks acceptable."""
        with self._lock:
            if not self._pending:
                return 0.0
            return max(0.0, time.time() - self._pending[0].created_ts)

    @property
    def accepting(self) -> bool:
        with self._lock:
            return self._accepting

    def stats(self) -> Dict[str, float]:
        with self._lock:
            snapshot = dict(self._stats)
            snapshot["depth"] = len(self._pending)
            snapshot["running"] = self._active
            snapshot["workers"] = len(self._threads)
            oldest = 0.0
            if self._pending:
                oldest = max(0.0, time.time() - self._pending[0].created_ts)
            snapshot["oldest_age_seconds"] = round(oldest, 3)
        return snapshot

    # -- lifecycle ---------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop intake and wait for queued + running jobs to finish.

        Returns True when everything completed within ``timeout``
        (None = wait forever).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            self._accepting = False
            while self._pending or self._active:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(remaining)
        return True

    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> bool:
        """Shut the pool down. ``drain=True`` completes outstanding
        work first; ``drain=False`` cancels everything still queued."""
        completed = True
        if drain:
            completed = self.drain(timeout)
        with self._lock:
            self._accepting = False
            while self._pending:
                job = self._pending.popleft()
                if job.status is JobStatus.QUEUED:
                    self._finish_locked(job, JobStatus.CANCELLED)
                    self._stats["cancelled"] += 1
            self._stopped = True
            self._not_empty.notify_all()
        for thread in self._threads:
            thread.join(timeout=5.0)
        return completed

    # -- internals ---------------------------------------------------------

    def _trim_history_locked(self) -> None:
        while len(self._jobs) > self._max_history:
            for job_id, job in self._jobs.items():
                if job.terminal:
                    del self._jobs[job_id]
                    break
            else:
                return  # everything live; let history run long

    def _expire_locked(self, job: Job) -> bool:
        """Fail a queued job whose deadline passed (lazy check from
        get(); the worker makes the same check before running). Returns
        True when the job expired — the caller takes the postmortem
        bundle *after* releasing the queue lock (bundle extras re-enter
        :meth:`stats`)."""
        deadline = job.deadline
        if deadline is not None and time.time() > deadline:
            error = JobTimeoutError(
                f"job {job.id} timed out after {job.timeout_s}s in queue",
                timeout_s=job.timeout_s,
            )
            job.error = error.payload()
            job.error_status = error.status
            self._finish_locked(job, JobStatus.FAILED)
            self._stats["failed"] += 1
            self._stats["timeouts"] += 1
            obs.add("service.jobs.timeouts")
            return True
        return False

    def _postmortem(self, reason: str, job: Job, **extra) -> None:
        """Freeze a flight-recorder bundle around one job's failure
        mode; the sampling profiler's top-frames report rides along
        when one is running. Must be called without the queue lock."""
        info: Dict = {
            "job_id": job.id,
            "question": job.question,
            "snapshot": job.snapshot,
            "queue": self.stats(),
        }
        if job.ctx is not None:
            info["request_id"] = job.ctx.request_id
        info.update(extra)
        if self._bundle_extras is not None:
            try:
                info.update(self._bundle_extras())
            except Exception:  # diagnostics must never break the queue
                pass
        prof = profiler.active()
        if prof is not None:
            info["profile"] = prof.report()
        obs.flight.snapshot_bundle(reason, **info)

    def _finish_locked(self, job: Job, status: JobStatus) -> None:
        job.status = status
        job.finished_ts = time.time()
        inflight = self._inflight.get(job.coalesce_key)
        if inflight is job:
            del self._inflight[job.coalesce_key]
        job._done.set()
        self._idle.notify_all()

    def _worker(self) -> None:
        while True:
            with self._not_empty:
                while not self._pending and not self._stopped:
                    self._not_empty.wait()
                if not self._pending and self._stopped:
                    return
                job = self._pending.popleft()
                if job.terminal:  # cancelled (or expired) while queued
                    self._idle.notify_all()
                    continue
                expired = self._expire_locked(job)
                if job.terminal:
                    if not expired:
                        continue
                    job_expired = job  # postmortem outside the lock
                else:
                    job_expired = None
                    job.status = JobStatus.RUNNING
                    job.started_ts = time.time()
                    self._active += 1
                    obs.gauge("service.queue.depth", len(self._pending))
            if job_expired is not None:
                self._postmortem(
                    "deadline_expired", job_expired,
                    timeout_s=job_expired.timeout_s,
                )
                continue
            # The job's request context rides from the handler thread to
            # this worker (and on into pmap pool workers), so all
            # telemetry below carries the originating request_id.
            token = (
                obs.context.activate(job.ctx) if job.ctx is not None else None
            )
            try:
                self._run_job(job)
            finally:
                if token is not None:
                    obs.context.deactivate(token)

    def _run_job(self, job: Job) -> None:
        """Execute one claimed job and record its telemetry (runs on a
        worker thread with the job's request context active)."""
        error: Optional[ServiceError] = None
        result: Optional[Dict] = None
        # Disposition probe: the delta engine bumps this counter on
        # every full-recompute fallback. Sampling it around the run is
        # approximate under concurrency (another worker's fallback can
        # land in the window) but costs nothing and needs no plumbing
        # through the executor.
        fallback_before = obs.metrics().counter("delta.fallback_full")
        obs.flight.record(
            "job", "start", job_id=job.id, question=job.question
        )
        with obs.span("service.job", question=job.question):
            # Belt and suspenders with run_question's own attribution:
            # even executors that bypass the dispatch table (tests,
            # future bulk endpoints) get their coverage touches scoped
            # to the job's question.
            with obs.context.attribution(job.question):
                try:
                    result = self._executor(job)
                except BaseException as exc:  # worker must survive anything
                    error = to_service_error(exc)
        with self._lock:
            self._active -= 1
            if error is None:
                job.result = result
                self._finish_locked(job, JobStatus.DONE)
                self._stats["completed"] += 1
            else:
                job.error = error.payload()
                job.error_status = error.status
                self._finish_locked(job, JobStatus.FAILED)
                self._stats["failed"] += 1
            started, finished = job.started_ts, job.finished_ts
        run_s = finished - started
        fell_back = (
            obs.metrics().counter("delta.fallback_full") > fallback_before
        )
        if error is not None:
            disposition = "error"
        elif fell_back:
            disposition = "fallback_full"
        else:
            disposition = "ok"
        obs.add("service.jobs.completed" if error is None else "service.jobs.failed")
        obs.observe("service.job.seconds", run_s)
        obs.observe("service.job.queue_seconds", started - job.created_ts)
        obs.observe_bucket(
            "service.request.seconds", run_s,
            question=job.question, disposition=disposition,
        )
        breached = False
        if self.slo is not None:
            breached = self.slo.record(
                job.question, run_s, error=error is not None
            )
        obs.flight.record(
            "job", "finished", job_id=job.id, question=job.question,
            disposition=disposition, wall_s=round(run_s, 6),
        )
        if error is not None:
            self._postmortem("job_error", job, error=job.error)
        elif fell_back:
            self._postmortem(
                "delta_fallback", job, run_s=round(run_s, 6)
            )
        elif breached:
            # Slow-but-successful: the case the sampling profiler's
            # top-frames report exists for.
            self._postmortem(
                "slo_breach", job, run_s=round(run_s, 6),
                objective_s=self.slo.objective_for(job.question),
            )
