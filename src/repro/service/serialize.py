"""The service's JSON boundary: params in, answers out, and the
question registry that maps wire names onto the ``Session`` surface.

Everything crossing HTTP goes through this module, so the wire format
is defined in exactly one place:

* decoders (`packet_from_json`, `headerspace_from_json`,
  `settings_from_json`) turn request params into domain objects,
  raising :class:`InvalidRequestError` with field attribution;
* encoders turn answer objects (routes, traces, reachability sets,
  derivation trees) into JSON-ready dicts — BDD packet sets are
  rendered as presence + one example packet, matching how the paper's
  answers surface concrete witnesses (§4.4.3);
* :data:`QUESTIONS` + :func:`run_question` dispatch one job. Questions
  that read the data plane assert convergence first, so a
  non-convergent snapshot degrades to a structured 422 instead of
  returning garbage rows.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from repro import obs
from repro.core.session import Session
from repro.hdr import fields as f
from repro.hdr.headerspace import HeaderSpace
from repro.hdr.ip import Ip
from repro.hdr.packet import Packet
from repro.routing.engine import ConvergenceSettings
from repro.service.errors import InvalidRequestError, UnknownQuestionError

_PROTOCOL_NAMES = {
    "icmp": f.PROTO_ICMP,
    "tcp": f.PROTO_TCP,
    "udp": f.PROTO_UDP,
    "ospf": f.PROTO_OSPF,
}

_PACKET_FIELDS = (
    "dst_ip", "src_ip", "dst_port", "src_port", "icmp_code", "icmp_type",
    "ip_protocol", "tcp_flags", "packet_length", "dscp", "ecn",
)

_SETTINGS_FIELDS = (
    "schedule", "use_logical_clocks", "max_iterations", "max_session_rounds",
)


def _require(params: Dict, key: str):
    if key not in params:
        raise InvalidRequestError(f"missing required param {key!r}")
    return params[key]


def _reject_unknown(mapping: Dict, allowed, what: str) -> None:
    unknown = sorted(set(mapping) - set(allowed))
    if unknown:
        raise InvalidRequestError(
            f"unknown {what} field(s): {', '.join(unknown)}"
        )


# ----------------------------------------------------------------------
# Decoders (wire -> domain)


def protocol_from_json(value) -> int:
    """An IP protocol from either a number or a well-known name."""
    if isinstance(value, str):
        try:
            return _PROTOCOL_NAMES[value.lower()]
        except KeyError:
            raise InvalidRequestError(
                f"unknown protocol name {value!r}"
            ) from None
    if isinstance(value, int) and not isinstance(value, bool):
        return value
    raise InvalidRequestError(f"protocol must be a name or number: {value!r}")


def packet_from_json(raw: Dict) -> Packet:
    """A concrete packet from ``{"dst_ip": "...", "dst_port": 80, ...}``."""
    if not isinstance(raw, dict):
        raise InvalidRequestError("packet must be an object")
    _reject_unknown(raw, _PACKET_FIELDS, "packet")
    kwargs: Dict[str, object] = {}
    for name, value in raw.items():
        if name in ("dst_ip", "src_ip"):
            try:
                kwargs[name] = Ip(value)
            except (TypeError, ValueError) as exc:
                raise InvalidRequestError(f"bad {name}: {exc}") from None
        elif name == "ip_protocol":
            kwargs[name] = protocol_from_json(value)
        else:
            kwargs[name] = value
    try:
        return Packet(**kwargs)
    except (TypeError, ValueError) as exc:
        raise InvalidRequestError(f"bad packet: {exc}") from None


def _port_ranges(raw, what: str) -> Optional[List]:
    if raw is None:
        return None
    ranges = []
    for entry in raw:
        if isinstance(entry, int) and not isinstance(entry, bool):
            ranges.append((entry, entry))
        elif isinstance(entry, (list, tuple)) and len(entry) == 2:
            ranges.append((int(entry[0]), int(entry[1])))
        else:
            raise InvalidRequestError(
                f"{what} entries must be a port or a [low, high] pair"
            )
    return ranges


def headerspace_from_json(raw: Optional[Dict]) -> HeaderSpace:
    """A :class:`HeaderSpace` from the declarative JSON query surface."""
    if raw is None:
        return HeaderSpace()
    if not isinstance(raw, dict):
        raise InvalidRequestError("headerspace must be an object")
    allowed = (
        "dst", "src", "not_dst", "not_src", "dst_ports", "src_ports",
        "protocols", "tcp_flags_set", "tcp_flags_unset",
    )
    _reject_unknown(raw, allowed, "headerspace")
    protocols = raw.get("protocols")
    if protocols is not None:
        protocols = [protocol_from_json(p) for p in protocols]
    try:
        return HeaderSpace.build(
            dst=raw.get("dst"),
            src=raw.get("src"),
            not_dst=raw.get("not_dst"),
            not_src=raw.get("not_src"),
            dst_ports=_port_ranges(raw.get("dst_ports"), "dst_ports"),
            src_ports=_port_ranges(raw.get("src_ports"), "src_ports"),
            protocols=protocols,
            tcp_flags_set=raw.get("tcp_flags_set"),
            tcp_flags_unset=raw.get("tcp_flags_unset"),
        )
    except (TypeError, ValueError) as exc:
        raise InvalidRequestError(f"bad headerspace: {exc}") from None


def settings_from_json(raw: Optional[Dict]) -> Optional[ConvergenceSettings]:
    """Convergence settings from the snapshot-init body (None = defaults)."""
    if raw is None:
        return None
    if not isinstance(raw, dict):
        raise InvalidRequestError("settings must be an object")
    _reject_unknown(raw, _SETTINGS_FIELDS, "settings")
    try:
        return ConvergenceSettings(**raw)
    except TypeError as exc:
        raise InvalidRequestError(f"bad settings: {exc}") from None


def sources_from_json(raw) -> Optional[List]:
    """``[["node", "iface"|null], ...]`` -> the sources= query argument."""
    if raw is None:
        return None
    sources = []
    for entry in raw:
        if isinstance(entry, str):
            sources.append((entry, None))
        elif isinstance(entry, (list, tuple)) and 1 <= len(entry) <= 2:
            node = entry[0]
            iface = entry[1] if len(entry) == 2 else None
            sources.append((node, iface))
        else:
            raise InvalidRequestError(
                "sources entries must be 'node' or ['node', 'interface']"
            )
    return sources


# ----------------------------------------------------------------------
# Encoders (domain -> wire)


def packet_to_json(packet: Optional[Packet]) -> Optional[Dict]:
    if packet is None:
        return None
    return {
        "dst_ip": str(packet.dst_ip),
        "src_ip": str(packet.src_ip),
        "dst_port": packet.dst_port,
        "src_port": packet.src_port,
        "ip_protocol": packet.ip_protocol,
        "description": packet.describe(),
    }


def _example_packet(analyzer, packet_set: int) -> Optional[Dict]:
    """One witness packet from a BDD set (None for the empty set)."""
    engine = analyzer.encoder.engine
    assignment = next(engine.sat_iter(packet_set, limit=1), None)
    return packet_to_json(analyzer.encoder.packet_from_model(assignment))


def reachability_to_json(answer, analyzer) -> Dict:
    """Per-disposition presence + witness, per-sink witness counts."""
    dispositions = {}
    for disposition, packet_set in sorted(
        answer.by_disposition.items(), key=lambda kv: kv[0].value
    ):
        if packet_set == 0:
            continue
        dispositions[disposition.value] = {
            "example": _example_packet(analyzer, packet_set),
        }
    return {
        "dispositions": dispositions,
        "success": answer.success_set() != 0,
        "failure": answer.failure_set() != 0,
        "sinks": len(answer.by_sink),
    }


def traces_to_json(traces) -> List[Dict]:
    return [
        {
            "disposition": trace.disposition.value,
            "path": trace.path_nodes(),
            "final_packet": packet_to_json(trace.final_packet),
            "hops": [
                {
                    "node": hop.node,
                    "steps": [
                        {"kind": step.kind, "detail": step.detail}
                        for step in hop.steps
                    ],
                }
                for hop in trace.hops
            ],
        }
        for trace in traces
    ]


# ----------------------------------------------------------------------
# Question registry and dispatch


def _converged(session: Session) -> Session:
    session.assert_converged()  # NotConvergedError -> structured 422
    return session


def _q_routes(store, snapshot: str, params: Dict) -> Dict:
    session = _converged(store.get(snapshot))
    node = params.get("node")
    rows = session.routes(node)
    return {
        "rows": [{"node": r.node, "route": r.description} for r in rows],
        "count": len(rows),
    }


def _q_reachability(store, snapshot: str, params: Dict) -> Dict:
    session = _converged(store.get(snapshot))
    answer = session.reachability(
        headerspace=headerspace_from_json(params.get("headerspace")),
        sources=sources_from_json(params.get("sources")),
        scoped=bool(params.get("scoped", True)),
    )
    return reachability_to_json(answer, session.analyzer)


def _q_traceroute(store, snapshot: str, params: Dict) -> Dict:
    session = _converged(store.get(snapshot))
    packet = packet_from_json(_require(params, "packet"))
    traces = session.traceroute(
        packet, _require(params, "node"), _require(params, "interface")
    )
    return {"traces": traces_to_json(traces)}


def _q_test_filter(store, snapshot: str, params: Dict) -> Dict:
    session = store.get(snapshot)
    row = session.test_filter(
        _require(params, "node"),
        _require(params, "filter"),
        packet_from_json(_require(params, "packet")),
    )
    return {
        "node": row.hostname,
        "filter": row.filter_name,
        "action": row.action.value,
        "matched_line": row.matched_line,
    }


def _q_explain_route(store, snapshot: str, params: Dict) -> Dict:
    session = _converged(store.get(snapshot))
    tree = session.explain_route(
        _require(params, "node"), _require(params, "prefix")
    )
    return {
        "node": tree.node,
        "prefix": str(tree.prefix),
        "empty": tree.empty,
        "rendered": tree.render(),
        "suppressions": [event.describe() for event in tree.suppressions()],
    }


def _q_route_diff(store, snapshot: str, params: Dict) -> Dict:
    base = _converged(store.get(snapshot))
    candidate = _converged(store.get(_require(params, "candidate")))
    answer = base.route_diff(candidate)
    return {
        "rows": [
            {"node": r.node, "change": r.change, "route": r.description}
            for r in answer.rows
        ],
        "affected_nodes": answer.affected_nodes,
    }


def _q_undefined_references(store, snapshot: str, params: Dict) -> Dict:
    answer = store.get(snapshot).undefined_references()
    return {
        "rows": [
            {
                "node": row.hostname,
                "type": row.structure_type.value,
                "name": row.name,
                "context": row.context,
            }
            for row in answer.rows
        ]
    }


def _q_unused_structures(store, snapshot: str, params: Dict) -> Dict:
    answer = store.get(snapshot).unused_structures()
    return {
        "rows": [
            {
                "node": row.hostname,
                "type": row.structure_type.value,
                "name": row.name,
            }
            for row in answer.rows
        ]
    }


def _q_duplicate_ips(store, snapshot: str, params: Dict) -> Dict:
    answer = store.get(snapshot).duplicate_ips()
    return {
        "rows": [
            {"ip": str(row.ip), "owners": [str(o) for o in row.owners]}
            for row in answer.rows
        ]
    }


def _q_lint(store, snapshot: str, params: Dict) -> Dict:
    """The lint question: run the ``repro.lint`` rule framework.

    ``params["lintconfig"]`` (optional) follows
    ``LintConfig.from_dict``; malformed configs become structured 400s.
    """
    _reject_unknown(params, {"lintconfig", "jobs"}, "params")
    session = store.get(snapshot)
    try:
        jobs = params.get("jobs")
        report = session.lint(
            params.get("lintconfig"),
            jobs=int(jobs) if jobs is not None else None,
        )
    except ValueError as error:
        raise InvalidRequestError("lintconfig", str(error))
    return report.to_json()


def _q_sweep(store, snapshot: str, params: Dict) -> Dict:
    """The resilience-sweep question (``repro.sweep``): k-failure
    scenario enumeration with equivalence-class pruning.

    Long-running by design, so the API layer defaults this question to
    async-202 job semantics; progress streams into the flight recorder
    as ``sweep_progress`` events tagged with the request id, which the
    job record surfaces while RUNNING.
    """
    from repro.questions.sweep import sweep_answer

    session = _converged(store.get(snapshot))
    try:
        return sweep_answer(session, params)
    except ValueError as error:
        raise InvalidRequestError("sweep", str(error))


def _q_parse_warnings(store, snapshot: str, params: Dict) -> Dict:
    warnings = store.get(snapshot).parse_warnings
    return {"rows": [warning.describe() for warning in warnings]}


def _q_sleep(store, snapshot: str, params: Dict) -> Dict:
    """Debug-only: hold a worker for ``seconds``. Registered so tests
    and load drills can fill the queue deterministically; refused unless
    the service was started with debug questions enabled."""
    store.get(snapshot)  # 404 on unknown snapshots, like real questions
    seconds = float(params.get("seconds", 0.1))
    time.sleep(min(seconds, 30.0))
    return {"slept_s": seconds}


QUESTIONS: Dict[str, Callable] = {
    "routes": _q_routes,
    "reachability": _q_reachability,
    "traceroute": _q_traceroute,
    "test_filter": _q_test_filter,
    "explain_route": _q_explain_route,
    "route_diff": _q_route_diff,
    "undefined_references": _q_undefined_references,
    "unused_structures": _q_unused_structures,
    "duplicate_ips": _q_duplicate_ips,
    "lint": _q_lint,
    "parse_warnings": _q_parse_warnings,
    "sweep": _q_sweep,
}

#: Questions whose runtime is unbounded in snapshot size: the API layer
#: answers 202 + job id by default instead of blocking the connection
#: (pass ``wait=true`` to override).
ASYNC_QUESTIONS = frozenset({"sweep"})

DEBUG_QUESTIONS: Dict[str, Callable] = {
    "sleep": _q_sleep,
}


def run_question(
    store, snapshot: str, question: str, params: Optional[Dict] = None,
    debug: bool = False,
) -> Dict:
    """Execute one question against a stored snapshot.

    Raises :class:`ServiceError` subclasses for every modelled failure;
    anything else is mapped by the job layer.
    """
    handler = QUESTIONS.get(question)
    is_debug = False
    if handler is None and debug:
        handler = DEBUG_QUESTIONS.get(question)
        is_debug = handler is not None
    if handler is None:
        raise UnknownQuestionError(
            f"unknown question {question!r}",
            available=sorted(QUESTIONS),
        )
    params = params or {}
    if not isinstance(params, dict):
        raise InvalidRequestError("params must be an object")
    if is_debug or not obs.active():
        return handler(store, snapshot, params)
    # Execute under question attribution and snapshot the coverage
    # vector the run added, so the delta engine can later rank this
    # (question, params) against a dirty set (repro.questions.coverage).
    from repro.questions import coverage as qcov

    tracker = obs.coverage()
    with obs.context.attribution(question):
        before = tracker.question_vector(question)
        result = handler(store, snapshot, params)
        after = tracker.question_vector(question)
    try:
        session = store.get(snapshot)
    except Exception:
        session = None
    if session is not None:
        qcov.record_question_run(
            tracker,
            getattr(store, "_cache", None),
            session.snapshot_key,
            question,
            params,
            qcov.vector_delta(before, after),
        )
    return result
