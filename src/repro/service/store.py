"""Named-snapshot management for the long-running service.

A :class:`SnapshotStore` owns the mapping *name -> live Session*, the
way Batfish's coordinator owns named snapshots for its clients. Names
are a user-facing convenience; identity is the content key
(:attr:`Session.snapshot_key`), so re-initializing the same configs
under any name re-uses the content-addressed cache instead of
re-parsing, and the job layer coalesces on keys, never names.

All operations are thread-safe (the HTTP layer calls in from many
request threads) and fail with the typed errors of
:mod:`repro.service.errors`.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import obs
from repro.core.cache import SnapshotCache
from repro.core.session import Session
from repro.routing.engine import ConvergenceSettings
from repro.service.errors import (
    InvalidRequestError,
    SnapshotConflictError,
    SnapshotNotFoundError,
)

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,99}$")


@dataclass
class SnapshotRecord:
    """What the API reports about one stored snapshot."""

    name: str
    key: str  # Session.snapshot_key (content + settings address)
    device_count: int
    warning_count: int
    created_ts: float

    def to_json(self) -> Dict:
        return {
            "name": self.name,
            "key": self.key,
            "devices": self.device_count,
            "parse_warnings": self.warning_count,
            "created_ts": round(self.created_ts, 3),
        }


class SnapshotStore:
    """Thread-safe registry of named, initialized snapshots."""

    def __init__(self, cache: Optional[SnapshotCache] = None):
        self._cache = cache
        self._lock = threading.Lock()
        self._sessions: Dict[str, Session] = {}
        self._records: Dict[str, SnapshotRecord] = {}

    def init(
        self,
        name: str,
        configs: Dict[str, str],
        settings: Optional[ConvergenceSettings] = None,
        force: bool = False,
    ) -> SnapshotRecord:
        """Parse and register a snapshot under ``name``.

        Parsing happens outside the store lock (it can take seconds on
        big snapshots); only the registration itself is serialized.
        ``force=True`` replaces an existing name (re-init semantics);
        otherwise a duplicate name is a 409 conflict.
        """
        if not isinstance(name, str) or not _NAME_RE.match(name):
            raise InvalidRequestError(
                f"bad snapshot name {name!r} (alphanumeric plus ._- , "
                "max 100 chars)"
            )
        if not isinstance(configs, dict) or not configs:
            raise InvalidRequestError(
                "configs must be a non-empty {filename: text} object"
            )
        for filename, text in configs.items():
            if not isinstance(filename, str) or not isinstance(text, str):
                raise InvalidRequestError("configs keys and values must be strings")
        with self._lock:
            if not force and name in self._sessions:
                raise SnapshotConflictError(
                    f"snapshot {name!r} already exists", name=name
                )
        session = Session.from_texts(
            configs, cache=self._cache, settings=settings
        )
        record = SnapshotRecord(
            name=name,
            key=session.snapshot_key,
            device_count=len(session.snapshot.devices),
            warning_count=len(session.snapshot.warnings),
            created_ts=time.time(),
        )
        with self._lock:
            if not force and name in self._sessions:
                # Lost an init race for the same name.
                raise SnapshotConflictError(
                    f"snapshot {name!r} already exists", name=name
                )
            self._sessions[name] = session
            self._records[name] = record
        obs.add("service.snapshots.init")
        return record

    def patch(
        self, name: str, changed_configs: Dict[str, Optional[str]]
    ) -> SnapshotRecord:
        """Incrementally update snapshot ``name`` with some files
        changed (``null`` text deletes a file). The delta engine
        re-simulates only devices whose routing could have changed and
        splices everything else through from the existing session's
        converged state (:mod:`repro.delta`). Replaces the named
        session in place and returns the updated record.
        """
        if not isinstance(changed_configs, dict) or not changed_configs:
            raise InvalidRequestError(
                "configs must be a non-empty {filename: text-or-null} object"
            )
        for filename, text in changed_configs.items():
            if not isinstance(filename, str) or not (
                text is None or isinstance(text, str)
            ):
                raise InvalidRequestError(
                    "configs keys must be strings; values strings or null "
                    "(null deletes the file)"
                )
        base = self.get(name)
        # The delta itself runs outside the store lock, like init().
        try:
            session = base.delta(changed_configs)
        except ValueError as exc:
            raise InvalidRequestError(str(exc))
        record = SnapshotRecord(
            name=name,
            key=session.snapshot_key,
            device_count=len(session.snapshot.devices),
            warning_count=len(session.snapshot.warnings),
            created_ts=time.time(),
        )
        with self._lock:
            if name not in self._sessions:
                # Deleted while we were computing: treat as gone.
                raise SnapshotNotFoundError(
                    f"no snapshot named {name!r}", name=name
                )
            self._sessions[name] = session
            self._records[name] = record
        obs.add("service.snapshots.patch")
        return record

    def get(self, name: str) -> Session:
        """The live session for ``name`` (404 when absent)."""
        with self._lock:
            session = self._sessions.get(name)
        if session is None:
            raise SnapshotNotFoundError(
                f"no snapshot named {name!r}", name=name
            )
        return session

    def record(self, name: str) -> SnapshotRecord:
        with self._lock:
            record = self._records.get(name)
        if record is None:
            raise SnapshotNotFoundError(
                f"no snapshot named {name!r}", name=name
            )
        return record

    def list(self) -> List[SnapshotRecord]:
        with self._lock:
            return [self._records[name] for name in sorted(self._records)]

    def delete(self, name: str) -> None:
        with self._lock:
            if name not in self._sessions:
                raise SnapshotNotFoundError(
                    f"no snapshot named {name!r}", name=name
                )
            del self._sessions[name]
            del self._records[name]
        obs.add("service.snapshots.delete")

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)
