"""k-failure scenario sweeps with equivalence-class pruning.

The what-if workload the paper's evolution lessons point at: enumerate
every combination of up to ``k`` failures (links, nodes, interface
flaps, policy toggles), prune the combinatorially-equivalent ones
Plankton-style, run the survivors through the delta engine on the
shared process pool, and distill per-scenario verdicts into **minimal
failing sets** and resilience findings.

Entry points:

* :meth:`repro.core.session.Session.sweep` — the Python API.
* ``POST /snapshots/{name}/questions/sweep`` — the service question
  (async-202; progress streams into the flight recorder).
* ``python -m repro.sweep`` — the resilience report CLI
  (text/JSON/SARIF with a ``--fail-on`` gate).
* ``python -m repro.sweep validate`` — the differential validator
  (pruned verdicts byte-compared against brute-force enumeration).
"""

from repro.sweep.engine import (
    EVALUATED,
    ScenarioOutcome,
    SweepResult,
    SweepStats,
    minimal_failing_sets,
    sweep_session,
)
from repro.sweep.prune import (
    EVALUATE,
    PRUNED_CUT,
    PRUNED_DISCONNECTED,
    PRUNED_FINGERPRINT,
    SweepPlan,
    plan_sweep,
)
from repro.sweep.scenarios import (
    ALL_KINDS,
    BASE_SCENARIO_ID,
    KIND_INTERFACE,
    KIND_LINK,
    KIND_NODE,
    KIND_POLICY,
    FailureElement,
    ReachabilityProperty,
    Scenario,
    Verdict,
    default_property,
    enumerate_elements,
    enumerate_scenarios,
    evaluate_property,
    render_scenario_edits,
)

__all__ = [
    "ALL_KINDS",
    "BASE_SCENARIO_ID",
    "EVALUATE",
    "EVALUATED",
    "KIND_INTERFACE",
    "KIND_LINK",
    "KIND_NODE",
    "KIND_POLICY",
    "PRUNED_CUT",
    "PRUNED_DISCONNECTED",
    "PRUNED_FINGERPRINT",
    "FailureElement",
    "ReachabilityProperty",
    "Scenario",
    "ScenarioOutcome",
    "SweepPlan",
    "SweepResult",
    "SweepStats",
    "Verdict",
    "default_property",
    "enumerate_elements",
    "enumerate_scenarios",
    "evaluate_property",
    "minimal_failing_sets",
    "plan_sweep",
    "render_scenario_edits",
    "sweep_session",
]
