"""Command-line entry points: ``python -m repro.sweep``.

Report mode (the default) runs one resilience sweep and renders it::

    python -m repro.sweep --network NET3 -k 2
    python -m repro.sweep --snapshot configs/ --format sarif --out sweep.sarif
    python -m repro.sweep --network NET5 --fail-on spof
    python -m repro.sweep --network NET3 \\
        --src core1 --src-interface eth0 --dst 10.0.4.1

Validate mode differentially checks the pruning against brute force::

    python -m repro.sweep validate                 # every registry network
    python -m repro.sweep validate --networks NET1,NET3 --sarif out.sarif
    python -m repro.sweep validate --smoke         # CI-sized subset

Exit codes: 0 clean, 1 findings at/above ``--fail-on`` (report) or any
verdict mismatch (validate), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.sweep.report import (
    FAIL_ON_CHOICES,
    findings_from_result,
    gate_exit_code,
    render_json,
    render_sarif,
    render_text,
)
from repro.sweep.scenarios import ALL_KINDS, ReachabilityProperty


def _parse_report_args(argv: List[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Run a k-failure resilience sweep and report findings.",
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--snapshot", metavar="DIR", help="directory of *.cfg files"
    )
    source.add_argument(
        "--network",
        metavar="NAME",
        help="synthetic network name (NET1..NET11)",
    )
    parser.add_argument(
        "--scale", type=int, default=1, help="network generator scale"
    )
    parser.add_argument(
        "-k", type=int, default=1, help="max simultaneous failures"
    )
    parser.add_argument(
        "--kinds",
        metavar="KIND[,KIND...]",
        default=",".join(ALL_KINDS),
        help=f"element kinds to sweep (default: {','.join(ALL_KINDS)})",
    )
    parser.add_argument(
        "--max-elements",
        type=int,
        default=None,
        help="deterministically truncate the element universe",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=None,
        help="cap the number of scenarios (dropped ones are reported)",
    )
    parser.add_argument(
        "--no-prune",
        action="store_true",
        help="evaluate every scenario (for A/B against pruning)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, help="parallel scenario workers"
    )
    parser.add_argument("--src", metavar="NODE", help="property source node")
    parser.add_argument(
        "--src-interface", metavar="IFACE", help="property source interface"
    )
    parser.add_argument(
        "--dst", metavar="IP", help="property destination address"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--out", metavar="FILE", help="write output to FILE instead of stdout"
    )
    parser.add_argument(
        "--fail-on",
        choices=FAIL_ON_CHOICES,
        default="none",
        help="exit 1 when findings at/above this level exist "
        "(base < spof < any)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="include per-scenario verdicts in text output",
    )
    return parser.parse_args(argv)


def _load_configs(args: argparse.Namespace) -> Dict[str, str]:
    if args.snapshot:
        from repro.config.loader import read_config_dir

        return read_config_dir(args.snapshot)
    from repro.synth.networks import network_by_name

    return network_by_name(args.network).generate(args.scale)


def _property_from_args(args: argparse.Namespace, session):
    given = (args.src, args.src_interface, args.dst)
    if not any(given):
        return None
    if not all(given):
        raise SystemExit(
            "error: --src, --src-interface and --dst must be given together"
        )
    return ReachabilityProperty(
        src_node=args.src,
        src_interface=args.src_interface,
        dst_ip=args.dst,
    )


def _run_report(argv: List[str]) -> int:
    args = _parse_report_args(argv)
    if not args.snapshot and not args.network:
        print(
            "error: one of --snapshot or --network is required",
            file=sys.stderr,
        )
        return 2
    from repro.core.session import Session

    configs = _load_configs(args)
    session = Session.from_texts(configs)
    kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip())
    result = session.sweep(
        k=args.k,
        kinds=kinds,
        prop=_property_from_args(args, session),
        prune=not args.no_prune,
        jobs=args.jobs,
        limit=args.limit,
        max_elements=args.max_elements,
    )
    host_to_file = {
        hostname: filename
        for filename, hostname in session.snapshot.sources.items()
    }
    findings = findings_from_result(result, host_to_file)
    if args.format == "sarif":
        output = render_sarif(result, findings)
    elif args.format == "json":
        output = render_json(result, findings)
    else:
        output = render_text(result, findings, verbose=args.verbose)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(output)
    else:
        sys.stdout.write(output)
    return gate_exit_code(findings, args.fail_on)


def _parse_validate_args(argv: List[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep validate",
        description=(
            "Differentially validate pruned sweeps against brute force."
        ),
    )
    parser.add_argument(
        "--networks",
        metavar="NAME[,NAME...]",
        help="registry networks to check (default: all)",
    )
    parser.add_argument(
        "-k", type=int, default=2, help="max simultaneous failures"
    )
    parser.add_argument(
        "--kinds",
        metavar="KIND[,KIND...]",
        default="link",
        help="element kinds to sweep (default: link)",
    )
    parser.add_argument(
        "--max-elements",
        type=int,
        default=None,
        help="cap the element universe per network "
        "(default: 8; 0 = uncapped)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small-network subset with a tighter element cap",
    )
    parser.add_argument(
        "--sarif", metavar="FILE", help="write a mismatch SARIF log to FILE"
    )
    parser.add_argument(
        "--jobs", type=int, default=None, help="parallel scenario workers"
    )
    parser.add_argument(
        "--verbose", action="store_true", help="per-network progress lines"
    )
    return parser.parse_args(argv)


#: The subset --smoke checks: small enough that brute force with the
#: tighter cap finishes in seconds.
SMOKE_NETWORKS = ("NET1", "NET5", "NET6")


def _run_validate(argv: List[str]) -> int:
    from repro.sweep.validate import (
        DEFAULT_MAX_ELEMENTS,
        mismatch_sarif,
        validate_network,
    )
    from repro.synth.networks import NETWORKS, network_by_name

    args = _parse_validate_args(argv)
    if args.networks:
        specs = [
            network_by_name(name.strip())
            for name in args.networks.split(",")
            if name.strip()
        ]
    elif args.smoke:
        specs = [network_by_name(name) for name in SMOKE_NETWORKS]
    else:
        specs = list(NETWORKS)
    if args.max_elements is None:
        max_elements: Optional[int] = (
            4 if args.smoke else DEFAULT_MAX_ELEMENTS
        )
    elif args.max_elements <= 0:
        max_elements = None
    else:
        max_elements = args.max_elements
    kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip())

    validations = []
    for spec in specs:
        validation, _result = validate_network(
            spec.name,
            spec.generate(1),
            k=args.k,
            kinds=kinds,
            max_elements=max_elements,
            jobs=args.jobs,
        )
        validations.append(validation)
        if args.verbose or not validation.ok:
            print(validation.describe())
            for mismatch in validation.mismatches:
                print(f"    {mismatch.describe()}")
    if args.sarif:
        with open(args.sarif, "w") as handle:
            json.dump(mismatch_sarif(validations), handle, indent=2)
            handle.write("\n")
    failed = [v for v in validations if not v.ok]
    total = sum(v.scenarios for v in validations)
    pruned = sum(v.pruned for v in validations)
    print(
        f"sweep-validate: {len(validations)} network(s), {total} scenarios "
        f"({pruned} pruned), {len(failed)} failed"
    )
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "validate":
        return _run_validate(argv[1:])
    return _run_report(argv)


if __name__ == "__main__":
    sys.exit(main())
