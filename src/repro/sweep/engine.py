"""The sweep driver: plan, batch-execute, extract minimal failing sets.

One sweep is: enumerate elements and scenarios, evaluate the property
on the base snapshot, prune (:mod:`repro.sweep.prune`), then fan the
surviving scenarios out over the :func:`repro.parallel.pmap` pool.
Each evaluated scenario is a synthetic edit run through the PR 6 delta
engine, so only protocol state reachable from the failed elements
re-converges; the base session's cache entries are pinned via
``SnapshotCache.protect`` for the duration (forked pool workers inherit
the pin set, so their own stores cannot evict the base out from under a
sibling's delta).

Progress streams into the always-on flight recorder (``sweep_progress``
events carry the originating request id), and ``sweep.*`` counters and
the per-scenario latency histogram feed the Prometheus exposition.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.parallel import pmap
from repro.sweep.prune import (
    EVALUATE,
    PRUNED_CUT,
    PRUNED_DISCONNECTED,
    PRUNED_FINGERPRINT,
    SweepPlan,
    base_protect_entries,
    plan_sweep,
)
from repro.sweep.scenarios import (
    ALL_KINDS,
    BASE_SCENARIO_ID,
    FailureElement,
    ReachabilityProperty,
    Scenario,
    Verdict,
    default_property,
    enumerate_elements,
    enumerate_scenarios,
    evaluate_property,
)

#: Outcome statuses (plan statuses plus the executed one).
EVALUATED = "evaluated"


@dataclass
class ScenarioOutcome:
    """One scenario's verdict and how it was obtained."""

    scenario_id: str
    elements: Tuple[str, ...]
    status: str  # evaluated | pruned-disconnected | pruned-cut | pruned-fingerprint
    verdict: Verdict
    #: For fingerprint-pruned scenarios: whose verdict this is.
    representative: Optional[str] = None
    #: Wall seconds spent simulating (0.0 for pruned scenarios).
    seconds: float = 0.0
    #: Delta-engine disposition for evaluated scenarios.
    delta_fallback: Optional[bool] = None
    dirty_devices: Optional[int] = None

    def to_json(self) -> Dict:
        body: Dict = {
            "scenario": self.scenario_id,
            "elements": list(self.elements),
            "status": self.status,
            "verdict": self.verdict.to_json(),
        }
        if self.representative is not None:
            body["representative"] = self.representative
        if self.status == EVALUATED:
            body["seconds"] = round(self.seconds, 6)
            body["delta_fallback"] = self.delta_fallback
            body["dirty_devices"] = self.dirty_devices
        return body


@dataclass
class SweepStats:
    elements: int = 0
    scenarios: int = 0
    evaluated: int = 0
    pruned_disconnected: int = 0
    pruned_cut: int = 0
    pruned_fingerprint: int = 0
    truncated: int = 0
    wall_seconds: float = 0.0
    delta_fallbacks: int = 0

    @property
    def pruned(self) -> int:
        return (
            self.pruned_disconnected
            + self.pruned_cut
            + self.pruned_fingerprint
        )

    @property
    def pruned_fraction(self) -> float:
        return self.pruned / self.scenarios if self.scenarios else 0.0

    @property
    def scenarios_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.scenarios / self.wall_seconds

    def to_json(self) -> Dict:
        return {
            "elements": self.elements,
            "scenarios": self.scenarios,
            "evaluated": self.evaluated,
            "pruned": self.pruned,
            "pruned_disconnected": self.pruned_disconnected,
            "pruned_cut": self.pruned_cut,
            "pruned_fingerprint": self.pruned_fingerprint,
            "pruned_fraction": round(self.pruned_fraction, 4),
            "truncated": self.truncated,
            "wall_seconds": round(self.wall_seconds, 6),
            "scenarios_per_second": round(self.scenarios_per_second, 3),
            "delta_fallbacks": self.delta_fallbacks,
        }


@dataclass
class SweepResult:
    """Everything one ``Session.sweep`` call produced."""

    prop: ReachabilityProperty
    k: int
    kinds: Tuple[str, ...]
    base_verdict: Verdict
    outcomes: List[ScenarioOutcome]
    #: Element-id sets that break the property while every enumerated
    #: proper subset does not. Empty when the base already fails (the
    #: empty set dominates everything) — see :attr:`base_broken`.
    minimal_failing_sets: List[Tuple[str, ...]] = field(default_factory=list)
    stats: SweepStats = field(default_factory=SweepStats)

    @property
    def base_broken(self) -> bool:
        return not self.base_verdict.holds

    def failing(self) -> List[ScenarioOutcome]:
        return [o for o in self.outcomes if not o.verdict.holds]

    def single_points_of_failure(self) -> List[Tuple[str, ...]]:
        return [s for s in self.minimal_failing_sets if len(s) == 1]

    def outcome(self, scenario_id: str) -> Optional[ScenarioOutcome]:
        for outcome in self.outcomes:
            if outcome.scenario_id == scenario_id:
                return outcome
        return None

    def to_json(self) -> Dict:
        return {
            "schema": "repro-sweep/v1",
            "property": self.prop.to_json(),
            "k": self.k,
            "kinds": list(self.kinds),
            "base_verdict": self.base_verdict.to_json(),
            "base_broken": self.base_broken,
            "scenarios": [o.to_json() for o in self.outcomes],
            "minimal_failing_sets": [
                list(s) for s in self.minimal_failing_sets
            ],
            "stats": self.stats.to_json(),
        }


# ----------------------------------------------------------------------
# Minimal failing sets


def minimal_failing_sets(
    outcomes: Sequence[ScenarioOutcome], base_holds: bool
) -> List[Tuple[str, ...]]:
    """Failing element sets none of whose enumerated proper subsets fail.

    Every proper subset is checked, not just the immediate ones: routing
    is not monotone under failures (a second failure can *restore*
    reachability by steering around a denying ACL), so {a} failing says
    nothing about {a, b}. When the base itself fails, the empty set
    dominates everything and no minimal sets are reported. Minimality is
    relative to the enumerated universe — with a truncating ``limit``
    some subsets may not have been seen.
    """
    if not base_holds:
        return []
    failing: Dict[frozenset, Tuple[str, ...]] = {}
    for outcome in outcomes:
        if not outcome.verdict.holds:
            failing[frozenset(outcome.elements)] = outcome.elements
    minimal: List[Tuple[str, ...]] = []
    for key in sorted(failing, key=lambda s: (len(s), sorted(s))):
        if not any(other < key for other in failing if other is not key):
            minimal.append(tuple(sorted(failing[key])))
    return minimal


# ----------------------------------------------------------------------
# Execution


def _record_progress(done: int, total: int, pruned: int) -> None:
    obs.flight.record(
        "sweep_progress",
        f"{done}/{total} scenarios",
        done=done,
        total=total,
        pruned=pruned,
    )


def _record_metrics(stats: SweepStats, minimal: int) -> None:
    metrics = obs.metrics()
    metrics.inc("sweep.runs")
    metrics.inc("sweep.scenarios", stats.scenarios)
    metrics.inc("sweep.scenarios_evaluated", stats.evaluated)
    metrics.inc("sweep.scenarios_pruned", stats.pruned)
    metrics.inc("sweep.scenarios_pruned.disconnected", stats.pruned_disconnected)
    metrics.inc("sweep.scenarios_pruned.cut", stats.pruned_cut)
    metrics.inc("sweep.scenarios_pruned.fingerprint", stats.pruned_fingerprint)
    metrics.inc("sweep.minimal_sets_found", minimal)
    metrics.inc("sweep.delta_fallbacks", stats.delta_fallbacks)


def sweep_session(
    session,
    k: int = 1,
    kinds: Sequence[str] = ALL_KINDS,
    prop: Optional[ReachabilityProperty] = None,
    prune: bool = True,
    jobs: Optional[int] = None,
    limit: Optional[int] = None,
    max_elements: Optional[int] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    validate: Optional[bool] = None,
) -> SweepResult:
    """Implementation behind :meth:`repro.core.session.Session.sweep`."""
    if session._configs is None:
        raise ValueError(
            "sweep requires a session built via Session.from_texts or "
            "Session.from_dir (scenarios are synthetic config edits)"
        )
    started = time.perf_counter()
    kinds = tuple(kinds)
    snapshot = session.snapshot
    configs = session._configs
    if prop is None:
        prop = default_property(session)

    with obs.span("sweep", k=k, kinds=",".join(kinds)):
        elements = enumerate_elements(
            snapshot, kinds=kinds, max_elements=max_elements
        )
        scenarios, truncated = enumerate_scenarios(elements, k, limit=limit)
        base_verdict = evaluate_property(session, prop)
        with obs.span("sweep.plan", scenarios=len(scenarios)):
            plan = plan_sweep(snapshot, configs, scenarios, prop, prune=prune)
        counts = plan.counts()
        total = len(plan.entries)
        pruned_total = total - counts[EVALUATE]
        _record_progress(pruned_total, total, pruned_total)

        to_run = [e for e in plan.entries if e.status == EVALUATE]
        payloads = [
            (entry.scenario.scenario_id, entry.changed_configs)
            for entry in to_run
        ]
        run_validate = validate

        def _evaluate_one(payload):
            scenario_id, changed_configs = payload
            t0 = time.perf_counter()
            scenario_session = session.delta(
                changed_configs, validate=run_validate, store_result=False
            )
            # One-shot analysis: scenario data planes are never revisited,
            # so don't let the lazy property persist them either.
            scenario_session._cache = None
            verdict = evaluate_property(scenario_session, prop)
            info = scenario_session.delta_info
            return (
                scenario_id,
                verdict,
                bool(info.fallback),
                len(info.dirty_devices),
                time.perf_counter() - t0,
            )

        def _progress(done: int, _total_items: int) -> None:
            _record_progress(pruned_total + done, total, pruned_total)
            if progress is not None:
                progress(pruned_total + done, total)

        protect = base_protect_entries(session)
        if protect and session._cache is not None:
            with session._cache.protect(protect):
                raw = pmap(
                    _evaluate_one, payloads, jobs=jobs, progress=_progress
                )
        else:
            raw = pmap(_evaluate_one, payloads, jobs=jobs, progress=_progress)

    evaluated: Dict[str, ScenarioOutcome] = {}
    metrics = obs.metrics()
    stats = SweepStats(
        elements=len(elements),
        scenarios=total,
        evaluated=counts[EVALUATE],
        pruned_disconnected=counts[PRUNED_DISCONNECTED],
        pruned_cut=counts[PRUNED_CUT],
        pruned_fingerprint=counts[PRUNED_FINGERPRINT],
        truncated=truncated,
    )
    for entry, result in zip(to_run, raw):
        scenario_id, verdict, fallback, dirty, seconds = result
        stats.delta_fallbacks += int(fallback)
        metrics.observe_bucket(
            "sweep.scenario.seconds", seconds, status=EVALUATED
        )
        evaluated[scenario_id] = ScenarioOutcome(
            scenario_id=scenario_id,
            elements=entry.scenario.element_ids(),
            status=EVALUATED,
            verdict=verdict,
            seconds=seconds,
            delta_fallback=fallback,
            dirty_devices=dirty,
        )

    outcomes: List[ScenarioOutcome] = []
    for entry in plan.entries:
        scenario_id = entry.scenario.scenario_id
        if entry.status == EVALUATE:
            outcomes.append(evaluated[scenario_id])
            continue
        if entry.status == PRUNED_DISCONNECTED:
            verdict = Verdict(
                holds=base_verdict.holds,
                converged=base_verdict.converged,
                dispositions=base_verdict.dispositions,
                paths=base_verdict.paths,
            )
            representative = BASE_SCENARIO_ID
        elif entry.status == PRUNED_CUT:
            verdict = Verdict(holds=False, converged=None)
            representative = None
        else:  # PRUNED_FINGERPRINT
            representative = entry.representative
            if representative == BASE_SCENARIO_ID:
                verdict = base_verdict
            else:
                verdict = evaluated[representative].verdict
        outcomes.append(
            ScenarioOutcome(
                scenario_id=scenario_id,
                elements=entry.scenario.element_ids(),
                status=entry.status,
                verdict=verdict,
                representative=representative,
            )
        )

    minimal = minimal_failing_sets(outcomes, base_verdict.holds)
    stats.wall_seconds = time.perf_counter() - started
    _record_metrics(stats, len(minimal))
    _record_progress(total, total, pruned_total)
    obs.flight.record(
        "sweep_done",
        f"{total} scenarios, {len(minimal)} minimal failing sets",
        scenarios=total,
        pruned=pruned_total,
        minimal_sets=len(minimal),
        wall_s=round(stats.wall_seconds, 3),
    )
    return SweepResult(
        prop=prop,
        k=k,
        kinds=kinds,
        base_verdict=base_verdict,
        outcomes=outcomes,
        minimal_failing_sets=minimal,
        stats=stats,
    )
