"""Equivalence-class pruning: decide scenario verdicts without simulating.

Plankton's observation (PAPERS.md) is that the k-failure scenario space
is dominated by equivalence classes — most members provably share a
verdict with one representative. Three classes are exploited here, each
with a soundness argument spelled out in DESIGN.md ("Sweep pruning
soundness"):

1. **disconnected** — every host the scenario touches lies outside the
   property's *scope* (the influence-graph components containing the
   source and every owner of the destination address). The influence
   graph unions L3 adjacency, candidate-BGP-session edges, and
   same-address ownership coupling (duplicate IPs can re-target a BGP
   session when an owner's interface dies, so co-owners are coupled
   even without a link). Nothing inside the scope changes config or
   state, so the verdict is the base verdict.
2. **cut** — the scenario's shutdowns physically sever the source from
   every owner of the destination in the L3 graph. No forwarding path
   can reach an owner, so ACCEPTED is impossible: the property is
   broken, without simulating. Cuts are monotone (supersets of a cut
   are cuts), which is where the quadratic savings at k=2 comes from.
3. **fingerprint** — the scenario's per-host routing-fingerprint delta
   equals that of an already-evaluated scenario. Every operation the
   sweep emits flips only fingerprint-covered fields (interface
   ``enabled``, ``ospf_passive``), so equal deltas mean equal parsed
   snapshots — the verdict (indeed the whole trace) is the
   representative's. This is what collapses {flap u, flap v} onto the
   link element, and a node failure onto the set of its flaps.

Everything else is **evaluate**: materialize the edit and run it
through the delta engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.config.loader import parse_config_text
from repro.core.cache import device_key
from repro.delta.dirty import protocol_edges, routing_fingerprint
from repro.hdr.ip import Ip
from repro.routing.topology import (
    InterfaceId,
    build_layer3_topology,
)
from repro.sweep.scenarios import (
    BASE_SCENARIO_ID,
    FailureOp,
    ReachabilityProperty,
    Scenario,
    host_files,
    _render_ops,
)

#: Plan-entry statuses.
EVALUATE = "evaluate"
PRUNED_DISCONNECTED = "pruned-disconnected"
PRUNED_CUT = "pruned-cut"
PRUNED_FINGERPRINT = "pruned-fingerprint"


@dataclass
class PlanEntry:
    """One scenario's disposition after pruning."""

    scenario: Scenario
    status: str
    #: For fingerprint-pruned entries: the scenario id whose verdict
    #: this one shares (``BASE_SCENARIO_ID`` when the edit collapses
    #: onto the unedited snapshot).
    representative: Optional[str] = None
    #: For evaluate entries: filename -> new text.
    changed_configs: Optional[Dict[str, str]] = None


@dataclass
class SweepPlan:
    """The pruned execution plan for one sweep."""

    entries: List[PlanEntry]
    #: Hosts inside the property's influence scope.
    scope_hosts: Set[str] = field(default_factory=set)
    #: Base-snapshot owners of the destination address.
    owners: Set[str] = field(default_factory=set)

    def counts(self) -> Dict[str, int]:
        out = {
            EVALUATE: 0,
            PRUNED_DISCONNECTED: 0,
            PRUNED_CUT: 0,
            PRUNED_FINGERPRINT: 0,
        }
        for entry in self.entries:
            out[entry.status] += 1
        return out


# ----------------------------------------------------------------------
# Influence graph and scope


def _components(hosts: Sequence[str], edges: Set[Tuple[str, str]]) -> Dict[str, int]:
    """Connected-component labels over an undirected host graph."""
    adjacency: Dict[str, Set[str]] = {host: set() for host in hosts}
    for a, b in edges:
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)
    label: Dict[str, int] = {}
    current = 0
    for host in sorted(adjacency):
        if host in label:
            continue
        frontier = [host]
        label[host] = current
        while frontier:
            node = frontier.pop()
            for neighbor in adjacency[node]:
                if neighbor not in label:
                    label[neighbor] = current
                    frontier.append(neighbor)
        current += 1
    return label


def influence_edges(snapshot) -> Set[Tuple[str, str]]:
    """Undirected host edges along which a config change anywhere on one
    side could alter routing or forwarding on the other: L3 adjacency,
    protocol edges (OSPF + candidate BGP sessions), and same-address
    ownership coupling (including shut interfaces — a failure elsewhere
    can promote them in session resolution races)."""
    edges: Set[Tuple[str, str]] = set()
    topology = build_layer3_topology(snapshot)
    for edge in topology.edges():
        a, b = edge.tail.node, edge.head.node
        if a != b:
            edges.add((min(a, b), max(a, b)))
    edges |= protocol_edges(snapshot)
    owners_by_ip: Dict[Ip, Set[str]] = {}
    for hostname in snapshot.hostnames():
        device = snapshot.device(hostname)
        for iface in device.interfaces.values():
            if iface.address is not None:
                owners_by_ip.setdefault(iface.address, set()).add(hostname)
    for ip, owners in owners_by_ip.items():
        ordered = sorted(owners)
        for i, a in enumerate(ordered):
            for b in ordered[i + 1:]:
                edges.add((a, b))
    return edges


def property_scope(
    snapshot, prop: ReachabilityProperty
) -> Tuple[Set[str], Set[str]]:
    """(scope_hosts, owners): the union of influence components holding
    the source and every enabled owner of the destination address."""
    dst = Ip(prop.dst_ip)
    owners = {
        hostname
        for hostname in snapshot.hostnames()
        for _name, address, _len in snapshot.device(hostname).interface_ips()
        if address == dst
    }
    edges = influence_edges(snapshot)
    labels = _components(snapshot.hostnames(), edges)
    wanted = {labels[h] for h in owners | {prop.src_node} if h in labels}
    scope = {host for host, comp in labels.items() if comp in wanted}
    # A source absent from the snapshot would fail at evaluation time;
    # keep it in scope so no scenario is pruned to a stale base verdict.
    scope.add(prop.src_node)
    return scope, owners


# ----------------------------------------------------------------------
# Physical-cut check


class CutChecker:
    """Host-level reachability over the base L3 graph minus a scenario's
    shut interfaces."""

    def __init__(self, snapshot, prop: ReachabilityProperty, owners: Set[str]):
        topology = build_layer3_topology(snapshot)
        #: Undirected interface-pair edges of the base topology.
        self._links: List[Tuple[InterfaceId, InterfaceId]] = sorted(
            {tuple(sorted((e.tail, e.head))) for e in topology.edges()}
        )
        self._src = prop.src_node
        self._owners = owners

    def severed(self, shut: Set[InterfaceId]) -> bool:
        """True when no owner of the destination is reachable from the
        source over links whose endpoints both survived. Only meaningful
        when owners exist (an unowned address can never be ACCEPTED, but
        that verdict comes from the base evaluation, not from here)."""
        if not self._owners:
            return False
        if self._src in self._owners:
            return False
        adjacency: Dict[str, Set[str]] = {}
        for a, b in self._links:
            if a in shut or b in shut:
                continue
            adjacency.setdefault(a.node, set()).add(b.node)
            adjacency.setdefault(b.node, set()).add(a.node)
        seen = {self._src}
        frontier = [self._src]
        while frontier:
            node = frontier.pop()
            if node in self._owners:
                return False
            for neighbor in adjacency.get(node, ()):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return not (seen & self._owners)


# ----------------------------------------------------------------------
# Fingerprint memo


class FingerprintMemo:
    """Per-(host, op-set) routing fingerprints, computed by parsing just
    the edited file (not the whole snapshot) and memoized across the
    sweep — the cheap oracle behind fingerprint-class deduplication."""

    def __init__(self, snapshot, configs: Dict[str, str]):
        self._snapshot = snapshot
        self._configs = configs
        self._files = host_files(snapshot)
        self._base: Dict[str, str] = {}
        self._edited: Dict[Tuple[str, Tuple[FailureOp, ...]], str] = {}
        self.parses = 0

    def base_fingerprint(self, host: str) -> str:
        fp = self._base.get(host)
        if fp is None:
            fp = self._base[host] = routing_fingerprint(
                self._snapshot.device(host)
            )
        return fp

    def edited_fingerprint(self, host: str, ops: Tuple[FailureOp, ...]) -> str:
        key = (host, ops)
        fp = self._edited.get(key)
        if fp is None:
            filename = self._files[host]
            text = _render_ops(self._configs[filename], ops)
            device, _warnings = parse_config_text(text, filename)
            self.parses += 1
            fp = self._edited[key] = routing_fingerprint(device)
        return fp

    def delta_key(self, scenario: Scenario) -> FrozenSet[Tuple[str, str]]:
        """The scenario's fingerprint delta: {(host, new_fp)} for every
        touched host whose fingerprint actually moved. Equal keys ⇒
        identical parsed snapshots (see module docstring)."""
        delta: Set[Tuple[str, str]] = set()
        for host, ops in scenario.op_map().items():
            new_fp = self.edited_fingerprint(host, ops)
            if new_fp != self.base_fingerprint(host):
                delta.add((host, new_fp))
        return frozenset(delta)


# ----------------------------------------------------------------------
# Planning


def plan_sweep(
    snapshot,
    configs: Dict[str, str],
    scenarios: Sequence[Scenario],
    prop: ReachabilityProperty,
    prune: bool = True,
) -> SweepPlan:
    """Classify every scenario, in order, into a :class:`SweepPlan`.

    Order matters for fingerprint pruning: scenarios arrive sorted by
    (size, id), so representatives are always the smallest member of
    their equivalence class.
    """
    from repro.sweep.scenarios import render_scenario_edits

    entries: List[PlanEntry] = []
    if not prune:
        for scenario in scenarios:
            entries.append(
                PlanEntry(
                    scenario=scenario,
                    status=EVALUATE,
                    changed_configs=render_scenario_edits(
                        snapshot, configs, scenario
                    ),
                )
            )
        return SweepPlan(entries=entries)

    scope, owners = property_scope(snapshot, prop)
    cuts = CutChecker(snapshot, prop, owners)
    memo = FingerprintMemo(snapshot, configs)
    seen: Dict[FrozenSet[Tuple[str, str]], str] = {}
    for scenario in scenarios:
        touched = set(scenario.touched_hosts())
        if not touched & scope:
            entries.append(
                PlanEntry(scenario=scenario, status=PRUNED_DISCONNECTED)
            )
            continue
        shut = {
            iid
            for element in scenario.elements
            for iid in element.shut_interfaces()
        }
        if cuts.severed(shut):
            entries.append(PlanEntry(scenario=scenario, status=PRUNED_CUT))
            continue
        delta = memo.delta_key(scenario)
        if not delta:
            entries.append(
                PlanEntry(
                    scenario=scenario,
                    status=PRUNED_FINGERPRINT,
                    representative=BASE_SCENARIO_ID,
                )
            )
            continue
        representative = seen.get(delta)
        if representative is not None:
            entries.append(
                PlanEntry(
                    scenario=scenario,
                    status=PRUNED_FINGERPRINT,
                    representative=representative,
                )
            )
            continue
        seen[delta] = scenario.scenario_id
        entries.append(
            PlanEntry(
                scenario=scenario,
                status=EVALUATE,
                changed_configs=render_scenario_edits(
                    snapshot, configs, scenario
                ),
            )
        )
    return SweepPlan(entries=entries, scope_hosts=scope, owners=owners)


def base_protect_entries(session) -> List[Tuple[str, str]]:
    """The cache entries a sweep pins while scenarios execute: the base
    snapshot, its per-device parse entries, and its data plane. Nested
    inside, each scenario's delta re-pins the device entries it reuses —
    the reentrant-protect case SnapshotCache.protect() must support."""
    if session._cache is None or session._configs is None:
        return []
    entries: List[Tuple[str, str]] = [("snapshot", session._cache_key)]
    for filename, text in sorted(session._configs.items()):
        entries.append(("device", device_key(filename, text)))
    entries.append(("dataplane", session.snapshot_key))
    return entries
