"""Resilience report rendering: findings, text/JSON/SARIF, fail-on gate.

A sweep's raw output is per-scenario verdicts; what an operator (or a
CI pipeline) wants is the *resilience findings* distilled from them:

* ``base-broken`` — the property already fails with zero failures.
* ``single-point-of-failure`` — a minimal failing set of size 1: one
  link/node/interface/policy flip alone breaks the property.
* ``failure-set`` — a minimal failing set of size >= 2: the property
  survives any strict subset but breaks when these fail together.

The SARIF rendering mirrors :mod:`repro.lint.sarif` (2.1.0, one run,
rule metadata + results) so sweep findings ride the same CI annotation
tooling as lint findings; locations point at the config file of the
first device each failing element touches.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sweep.engine import SweepResult

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-sweep"
TOOL_VERSION = "1.0.0"

RULE_BASE_BROKEN = "base-broken"
RULE_SPOF = "single-point-of-failure"
RULE_FAILURE_SET = "failure-set"

_RULES: Tuple[Tuple[str, str, str], ...] = (
    (
        RULE_BASE_BROKEN,
        "error",
        "The property fails on the unmodified snapshot",
    ),
    (
        RULE_SPOF,
        "error",
        "A single failure element breaks the property",
    ),
    (
        RULE_FAILURE_SET,
        "warning",
        "A minimal combination of failure elements breaks the property",
    ),
)

#: --fail-on gate levels, weakest to strictest.
FAIL_ON_CHOICES = ("none", "base", "spof", "any")


@dataclass(frozen=True)
class ResilienceFinding:
    """One distilled resilience defect."""

    rule_id: str
    level: str
    message: str
    elements: Tuple[str, ...]
    #: Config file of the first touched device (SARIF location anchor).
    file: Optional[str] = None

    def to_json(self) -> Dict:
        return {
            "rule": self.rule_id,
            "level": self.level,
            "message": self.message,
            "elements": list(self.elements),
            "file": self.file,
        }


def findings_from_result(
    result: SweepResult, host_to_file: Optional[Dict[str, str]] = None
) -> List[ResilienceFinding]:
    """Distill a sweep result into resilience findings."""
    host_to_file = host_to_file or {}
    findings: List[ResilienceFinding] = []
    if result.base_broken:
        findings.append(
            ResilienceFinding(
                rule_id=RULE_BASE_BROKEN,
                level="error",
                message=(
                    f"property {result.prop.describe()} fails on the "
                    "unmodified snapshot — no failure needed"
                ),
                elements=(),
            )
        )
        return findings
    # Location anchors come from the hostnames embedded in element ids.
    for failing_set in result.minimal_failing_sets:
        anchor = None
        for element_id in failing_set:
            host = _host_of_element(element_id)
            if host and host in host_to_file:
                anchor = host_to_file[host]
                break
        if len(failing_set) == 1:
            findings.append(
                ResilienceFinding(
                    rule_id=RULE_SPOF,
                    level="error",
                    message=(
                        f"single point of failure: {failing_set[0]} alone "
                        f"breaks {result.prop.describe()}"
                    ),
                    elements=failing_set,
                    file=anchor,
                )
            )
        else:
            findings.append(
                ResilienceFinding(
                    rule_id=RULE_FAILURE_SET,
                    level="warning",
                    message=(
                        f"minimal failing set {{{', '.join(failing_set)}}} "
                        f"breaks {result.prop.describe()} (every proper "
                        "subset survives)"
                    ),
                    elements=failing_set,
                    file=anchor,
                )
            )
    return findings


def _host_of_element(element_id: str) -> Optional[str]:
    """The first hostname embedded in a canonical element id."""
    kind, _sep, rest = element_id.partition(":")
    if not rest:
        return None
    if kind == "node":
        return rest
    # link:a[i]--b[j], iface:a[i], ospf-passive:a[i]
    return rest.split("[", 1)[0] or None


def gate_exit_code(
    findings: Sequence[ResilienceFinding], fail_on: str
) -> int:
    """The process exit code the --fail-on gate dictates."""
    if fail_on not in FAIL_ON_CHOICES:
        raise ValueError(
            f"unknown --fail-on level {fail_on!r} "
            f"(choose from {', '.join(FAIL_ON_CHOICES)})"
        )
    if fail_on == "none":
        return 0
    rules = {f.rule_id for f in findings}
    if fail_on == "base":
        return 1 if RULE_BASE_BROKEN in rules else 0
    if fail_on == "spof":
        return 1 if rules & {RULE_BASE_BROKEN, RULE_SPOF} else 0
    return 1 if findings else 0


# ----------------------------------------------------------------------
# Renderers


def render_text(
    result: SweepResult,
    findings: Sequence[ResilienceFinding],
    verbose: bool = False,
) -> str:
    stats = result.stats
    lines: List[str] = []
    lines.append("== resilience sweep ==")
    lines.append(f"property        {result.prop.describe()}")
    lines.append(
        "base verdict    "
        + ("holds" if result.base_verdict.holds else "FAILS")
    )
    lines.append(
        f"scenarios       {stats.scenarios} over {stats.elements} elements "
        f"(k<={result.k}, kinds: {', '.join(result.kinds)})"
    )
    lines.append(
        f"evaluated       {stats.evaluated}  "
        f"pruned {stats.pruned} ({stats.pruned_fraction:.0%}: "
        f"{stats.pruned_disconnected} disconnected, "
        f"{stats.pruned_cut} cut, "
        f"{stats.pruned_fingerprint} fingerprint)"
    )
    if stats.truncated:
        lines.append(
            f"truncated       {stats.truncated} scenarios dropped by --limit"
        )
    lines.append(
        f"wall            {stats.wall_seconds:.2f}s "
        f"({stats.scenarios_per_second:.1f} scenarios/s)"
    )
    failing = result.failing()
    lines.append(
        f"verdicts        {len(result.outcomes) - len(failing)} hold, "
        f"{len(failing)} fail"
    )
    lines.append("")
    if not findings:
        lines.append(
            f"resilient: property survives every swept combination of "
            f"up to {result.k} failure(s)"
        )
    else:
        lines.append(f"{len(findings)} finding(s):")
        for finding in findings:
            lines.append(f"  [{finding.level}] {finding.rule_id}: "
                         f"{finding.message}")
    if verbose:
        lines.append("")
        lines.append("per-scenario verdicts:")
        for outcome in result.outcomes:
            verdict = "holds" if outcome.verdict.holds else "FAILS"
            extra = outcome.status
            if outcome.representative:
                extra += f" via {outcome.representative}"
            lines.append(
                f"  {verdict:6s} {outcome.scenario_id}  ({extra})"
            )
    return "\n".join(lines) + "\n"


def render_json(
    result: SweepResult, findings: Sequence[ResilienceFinding]
) -> str:
    body = result.to_json()
    body["findings"] = [f.to_json() for f in findings]
    return json.dumps(body, indent=2, sort_keys=True) + "\n"


def to_sarif(
    result: SweepResult, findings: Sequence[ResilienceFinding]
) -> Dict:
    """Render findings as a single-run SARIF 2.1.0 log (the shape
    :mod:`repro.lint.sarif` emits, so both ride the same CI viewers)."""
    rule_index = {rule_id: i for i, (rule_id, _l, _d) in enumerate(_RULES)}
    rule_metadata = [
        {
            "id": rule_id,
            "name": rule_id.replace("-", " ").title().replace(" ", ""),
            "shortDescription": {"text": description},
            "defaultConfiguration": {"level": level},
            "properties": {"category": "resilience"},
        }
        for rule_id, level, description in _RULES
    ]
    results: List[Dict] = []
    for finding in findings:
        entry: Dict = {
            "ruleId": finding.rule_id,
            "ruleIndex": rule_index[finding.rule_id],
            "level": finding.level,
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.file or "<snapshot>"
                        }
                    }
                }
            ],
            "properties": {
                "elements": list(finding.elements),
                "property": result.prop.describe(),
            },
        }
        results.append(entry)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": TOOL_VERSION,
                        "informationUri": "https://github.com/batfish/batfish",
                        "rules": rule_metadata,
                    }
                },
                "results": results,
                "properties": {"stats": result.stats.to_json()},
            }
        ],
    }


def render_sarif(
    result: SweepResult, findings: Sequence[ResilienceFinding]
) -> str:
    return json.dumps(to_sarif(result, findings), indent=2) + "\n"
