"""Failure-scenario modeling: elements, edits, and properties.

A *failure element* is one thing that can break — a link, a node, an
interface, or a policy knob — expressed as a set of per-interface
operations on specific devices. A *scenario* is a set of up to ``k``
elements applied together. Scenarios are materialized as **synthetic
config edits**: append-only text the vendor parsers merge into the
device's existing stanzas (the same mechanism the delta-engine
validation suite uses), so every scenario flows through the ordinary
parse → delta → simulate pipeline rather than a bespoke mutation API.

Append-only is load-bearing: the edit never shifts existing lines, so
source-location annotations of untouched structures stay stable and the
routing fingerprint (`repro.delta.dirty`) sees exactly the flipped
fields — which is what makes fingerprint-class pruning sound.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config.loader import detect_syntax
from repro.config.model import Snapshot
from repro.hdr import fields as f
from repro.hdr.ip import Ip
from repro.hdr.packet import Packet
from repro.reachability.graph import Disposition
from repro.routing.topology import InterfaceId, build_layer3_topology

#: The operations a failure element performs on one interface.
OP_SHUTDOWN = "shutdown"
OP_OSPF_PASSIVE = "ospf-passive"

#: Element kinds, in the order they enumerate.
KIND_LINK = "link"
KIND_NODE = "node"
KIND_INTERFACE = "interface"
KIND_POLICY = "policy"
ALL_KINDS = (KIND_LINK, KIND_NODE, KIND_INTERFACE, KIND_POLICY)

#: One operation: (hostname, interface, op, ospf_area). The area rides
#: along because the juniperish rendering of a passive toggle needs it.
FailureOp = Tuple[str, str, str, int]


@dataclass(frozen=True, order=True)
class FailureElement:
    """One failable thing, as a canonical id plus its config operations."""

    kind: str
    element_id: str
    ops: Tuple[FailureOp, ...]

    def touched_hosts(self) -> Tuple[str, ...]:
        return tuple(sorted({host for host, _i, _o, _a in self.ops}))

    def shut_interfaces(self) -> Tuple[InterfaceId, ...]:
        """Interfaces this element administratively disables."""
        return tuple(
            InterfaceId(host, iface)
            for host, iface, op, _a in self.ops
            if op == OP_SHUTDOWN
        )


@dataclass(frozen=True)
class Scenario:
    """A set of failure elements applied together (sorted, deduped)."""

    elements: Tuple[FailureElement, ...]

    @property
    def scenario_id(self) -> str:
        if not self.elements:
            return BASE_SCENARIO_ID
        return "+".join(e.element_id for e in self.elements)

    def touched_hosts(self) -> Tuple[str, ...]:
        return tuple(
            sorted({h for e in self.elements for h in e.touched_hosts()})
        )

    def element_ids(self) -> Tuple[str, ...]:
        return tuple(e.element_id for e in self.elements)

    def op_map(self) -> Dict[str, Tuple[FailureOp, ...]]:
        """Per-host canonical operation sets (union over elements).

        Two scenarios with equal op maps edit every file identically, so
        they denote the *same* snapshot — the basis of cross-element
        deduplication ({flap u, flap v} of a link's two ends collapses
        onto the link element itself).
        """
        by_host: Dict[str, set] = {}
        for element in self.elements:
            for op in element.ops:
                by_host.setdefault(op[0], set()).add(op)
        return {host: tuple(sorted(ops)) for host, ops in by_host.items()}


#: The id the empty scenario (and fingerprint-class representatives that
#: collapse onto the unedited snapshot) reports.
BASE_SCENARIO_ID = "<base>"


def _make_scenario(elements: Iterable[FailureElement]) -> Scenario:
    return Scenario(elements=tuple(sorted(set(elements))))


# ----------------------------------------------------------------------
# Element enumeration


def enumerate_elements(
    snapshot: Snapshot,
    kinds: Sequence[str] = ALL_KINDS,
    max_elements: Optional[int] = None,
) -> List[FailureElement]:
    """All failable elements of a snapshot, deterministically ordered.

    * ``link``: each unordered pair of L3-adjacent interfaces (both ends
      shut down — the physical cable model).
    * ``node``: each device on the L3 topology (every enabled interface
      shut down — the device-death model).
    * ``interface``: each topology interface individually (one-sided
      flap, which is *not* the same as a link failure: the remote end
      keeps its connected route).
    * ``policy``: each OSPF-active, non-passive interface toggled to
      passive (adjacency lost, address still advertised).

    ``max_elements`` deterministically truncates the id-sorted list —
    the knob the differential validator and CI use to bound the subset
    lattice.
    """
    unknown = sorted(set(kinds) - set(ALL_KINDS))
    if unknown:
        raise ValueError(
            f"unknown element kind(s): {', '.join(unknown)} "
            f"(choose from {', '.join(ALL_KINDS)})"
        )
    topology = build_layer3_topology(snapshot)
    pairs = sorted(
        {
            tuple(sorted((edge.tail, edge.head)))
            for edge in topology.edges()
        }
    )
    topo_interfaces = sorted({iid for pair in pairs for iid in pair})
    topo_nodes = sorted({iid.node for iid in topo_interfaces})

    elements: List[FailureElement] = []
    if KIND_LINK in kinds:
        for a, b in pairs:
            elements.append(
                FailureElement(
                    kind=KIND_LINK,
                    element_id=f"link:{a}--{b}",
                    ops=(
                        (a.node, a.interface, OP_SHUTDOWN, 0),
                        (b.node, b.interface, OP_SHUTDOWN, 0),
                    ),
                )
            )
    if KIND_NODE in kinds:
        for hostname in topo_nodes:
            device = snapshot.device(hostname)
            ops = tuple(
                (hostname, name, OP_SHUTDOWN, 0)
                for name, iface in sorted(device.interfaces.items())
                if iface.enabled
            )
            if ops:
                elements.append(
                    FailureElement(
                        kind=KIND_NODE,
                        element_id=f"node:{hostname}",
                        ops=ops,
                    )
                )
    if KIND_INTERFACE in kinds:
        for iid in topo_interfaces:
            elements.append(
                FailureElement(
                    kind=KIND_INTERFACE,
                    element_id=f"iface:{iid}",
                    ops=((iid.node, iid.interface, OP_SHUTDOWN, 0),),
                )
            )
    if KIND_POLICY in kinds:
        for hostname in snapshot.hostnames():
            device = snapshot.device(hostname)
            for name, iface in sorted(device.interfaces.items()):
                if (
                    iface.enabled
                    and iface.ospf_enabled
                    and not iface.ospf_passive
                ):
                    elements.append(
                        FailureElement(
                            kind=KIND_POLICY,
                            element_id=f"ospf-passive:{hostname}[{name}]",
                            ops=(
                                (hostname, name, OP_OSPF_PASSIVE,
                                 iface.ospf_area),
                            ),
                        )
                    )
    elements.sort(key=lambda e: e.element_id)
    if max_elements is not None and len(elements) > max_elements:
        elements = elements[:max_elements]
    return elements


def enumerate_scenarios(
    elements: Sequence[FailureElement],
    k: int,
    limit: Optional[int] = None,
) -> Tuple[List[Scenario], int]:
    """Every non-empty subset of ``elements`` of size <= ``k``, ordered
    by (size, id). Returns ``(scenarios, truncated)`` where
    ``truncated`` counts scenarios dropped by ``limit``.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    scenarios: List[Scenario] = []
    truncated = 0
    for size in range(1, min(k, len(elements)) + 1):
        for combo in itertools.combinations(elements, size):
            if limit is not None and len(scenarios) >= limit:
                truncated += 1
                continue
            scenarios.append(_make_scenario(combo))
    return scenarios, truncated


# ----------------------------------------------------------------------
# Edit rendering (scenario -> changed config texts)


def _render_ops(text: str, ops: Sequence[FailureOp]) -> str:
    """Append the failure operations to one device's config text.

    Both parsers merge repeated stanzas onto the already-defined
    structures (``interface X`` blocks via setdefault on the ciscoish
    side, flat ``set`` lines on the juniperish side), so an append never
    perturbs anything the operations don't name.
    """
    syntax = detect_syntax(text)
    lines: List[str] = []
    for _host, iface, op, area in sorted(ops):
        if syntax == "juniperish":
            if op == OP_SHUTDOWN:
                lines.append(f"set interfaces {iface} disable")
            elif op == OP_OSPF_PASSIVE:
                lines.append(
                    f"set protocols ospf area {area} interface {iface} passive"
                )
            else:
                raise ValueError(f"unknown failure op {op!r}")
        else:
            if op == OP_SHUTDOWN:
                lines.append(f"interface {iface}\n shutdown\n!")
            elif op == OP_OSPF_PASSIVE:
                lines.append(f"interface {iface}\n ip ospf passive\n!")
            else:
                raise ValueError(f"unknown failure op {op!r}")
    body = text if text.endswith("\n") else text + "\n"
    return body + "\n".join(lines) + "\n"


def host_files(snapshot: Snapshot) -> Dict[str, str]:
    """hostname -> config filename (sources inverted; injective or bust)."""
    mapping: Dict[str, str] = {}
    for filename, hostname in snapshot.sources.items():
        if hostname in mapping:
            raise ValueError(
                f"duplicate hostname {hostname!r} across config files"
            )
        mapping[hostname] = filename
    return mapping


def render_scenario_edits(
    snapshot: Snapshot,
    configs: Dict[str, str],
    scenario: Scenario,
) -> Dict[str, str]:
    """The ``changed_configs`` dict (filename -> new text) materializing
    one scenario against the base snapshot."""
    files = host_files(snapshot)
    changed: Dict[str, str] = {}
    for host, ops in sorted(scenario.op_map().items()):
        filename = files.get(host)
        if filename is None or filename not in configs:
            raise ValueError(f"no config file for host {host!r}")
        changed[filename] = _render_ops(configs[filename], ops)
    return changed


# ----------------------------------------------------------------------
# The property under sweep, and its verdicts


@dataclass(frozen=True)
class ReachabilityProperty:
    """The question each scenario answers: does a concrete packet
    injected at (src_node, src_interface) still reach ``dst_ip`` on
    every forwarding path?

    "Every path" (not "some path") is deliberate: a resilience sweep is
    looking for black holes, and an ECMP spread where one branch drops
    traffic is a failure operators care about.
    """

    src_node: str
    src_interface: str
    dst_ip: str
    src_ip: str = "0.0.0.0"
    ip_protocol: int = f.PROTO_ICMP
    dst_port: int = 0

    def to_packet(self) -> Packet:
        return Packet(
            dst_ip=Ip(self.dst_ip),
            src_ip=Ip(self.src_ip),
            ip_protocol=self.ip_protocol,
            dst_port=self.dst_port,
        )

    def describe(self) -> str:
        return (
            f"{self.src_node}[{self.src_interface}] -> {self.dst_ip} "
            f"(proto {self.ip_protocol})"
        )

    def to_json(self) -> Dict:
        return {
            "src_node": self.src_node,
            "src_interface": self.src_interface,
            "dst_ip": self.dst_ip,
            "src_ip": self.src_ip,
            "ip_protocol": self.ip_protocol,
            "dst_port": self.dst_port,
        }


@dataclass(frozen=True)
class Verdict:
    """One scenario's outcome.

    The *canonical* rendering — what the differential validator compares
    byte-for-byte between the pruned sweep and brute force — is only
    ``{"holds": bool}``: pruning can prove a verdict without simulating,
    so path detail and convergence flags are advisory extras.
    ``converged`` is None for verdicts proved without simulation.
    """

    holds: bool
    converged: Optional[bool] = True
    dispositions: Tuple[str, ...] = ()
    paths: int = 0

    def canonical(self) -> str:
        return '{"holds": %s}' % ("true" if self.holds else "false")

    def to_json(self) -> Dict:
        body: Dict = {"holds": self.holds}
        if self.converged is not None:
            body["converged"] = self.converged
        if self.dispositions:
            body["dispositions"] = list(self.dispositions)
        if self.paths:
            body["paths"] = self.paths
        return body


def evaluate_property(session, prop: ReachabilityProperty) -> Verdict:
    """Evaluate the property on one (base or scenario) session."""
    if not session.dataplane.converged:
        # Can't certify delivery on an oscillating network.
        return Verdict(holds=False, converged=False)
    traces = session.traceroute(
        prop.to_packet(), prop.src_node, prop.src_interface
    )
    dispositions = tuple(sorted({t.disposition.value for t in traces}))
    holds = bool(traces) and all(
        t.disposition is Disposition.ACCEPTED for t in traces
    )
    return Verdict(
        holds=holds,
        converged=True,
        dispositions=dispositions,
        paths=len(traces),
    )


def default_property(session) -> ReachabilityProperty:
    """A deterministic default property for CLI/benchmark use: inject at
    the lexically-first topology interface, target the lexically-last
    other device's first address."""
    snapshot = session.snapshot
    topology = build_layer3_topology(snapshot)
    edges = topology.edges()
    if not edges:
        raise ValueError(
            "snapshot has no L3 adjacencies; give an explicit property"
        )
    src = min(edge.tail for edge in edges)
    src_ip = next(
        str(edge.tail_ip) for edge in edges if edge.tail == src
    )
    candidates = [
        hostname
        for hostname in snapshot.hostnames()
        if hostname != src.node and snapshot.device(hostname).interface_ips()
    ]
    dst_host = candidates[-1] if candidates else src.node
    dst_entries = sorted(snapshot.device(dst_host).interface_ips())
    dst_ip = str(dst_entries[0][1])
    return ReachabilityProperty(
        src_node=src.node,
        src_interface=src.interface,
        dst_ip=dst_ip,
        src_ip=src_ip,
    )
