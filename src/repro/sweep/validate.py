"""Differential validation: pruned sweep vs brute-force enumeration.

The pruning classes in :mod:`repro.sweep.prune` each carry a soundness
argument (DESIGN.md), but arguments rot; this module is the executable
check. For a network and a property it runs the same scenario universe
twice — once through the pruned sweep, once brute-force (every scenario
materialized, full ``Session.from_texts`` analysis, no cache, no delta
engine, no pruning) — and compares the **canonical verdict bytes**
(``Verdict.canonical()``) scenario by scenario. One mismatched byte
fails the network.

CI runs this across every registry network (the ``sweep-validate``
job); ``--max-elements`` bounds the element universe so the quadratic
k=2 lattice stays CI-sized. Mismatches render as a SARIF artifact so a
red run annotates exactly which scenario diverged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.session import Session
from repro.sweep.engine import SweepResult, sweep_session
from repro.sweep.scenarios import (
    ALL_KINDS,
    ReachabilityProperty,
    Verdict,
    default_property,
    enumerate_elements,
    enumerate_scenarios,
    evaluate_property,
    render_scenario_edits,
)

#: Element cap used by CI: keeps the k=2 lattice of the largest registry
#: networks to a few hundred brute-force simulations.
DEFAULT_MAX_ELEMENTS = 8


@dataclass
class Mismatch:
    scenario_id: str
    pruned: str
    brute: str
    status: str

    def describe(self) -> str:
        return (
            f"{self.scenario_id}: pruned={self.pruned} ({self.status}) "
            f"!= brute={self.brute}"
        )


@dataclass
class NetworkValidation:
    """One network's differential outcome."""

    network: str
    scenarios: int = 0
    pruned: int = 0
    mismatches: List[Mismatch] = field(default_factory=list)
    sweep_seconds: float = 0.0
    brute_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.mismatches

    @property
    def speedup(self) -> float:
        if self.sweep_seconds <= 0:
            return 0.0
        return self.brute_seconds / self.sweep_seconds

    def describe(self) -> str:
        status = "OK " if self.ok else "FAIL"
        return (
            f"{status} {self.network:6s} {self.scenarios:4d} scenarios, "
            f"{self.pruned:4d} pruned, brute {self.brute_seconds:7.2f}s vs "
            f"sweep {self.sweep_seconds:6.2f}s ({self.speedup:.1f}x), "
            f"{len(self.mismatches)} mismatch(es)"
        )


def brute_force_verdicts(
    configs: Dict[str, str],
    prop: ReachabilityProperty,
    k: int,
    kinds: Sequence[str],
    max_elements: Optional[int],
) -> Dict[str, Verdict]:
    """Ground truth: every scenario analyzed from scratch.

    Deliberately shares nothing with the sweep path beyond the scenario
    enumeration and edit rendering: plain ``Session.from_texts`` with no
    cache, no delta engine, no pruning. Same inputs, independent
    machinery.
    """
    base = Session.from_texts(configs, cache=False)
    elements = enumerate_elements(
        base.snapshot, kinds=kinds, max_elements=max_elements
    )
    scenarios, _truncated = enumerate_scenarios(elements, k)
    verdicts: Dict[str, Verdict] = {}
    for scenario in scenarios:
        changed = render_scenario_edits(base.snapshot, configs, scenario)
        merged = dict(configs)
        merged.update(changed)
        session = Session.from_texts(merged, cache=False)
        verdicts[scenario.scenario_id] = evaluate_property(session, prop)
    return verdicts


def validate_network(
    name: str,
    configs: Dict[str, str],
    k: int = 2,
    kinds: Sequence[str] = ("link",),
    max_elements: Optional[int] = DEFAULT_MAX_ELEMENTS,
    prop: Optional[ReachabilityProperty] = None,
    jobs: Optional[int] = None,
) -> Tuple[NetworkValidation, SweepResult]:
    """Differentially validate one network's configs."""
    session = Session.from_texts(configs, cache=False)
    if prop is None:
        prop = default_property(session)

    started = time.perf_counter()
    result = sweep_session(
        session,
        k=k,
        kinds=kinds,
        prop=prop,
        max_elements=max_elements,
        jobs=jobs,
    )
    sweep_seconds = time.perf_counter() - started

    started = time.perf_counter()
    brute = brute_force_verdicts(configs, prop, k, kinds, max_elements)
    brute_seconds = time.perf_counter() - started

    validation = NetworkValidation(
        network=name,
        scenarios=result.stats.scenarios,
        pruned=result.stats.pruned,
        sweep_seconds=sweep_seconds,
        brute_seconds=brute_seconds,
    )
    swept = {o.scenario_id: o for o in result.outcomes}
    if set(swept) != set(brute):
        only_sweep = sorted(set(swept) - set(brute))
        only_brute = sorted(set(brute) - set(swept))
        for scenario_id in only_sweep + only_brute:
            validation.mismatches.append(
                Mismatch(
                    scenario_id=scenario_id,
                    pruned="present" if scenario_id in swept else "absent",
                    brute="present" if scenario_id in brute else "absent",
                    status="universe-divergence",
                )
            )
        return validation, result
    for scenario_id in sorted(swept):
        pruned_bytes = swept[scenario_id].verdict.canonical()
        brute_bytes = brute[scenario_id].canonical()
        if pruned_bytes != brute_bytes:
            validation.mismatches.append(
                Mismatch(
                    scenario_id=scenario_id,
                    pruned=pruned_bytes,
                    brute=brute_bytes,
                    status=swept[scenario_id].status,
                )
            )
    return validation, result


def mismatch_sarif(validations: Sequence[NetworkValidation]) -> Dict:
    """A SARIF log of every mismatch (empty results when all green) —
    the artifact the CI sweep-validate job uploads."""
    from repro.sweep.report import SARIF_SCHEMA, SARIF_VERSION

    results: List[Dict] = []
    for validation in validations:
        for mismatch in validation.mismatches:
            results.append(
                {
                    "ruleId": "sweep-verdict-mismatch",
                    "level": "error",
                    "message": {
                        "text": (
                            f"{validation.network}: {mismatch.describe()}"
                        )
                    },
                    "locations": [
                        {
                            "physicalLocation": {
                                "artifactLocation": {
                                    "uri": f"<{validation.network}>"
                                }
                            }
                        }
                    ],
                    "properties": {
                        "network": validation.network,
                        "scenario": mismatch.scenario_id,
                        "pruned_status": mismatch.status,
                    },
                }
            )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-sweep-validate",
                        "version": "1.0.0",
                        "informationUri": "https://github.com/batfish/batfish",
                        "rules": [
                            {
                                "id": "sweep-verdict-mismatch",
                                "shortDescription": {
                                    "text": (
                                        "Pruned sweep verdict differs "
                                        "from brute-force enumeration"
                                    )
                                },
                                "defaultConfiguration": {"level": "error"},
                            }
                        ],
                    }
                },
                "results": results,
                "properties": {
                    "networks": [
                        {
                            "network": v.network,
                            "ok": v.ok,
                            "scenarios": v.scenarios,
                            "pruned": v.pruned,
                            "sweep_seconds": round(v.sweep_seconds, 3),
                            "brute_seconds": round(v.brute_seconds, 3),
                        }
                        for v in validations
                    ]
                },
            }
        ],
    }
