"""Configuration-text builders for synthetic networks.

The Table 1 networks are generated as real configuration *text* in both
supported vendor syntaxes, so benchmarks exercise the entire pipeline —
parsing, vendor-AST conversion, and the VI model — exactly as a real
snapshot would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hdr.ip import Ip, Prefix


@dataclass
class InterfaceSpec:
    name: str
    ip: str
    prefix_length: int
    ospf_area: Optional[int] = None
    ospf_cost: Optional[int] = None
    ospf_passive: bool = False
    acl_in: Optional[str] = None
    acl_out: Optional[str] = None
    zone: Optional[str] = None
    description: str = ""
    nat_inside: bool = False
    nat_outside: bool = False


@dataclass
class NeighborSpec:
    peer_ip: str
    remote_as: int
    route_map_in: Optional[str] = None
    route_map_out: Optional[str] = None
    next_hop_self: bool = False
    send_community: bool = False
    description: str = ""


class CiscoishBuilder:
    """Emit ciscoish configuration text."""

    def __init__(self, hostname: str):
        self.hostname = hostname
        self._interfaces: List[InterfaceSpec] = []
        self._statics: List[str] = []
        self._acls: Dict[str, List[str]] = {}
        self._prefix_lists: List[str] = []
        self._route_maps: List[str] = []
        self._community_lists: List[str] = []
        self._ospf: List[str] = []
        self._bgp_as: Optional[int] = None
        self._bgp_lines: List[str] = []
        self._router_id: Optional[str] = None
        self._zones: List[str] = []
        self._zone_pairs: List[Tuple[str, str, str]] = []
        self._nat_lines: List[str] = []
        self._extra: List[str] = []

    def interface(self, spec: InterfaceSpec) -> "CiscoishBuilder":
        self._interfaces.append(spec)
        return self

    def static(self, prefix: str, next_hop: str, admin: Optional[int] = None) -> "CiscoishBuilder":
        p = Prefix(prefix)
        line = f"ip route {p.network} {p.mask} {next_hop}"
        if admin is not None:
            line += f" {admin}"
        self._statics.append(line)
        return self

    def acl(self, name: str, lines: Sequence[str]) -> "CiscoishBuilder":
        self._acls[name] = list(lines)
        return self

    def prefix_list(self, name: str, entries: Sequence[str]) -> "CiscoishBuilder":
        for seq, entry in enumerate(entries, start=1):
            self._prefix_lists.append(f"ip prefix-list {name} seq {seq * 5} {entry}")
        return self

    def community_list(self, name: str, communities: Sequence[str]) -> "CiscoishBuilder":
        joined = " ".join(communities)
        self._community_lists.append(
            f"ip community-list standard {name} permit {joined}"
        )
        return self

    def route_map(self, name: str, action: str, seq: int,
                  matches: Sequence[str] = (), sets: Sequence[str] = ()) -> "CiscoishBuilder":
        self._route_maps.append(f"route-map {name} {action} {seq}")
        for match in matches:
            self._route_maps.append(f" match {match}")
        for set_line in sets:
            self._route_maps.append(f" set {set_line}")
        return self

    def router_id(self, rid: str) -> "CiscoishBuilder":
        self._router_id = rid
        return self

    def ospf(self, *lines: str) -> "CiscoishBuilder":
        self._ospf.extend(lines)
        return self

    def bgp(self, asn: int, *lines: str) -> "CiscoishBuilder":
        self._bgp_as = asn
        self._bgp_lines.extend(lines)
        return self

    def bgp_neighbor(self, spec: NeighborSpec) -> "CiscoishBuilder":
        peer = spec.peer_ip
        self._bgp_lines.append(f"neighbor {peer} remote-as {spec.remote_as}")
        if spec.description:
            self._bgp_lines.append(f"neighbor {peer} description {spec.description}")
        if spec.route_map_in:
            self._bgp_lines.append(f"neighbor {peer} route-map {spec.route_map_in} in")
        if spec.route_map_out:
            self._bgp_lines.append(
                f"neighbor {peer} route-map {spec.route_map_out} out"
            )
        if spec.next_hop_self:
            self._bgp_lines.append(f"neighbor {peer} next-hop-self")
        if spec.send_community:
            self._bgp_lines.append(f"neighbor {peer} send-community")
        return self

    def bgp_line(self, line: str) -> "CiscoishBuilder":
        """Append a raw line inside the ``router bgp`` block."""
        self._bgp_lines.append(line)
        return self

    def zone(self, name: str) -> "CiscoishBuilder":
        self._zones.append(name)
        return self

    def zone_pair(self, source: str, destination: str, acl: str) -> "CiscoishBuilder":
        self._zone_pairs.append((source, destination, acl))
        return self

    def nat_pool(self, name: str, start: str, end: str, length: int) -> "CiscoishBuilder":
        self._nat_lines.append(
            f"ip nat pool {name} {start} {end} prefix-length {length}"
        )
        return self

    def nat_source(self, acl: str, pool: str) -> "CiscoishBuilder":
        self._nat_lines.append(f"ip nat inside source list {acl} pool {pool}")
        return self

    def ntp(self, *servers: str) -> "CiscoishBuilder":
        self._extra.extend(f"ntp server {s}" for s in servers)
        return self

    def dns(self, *servers: str) -> "CiscoishBuilder":
        self._extra.extend(f"ip name-server {s}" for s in servers)
        return self

    def raw(self, *lines: str) -> "CiscoishBuilder":
        self._extra.extend(lines)
        return self

    def render(self) -> str:
        out: List[str] = [f"hostname {self.hostname}", "!"]
        for zone in self._zones:
            out.append(f"zone security {zone}")
        if self._zones:
            out.append("!")
        for iface in self._interfaces:
            out.append(f"interface {iface.name}")
            if iface.description:
                out.append(f" description {iface.description}")
            mask = Prefix(Ip(iface.ip).value, iface.prefix_length).mask
            out.append(f" ip address {iface.ip} {mask}")
            if iface.acl_in:
                out.append(f" ip access-group {iface.acl_in} in")
            if iface.acl_out:
                out.append(f" ip access-group {iface.acl_out} out")
            if iface.ospf_cost is not None:
                out.append(f" ip ospf cost {iface.ospf_cost}")
            if iface.ospf_area is not None:
                out.append(f" ip ospf area {iface.ospf_area}")
            if iface.ospf_passive:
                out.append(" ip ospf passive")
            if iface.zone:
                out.append(f" zone-member security {iface.zone}")
            if iface.nat_inside:
                out.append(" ip nat inside")
            if iface.nat_outside:
                out.append(" ip nat outside")
            out.append("!")
        if self._ospf or any(i.ospf_area is not None for i in self._interfaces):
            out.append("router ospf 1")
            if self._router_id:
                out.append(f" router-id {self._router_id}")
            out.extend(f" {line}" for line in self._ospf)
            out.append("!")
        if self._bgp_as is not None:
            out.append(f"router bgp {self._bgp_as}")
            if self._router_id:
                out.append(f" bgp router-id {self._router_id}")
            out.extend(f" {line}" for line in self._bgp_lines)
            out.append("!")
        out.extend(self._statics)
        if self._statics:
            out.append("!")
        for name, lines in self._acls.items():
            out.append(f"ip access-list extended {name}")
            out.extend(f" {line}" for line in lines)
            out.append("!")
        out.extend(self._prefix_lists)
        out.extend(self._community_lists)
        out.extend(self._route_maps)
        if self._route_maps:
            out.append("!")
        out.extend(self._nat_lines)
        for source, destination, acl in self._zone_pairs:
            out.append(
                f"zone-pair security ZP_{source}_{destination} "
                f"source {source} destination {destination}"
            )
            out.append(f" service-policy type inspect {acl}")
            out.append("!")
        out.extend(self._extra)
        out.append("")
        return "\n".join(out)


class JuniperishBuilder:
    """Emit juniperish (set-style) configuration text."""

    def __init__(self, hostname: str):
        self.hostname = hostname
        self._lines: List[str] = [f"set system host-name {hostname}"]

    def interface(self, spec: InterfaceSpec) -> "JuniperishBuilder":
        base = f"set interfaces {spec.name}"
        self._lines.append(
            f"{base} unit 0 family inet address {spec.ip}/{spec.prefix_length}"
        )
        if spec.description:
            self._lines.append(f"{base} description {spec.description}")
        if spec.acl_in:
            self._lines.append(f"{base} unit 0 family inet filter input {spec.acl_in}")
        if spec.acl_out:
            self._lines.append(
                f"{base} unit 0 family inet filter output {spec.acl_out}"
            )
        if spec.ospf_area is not None:
            ospf = f"set protocols ospf area {spec.ospf_area} interface {spec.name}"
            if spec.ospf_passive:
                self._lines.append(f"{ospf} passive")
            elif spec.ospf_cost is not None:
                self._lines.append(f"{ospf} metric {spec.ospf_cost}")
            else:
                self._lines.append(ospf)
        if spec.zone:
            self._lines.append(
                f"set security zones security-zone {spec.zone} interfaces {spec.name}"
            )
        return self

    def router_id(self, rid: str) -> "JuniperishBuilder":
        self._lines.append(f"set routing-options router-id {rid}")
        return self

    def static(self, prefix: str, next_hop: str) -> "JuniperishBuilder":
        self._lines.append(
            f"set routing-options static route {prefix} next-hop {next_hop}"
        )
        return self

    def bgp_local_as(self, asn: int) -> "JuniperishBuilder":
        self._lines.append(f"set protocols bgp local-as {asn}")
        return self

    def bgp_neighbor(self, spec: NeighborSpec, group: str = "PEERS") -> "JuniperishBuilder":
        base = f"set protocols bgp group {group} neighbor {spec.peer_ip}"
        self._lines.append(f"{base} peer-as {spec.remote_as}")
        if spec.route_map_in:
            self._lines.append(f"{base} import {spec.route_map_in}")
        if spec.route_map_out:
            self._lines.append(f"{base} export {spec.route_map_out}")
        if spec.description:
            self._lines.append(f"{base} description {spec.description}")
        return self

    def filter_term(self, filter_name: str, term: str,
                    froms: Sequence[str] = (), then: str = "accept") -> "JuniperishBuilder":
        base = f"set firewall filter {filter_name} term {term}"
        for from_clause in froms:
            self._lines.append(f"{base} from {from_clause}")
        self._lines.append(f"{base} then {then}")
        return self

    def policy_term(self, policy: str, term: str,
                    froms: Sequence[str] = (), thens: Sequence[str] = ("accept",)) -> "JuniperishBuilder":
        base = f"set policy-options policy-statement {policy} term {term}"
        for from_clause in froms:
            self._lines.append(f"{base} from {from_clause}")
        for then_clause in thens:
            self._lines.append(f"{base} then {then_clause}")
        return self

    def prefix_list(self, name: str, prefixes: Sequence[str]) -> "JuniperishBuilder":
        for prefix in prefixes:
            self._lines.append(f"set policy-options prefix-list {name} {prefix}")
        return self

    def ntp(self, *servers: str) -> "JuniperishBuilder":
        self._lines.extend(f"set system ntp server {s}" for s in servers)
        return self

    def raw(self, *lines: str) -> "JuniperishBuilder":
        self._lines.extend(lines)
        return self

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"


def p2p_subnet(block: int, link_index: int) -> Tuple[str, str, int]:
    """Deterministic /30 point-to-point addressing: returns the two
    endpoint addresses and the prefix length.

    ``block`` selects a 10.<block>.x.y region; ``link_index`` the link.
    """
    if not 0 <= link_index < (1 << 14):
        raise ValueError(f"link index out of range: {link_index}")
    base = (10 << 24) | (block << 16) | (link_index << 2)
    return str(Ip(base + 1)), str(Ip(base + 2)), 30


def host_subnet(block: int, index: int) -> Prefix:
    """Deterministic /24 host subnet in the 172.16.0.0/12 region."""
    value = (172 << 24) | ((16 + (block & 0xF)) << 16) | ((index & 0xFF) << 8)
    return Prefix(value, 24)


def loopback_ip(index: int) -> str:
    """Deterministic router loopback: 192.168.x.y/32 space."""
    return str(Ip((192 << 24) | (168 << 16) | (index & 0xFFFF)))
