"""Campus / enterprise networks: multi-area OSPF with a core pair,
distribution blocks, and access routers (the "campus"/"enterprise" rows
of Table 1).

Features exercised: OSPF areas (inter-area routing through the
backbone), passive host interfaces, access ACLs, static default routing
to a provider redistributed into OSPF as a type-2 external, management
plane settings (NTP/DNS/SNMP), and optionally juniperish distribution
switches for vendor diversity.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.hdr.ip import Ip
from repro.synth.base import (
    CiscoishBuilder,
    InterfaceSpec,
    JuniperishBuilder,
    host_subnet,
    loopback_ip,
)


def campus(num_blocks: int = 2, access_per_block: int = 2,
           vendors: Tuple[str, ...] = ("ciscoish",)) -> Dict[str, str]:
    """Generate a campus snapshot.

    Topology: 2 cores (area 0) <-> per-block distribution pairs (area =
    block+1) <-> access routers with host subnets. Core 0 carries a
    static default to an (unmodeled) provider, redistributed into OSPF.
    """
    mixed = "juniperish" in vendors
    builders: Dict[str, object] = {}
    link_counter = [0]

    def p2p() -> Tuple[str, str, int]:
        index = link_counter[0]
        link_counter[0] += 1
        base = (10 << 24) | (9 << 20) | (index << 2)
        return str(Ip(base + 1)), str(Ip(base + 2)), 30

    cores = []
    for c in range(2):
        builder = CiscoishBuilder(f"ccore{c}")
        rid = loopback_ip(300 + c)
        builder.router_id(rid)
        builder.interface(
            InterfaceSpec("Loopback0", rid, 32, ospf_area=0, ospf_passive=True)
        )
        builder.ntp("192.0.2.123", "192.0.2.124")
        builder.dns("192.0.2.53")
        builder.raw("snmp-server community campus-ro")
        cores.append(builder)
        builders[builder.hostname] = builder
    # Core interconnect.
    ip_a, ip_b, plen = p2p()
    cores[0].interface(InterfaceSpec("Ethernet0", ip_a, plen, ospf_area=0, ospf_cost=10))
    cores[1].interface(InterfaceSpec("Ethernet0", ip_b, plen, ospf_area=0, ospf_cost=10))
    # Provider uplink on core0: static default, redistributed.
    cores[0].interface(InterfaceSpec("Ethernet1", "203.0.113.2", 30,
                                     description="provider uplink"))
    cores[0].static("0.0.0.0/0", "203.0.113.1")
    cores[0].ospf("redistribute static")

    core_port = [1, 1]
    for block in range(num_blocks):
        area = block + 1
        dist_pair = []
        for d in range(2):
            name = f"dist{block}-{d}"
            rid = loopback_ip(400 + block * 2 + d)
            if mixed and d == 1:
                builder = JuniperishBuilder(name)
                builder.router_id(rid)
                builder.interface(
                    InterfaceSpec("lo0", rid, 32, ospf_area=0, ospf_passive=True)
                )
                builder.ntp("192.0.2.123")
            else:
                builder = CiscoishBuilder(name)
                builder.router_id(rid)
                builder.interface(
                    InterfaceSpec("Loopback0", rid, 32, ospf_area=0,
                                  ospf_passive=True)
                )
                builder.ntp("192.0.2.123", "192.0.2.124")
            dist_pair.append(builder)
            builders[name] = builder
            # Uplinks to both cores (area 0).
            for c in range(2):
                ip_dist, ip_core, plen = p2p()
                iface_name = (
                    f"ge-0/0/{c}" if isinstance(builder, JuniperishBuilder)
                    else f"Ethernet{c}"
                )
                builder.interface(
                    InterfaceSpec(iface_name, ip_dist, plen, ospf_area=0,
                                  ospf_cost=10)
                )
                core_iface = f"Ethernet{core_port[c] + 1}"
                core_port[c] += 1
                cores[c].interface(
                    InterfaceSpec(core_iface, ip_core, plen, ospf_area=0,
                                  ospf_cost=10)
                )
        for a in range(access_per_block):
            name = f"access{block}-{a}"
            builder = CiscoishBuilder(name)
            rid = loopback_ip(500 + block * 16 + a)
            builder.router_id(rid)
            builder.interface(
                InterfaceSpec("Loopback0", rid, 32, ospf_area=area,
                              ospf_passive=True)
            )
            # Dual-home to the block's distribution pair (block area).
            for d in range(2):
                ip_access, ip_dist, plen = p2p()
                builder.interface(
                    InterfaceSpec(f"Ethernet{d}", ip_access, plen,
                                  ospf_area=area, ospf_cost=10 + d * 10)
                )
                dist = dist_pair[d]
                iface_name = (
                    f"ge-0/1/{a}" if isinstance(dist, JuniperishBuilder)
                    else f"Ethernet{2 + a}"
                )
                dist.interface(
                    InterfaceSpec(iface_name, ip_dist, plen, ospf_area=area,
                                  ospf_cost=10 + d * 10)
                )
            subnet = host_subnet(block % 16, a)
            gateway = str(Ip(subnet.network.value + 1))
            builder.interface(
                InterfaceSpec(
                    "Vlan100", gateway, 24, ospf_area=area, ospf_passive=True,
                    description="user subnet", acl_in="USER_IN",
                )
            )
            builder.acl(
                "USER_IN",
                [
                    f"permit ip {subnet.network} 0.0.0.255 any",
                    "deny ip any any",
                ],
            )
            builder.ntp("192.0.2.123")
            builders[name] = builder

    return {
        name: builder.render() for name, builder in builders.items()
    }
