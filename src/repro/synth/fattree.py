"""k-ary fat-tree data-center networks (the "DC" rows of Table 1).

Standard 3-tier Clos: (k/2)^2 cores, k pods of k/2 aggregation and k/2
edge switches. Routing is eBGP between tiers (the common BGP-in-the-DC
design): every switch gets its own AS or shares a per-tier/pod AS, host
subnets originate at edge switches via ``network`` statements, and
``maximum-paths`` enables the multipath that makes these networks a
good test of ECMP-aware analysis.

With ``vendors`` including juniperish, aggregation switches emit
set-style configuration, exercising the multi-vendor Stage 1 pipeline.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.hdr.ip import Ip, Prefix
from repro.synth.base import (
    CiscoishBuilder,
    InterfaceSpec,
    JuniperishBuilder,
    NeighborSpec,
    host_subnet,
    loopback_ip,
)

CORE_AS = 64900


def _pod_as(pod: int) -> int:
    return 65000 + pod


def _edge_as(k: int, pod: int, index: int) -> int:
    return 65100 + pod * k + index


def fattree(k: int = 4, vendors: Tuple[str, ...] = ("ciscoish",),
            with_acls: bool = False) -> Dict[str, str]:
    """Generate a k-ary fat-tree snapshot (k even). Returns hostname ->
    config text."""
    if k % 2:
        raise ValueError("fat-tree arity k must be even")
    half = k // 2
    num_cores = half * half
    mixed = "juniperish" in vendors

    # Address plan: links core<->agg in block 1, agg<->edge in block 2.
    link_counter = [0, 0]

    def p2p(block: int) -> Tuple[str, str, int]:
        index = link_counter[block]
        link_counter[block] += 1
        base = (10 << 24) | ((block + 1) << 20) | (index << 2)
        return str(Ip(base + 1)), str(Ip(base + 2)), 30

    cores = [CiscoishBuilder(f"core{c}") for c in range(num_cores)]
    for c, core in enumerate(cores):
        core.router_id(loopback_ip(c + 1))
        core.interface(
            InterfaceSpec("Loopback0", loopback_ip(c + 1), 32)
        )
        core.bgp(CORE_AS, "maximum-paths 8")

    agg_builders: List[object] = []
    edge_builders: List[CiscoishBuilder] = []
    configs: Dict[str, str] = {}

    for pod in range(k):
        for a in range(half):
            name = f"agg{pod}-{a}"
            rid = loopback_ip(1000 + pod * half + a)
            if mixed:
                builder = JuniperishBuilder(name)
                builder.router_id(rid)
                builder.interface(InterfaceSpec("lo0", rid, 32))
                builder.bgp_local_as(_pod_as(pod))
                builder.raw("set protocols bgp multipath maximum-paths 8")
            else:
                builder = CiscoishBuilder(name)
                builder.router_id(rid)
                builder.interface(InterfaceSpec("Loopback0", rid, 32))
                builder.bgp(_pod_as(pod), "maximum-paths 8")
            agg_builders.append(builder)
        for e in range(half):
            name = f"edge{pod}-{e}"
            rid = loopback_ip(2000 + pod * half + e)
            builder = CiscoishBuilder(name)
            builder.router_id(rid)
            builder.interface(InterfaceSpec("Loopback0", rid, 32))
            subnet = host_subnet(pod % 16, e)
            host_gateway = str(Ip(subnet.network.value + 1))
            acl_name = "HOST_PROTECT" if with_acls and e == 0 else None
            builder.interface(
                InterfaceSpec(
                    "Vlan10", host_gateway, 24,
                    description=f"hosts pod {pod}",
                    acl_out=acl_name,
                )
            )
            if acl_name:
                builder.acl(
                    acl_name,
                    [
                        "permit tcp any any eq 80",
                        "permit tcp any any eq 443",
                        "permit tcp any any eq 22",
                        "deny udp any any",
                        "permit ip any any",
                    ],
                )
            builder.bgp(
                _edge_as(k, pod, e),
                "maximum-paths 8",
                f"network {subnet.network} mask {subnet.mask}",
            )
            edge_builders.append(builder)

    # Wire agg <-> core: agg a of each pod connects to cores
    # [a*half, (a+1)*half).
    for pod in range(k):
        for a in range(half):
            agg = agg_builders[pod * half + a]
            for j in range(half):
                core_index = a * half + j
                core = cores[core_index]
                agg_ip, core_ip, plen = p2p(0)
                iface_agg = f"uplink{j}" if mixed else f"Ethernet{j}"
                iface_core = f"Ethernet{pod * half + a}"
                if mixed:
                    agg.interface(InterfaceSpec(f"ge-0/0/{j}", agg_ip, plen))
                    agg.bgp_neighbor(
                        NeighborSpec(peer_ip=core_ip, remote_as=CORE_AS),
                        group="CORE",
                    )
                else:
                    agg.interface(InterfaceSpec(iface_agg, agg_ip, plen))
                    agg.bgp_neighbor(NeighborSpec(peer_ip=core_ip, remote_as=CORE_AS))
                core.interface(InterfaceSpec(iface_core, core_ip, plen))
                core.bgp_neighbor(
                    NeighborSpec(peer_ip=agg_ip, remote_as=_pod_as(pod))
                )

    # Wire edge <-> agg within each pod (full bipartite).
    for pod in range(k):
        for e in range(half):
            edge = edge_builders[pod * half + e]
            for a in range(half):
                agg = agg_builders[pod * half + a]
                edge_ip, agg_ip, plen = p2p(1)
                if mixed:
                    agg.interface(
                        InterfaceSpec(f"ge-0/1/{e}", agg_ip, plen)
                    )
                    agg.bgp_neighbor(
                        NeighborSpec(
                            peer_ip=edge_ip, remote_as=_edge_as(k, pod, e)
                        ),
                        group="EDGE",
                    )
                else:
                    agg.interface(InterfaceSpec(f"Ethernet{half + e}", agg_ip, plen))
                    agg.bgp_neighbor(
                        NeighborSpec(peer_ip=edge_ip, remote_as=_edge_as(k, pod, e))
                    )
                edge.interface(InterfaceSpec(f"Ethernet{a}", edge_ip, plen))
                edge.bgp_neighbor(
                    NeighborSpec(peer_ip=agg_ip, remote_as=_pod_as(pod))
                )

    for builder in cores + agg_builders + edge_builders:
        configs[builder.hostname] = builder.render()
    return configs


def fattree_host_subnets(k: int) -> List[Prefix]:
    """The host subnets a fattree(k) advertises (for query scoping)."""
    half = k // 2
    return [host_subnet(pod % 16, e) for pod in range(k) for e in range(half)]
