"""Networks with stateful elements: an enterprise edge with a
zone-based firewall + NAT, and paired data centers with backup
connectivity (the "paired DCs" / firewall rows of Table 1)."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.hdr.ip import Ip, Prefix
from repro.synth.base import (
    CiscoishBuilder,
    InterfaceSpec,
    NeighborSpec,
    host_subnet,
    loopback_ip,
)
from repro.synth.fattree import fattree


def enterprise_firewall(num_inside_routers: int = 3) -> Dict[str, str]:
    """A small enterprise: OSPF inside, a zone-based firewall with
    source NAT at the edge, default route outward.

    Zones: ``trust`` (inside) and ``untrust`` (provider). The zone
    policy allows web/ssh/dns outbound; NAT rewrites inside sources to a
    public pool — together they exercise §4.2.3's zone bits and
    transformation edges.
    """
    builders: Dict[str, CiscoishBuilder] = {}
    link_counter = [0]

    def p2p() -> Tuple[str, str, int]:
        index = link_counter[0]
        link_counter[0] += 1
        base = (10 << 24) | (12 << 20) | (index << 2)
        return str(Ip(base + 1)), str(Ip(base + 2)), 30

    firewall = CiscoishBuilder("fw0")
    firewall.router_id(loopback_ip(700))
    firewall.zone("trust").zone("untrust")
    firewall.acl(
        "OUTBOUND_POLICY",
        [
            "permit tcp any any eq 80",
            "permit tcp any any eq 443",
            "permit tcp any any eq 22",
            "permit udp any any eq domain",
            "deny ip any any",
        ],
    )
    firewall.acl("NAT_MATCH", ["permit ip 172.16.0.0 0.15.255.255 any"])
    firewall.zone_pair("trust", "untrust", "OUTBOUND_POLICY")
    firewall.nat_pool("PUBLIC", "198.51.100.1", "198.51.100.254", 24)
    firewall.nat_source("NAT_MATCH", "PUBLIC")
    # Untrust side: provider link.
    firewall.interface(
        InterfaceSpec(
            "Ethernet0", "203.0.113.2", 30, zone="untrust",
            description="provider", nat_outside=True,
        )
    )
    firewall.static("0.0.0.0/0", "203.0.113.1")
    builders["fw0"] = firewall

    inside: list = []
    for r in range(num_inside_routers):
        name = f"inside{r}"
        builder = CiscoishBuilder(name)
        rid = loopback_ip(710 + r)
        builder.router_id(rid)
        builder.interface(
            InterfaceSpec("Loopback0", rid, 32, ospf_area=0, ospf_passive=True)
        )
        subnet = host_subnet(12, r)
        gateway = str(Ip(subnet.network.value + 1))
        builder.interface(
            InterfaceSpec("Vlan10", gateway, 24, ospf_area=0,
                          ospf_passive=True, description="users")
        )
        builder.ntp("192.0.2.123")
        inside.append(builder)
        builders[name] = builder
    # Chain: fw0 <-> inside0 <-> inside1 <-> ... (inside ring for ECMP).
    fw_port = 1
    for r, builder in enumerate(inside):
        if r == 0:
            ip_fw, ip_in, plen = p2p()
            firewall.interface(
                InterfaceSpec(
                    f"Ethernet{fw_port}", ip_fw, plen, zone="trust",
                    ospf_area=0, ospf_cost=10, nat_inside=True,
                )
            )
            fw_port += 1
            builder.interface(
                InterfaceSpec("Ethernet0", ip_in, plen, ospf_area=0, ospf_cost=10)
            )
            builder.static("0.0.0.0/0", ip_fw)
        if r + 1 < len(inside):
            ip_a, ip_b, plen = p2p()
            builder.interface(
                InterfaceSpec("Ethernet1", ip_a, plen, ospf_area=0, ospf_cost=10)
            )
            inside[r + 1].interface(
                InterfaceSpec("Ethernet0" if r + 1 else "Ethernet1", ip_b, plen,
                              ospf_area=0, ospf_cost=10)
            )
    # The firewall runs OSPF on its trust side so inside prefixes reach it.
    return {name: builder.render() for name, builder in builders.items()}


def paired_dc(k: int = 4) -> Dict[str, str]:
    """Two fat-tree DCs providing backup connectivity to each other.

    DC-A keeps its generated names; DC-B is renamed with a ``b-``
    prefix and re-addressed host subnets; the DCs interconnect via two
    eBGP border links between core switches (primary + backup with
    AS-path prepending on the backup).
    """
    dc_a = fattree(k, vendors=("ciscoish",))
    dc_b_raw = fattree(k, vendors=("ciscoish",))
    dc_b: Dict[str, str] = {}
    for name, text in dc_b_raw.items():
        renamed = text
        # Unique hostnames, router ids, loopbacks, host subnets, ASNs.
        for old in sorted(dc_b_raw, key=len, reverse=True):
            renamed = renamed.replace(old, f"b-{old}")
        renamed = renamed.replace("192.168.", "192.169.")
        renamed = renamed.replace("172.16.", "172.24.")
        renamed = renamed.replace("172.17.", "172.25.")
        renamed = renamed.replace("172.18.", "172.26.")
        renamed = renamed.replace("172.19.", "172.27.")
        # p2p link blocks of the fat-tree generator: 10.16.* and 10.32.*
        renamed = renamed.replace("10.16.", "11.16.")
        renamed = renamed.replace("10.32.", "11.32.")
        renamed = renamed.replace("bgp 64900", "bgp 64901")
        renamed = renamed.replace("remote-as 64900", "remote-as 64901")
        renamed = renamed.replace("bgp 650", "bgp 660")
        renamed = renamed.replace("remote-as 650", "remote-as 660")
        renamed = renamed.replace("bgp 651", "bgp 661")
        renamed = renamed.replace("remote-as 651", "remote-as 661")
        dc_b[f"b-{name}"] = renamed
    configs = dict(dc_a)
    configs.update(dc_b)
    # Interconnect core0 of each DC (primary) and core1 (backup).
    for index, (a_core, b_core) in enumerate((("core0", "b-core0"),
                                              ("core1", "b-core1"))):
        ip_a = f"10.200.{index}.1"
        ip_b = f"10.200.{index}.2"
        extra_a = [
            f"interface Interco{index}",
            f" ip address {ip_a} 255.255.255.252",
            f"router bgp 64900",
            f" neighbor {ip_b} remote-as 64901",
        ]
        extra_b = [
            f"interface Interco{index}",
            f" ip address {ip_b} 255.255.255.252",
            f"router bgp 64901",
            f" neighbor {ip_a} remote-as 64900",
        ]
        if index == 1:  # backup link: depreference with prepending
            extra_a += [
                f" neighbor {ip_b} route-map BACKUP_OUT out",
                "route-map BACKUP_OUT permit 10",
                " set as-path prepend 64900 64900",
            ]
            extra_b += [
                f" neighbor {ip_a} route-map BACKUP_OUT out",
                "route-map BACKUP_OUT permit 10",
                " set as-path prepend 64901 64901",
            ]
        configs[a_core] = configs[a_core] + "\n".join(extra_a) + "\n"
        configs[b_core] = configs[b_core] + "\n".join(extra_b) + "\n"
    return configs
