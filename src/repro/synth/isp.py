"""A small ISP: an iBGP core mesh over an OSPF backbone, eBGP customers
and peers with community-driven routing policy (the BGP-policy-heavy
row of Table 1)."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.hdr.ip import Ip, Prefix
from repro.synth.base import (
    CiscoishBuilder,
    InterfaceSpec,
    NeighborSpec,
    loopback_ip,
)

ISP_AS = 64600


def isp(num_core: int = 4, num_customers: int = 6,
        num_peers: int = 2) -> Dict[str, str]:
    """Generate an ISP snapshot.

    Core routers form an OSPF full mesh (ring + chords for >3 routers)
    and an iBGP full mesh over loopbacks. Customers attach round-robin
    to cores, originating their own prefixes; peers exchange routes with
    community-tagged import policies: customer routes get local-pref
    200, peer routes 100, and customer routes are the only ones exported
    to peers (the classic Gao-Rexford policy written as route maps).
    """
    builders: Dict[str, CiscoishBuilder] = {}
    link_counter = [0]

    def p2p() -> Tuple[str, str, int]:
        index = link_counter[0]
        link_counter[0] += 1
        base = (10 << 24) | (14 << 20) | (index << 2)
        return str(Ip(base + 1)), str(Ip(base + 2)), 30

    cores = []
    for c in range(num_core):
        builder = CiscoishBuilder(f"isp{c}")
        rid = loopback_ip(800 + c)
        builder.router_id(rid)
        builder.interface(
            InterfaceSpec("Loopback0", rid, 32, ospf_area=0, ospf_passive=True)
        )
        builder.bgp(ISP_AS)
        builder.community_list("CUSTOMER_ROUTES", [f"{ISP_AS}:100"])
        builder.route_map(
            "CUST_IN", "permit", 10,
            sets=[f"community {ISP_AS}:100 additive", "local-preference 200"],
        )
        builder.route_map(
            "PEER_IN", "permit", 10,
            sets=[f"community {ISP_AS}:200 additive", "local-preference 100"],
        )
        builder.route_map(
            "PEER_OUT", "permit", 10, matches=["community CUSTOMER_ROUTES"]
        )
        builder.route_map("PEER_OUT", "deny", 20)
        cores.append(builder)
        builders[builder.hostname] = builder

    port = {name: 0 for name in builders}

    def next_port(builder: CiscoishBuilder) -> str:
        index = port[builder.hostname]
        port[builder.hostname] += 1
        return f"Ethernet{index}"

    # OSPF ring over the cores.
    for c in range(num_core):
        peer = (c + 1) % num_core
        if num_core == 2 and c == 1:
            break
        ip_a, ip_b, plen = p2p()
        cores[c].interface(
            InterfaceSpec(next_port(cores[c]), ip_a, plen, ospf_area=0,
                          ospf_cost=10)
        )
        cores[peer].interface(
            InterfaceSpec(next_port(cores[peer]), ip_b, plen, ospf_area=0,
                          ospf_cost=10)
        )
    # iBGP full mesh over loopbacks with next-hop-self.
    for a in range(num_core):
        for b in range(num_core):
            if a == b:
                continue
            cores[a].bgp_neighbor(
                NeighborSpec(
                    peer_ip=loopback_ip(800 + b), remote_as=ISP_AS,
                    next_hop_self=True, send_community=True,
                )
            )

    # Customers.
    for x in range(num_customers):
        name = f"cust{x}"
        customer = CiscoishBuilder(name)
        customer_as = 64700 + x
        rid = loopback_ip(850 + x)
        customer.router_id(rid)
        customer.interface(InterfaceSpec("Loopback0", rid, 32))
        core = cores[x % num_core]
        ip_cust, ip_core, plen = p2p()
        customer.interface(InterfaceSpec("Ethernet0", ip_cust, plen))
        core.interface(InterfaceSpec(next_port(core), ip_core, plen))
        prefix = Prefix((100 << 24) | ((64 + x) << 16), 16)
        customer.bgp(
            customer_as,
            f"network {prefix.network} mask {prefix.mask}",
        )
        customer.static(str(prefix), "Null0")
        customer.bgp_neighbor(NeighborSpec(peer_ip=ip_core, remote_as=ISP_AS))
        core.bgp_neighbor(
            NeighborSpec(
                peer_ip=ip_cust, remote_as=customer_as,
                route_map_in="CUST_IN", send_community=True,
            )
        )
        builders[name] = customer
        port[name] = 1

    # Settlement-free peers.
    for x in range(num_peers):
        name = f"peer{x}"
        peer = CiscoishBuilder(name)
        peer_as = 64800 + x
        rid = loopback_ip(880 + x)
        peer.router_id(rid)
        peer.interface(InterfaceSpec("Loopback0", rid, 32))
        core = cores[(x + 1) % num_core]
        ip_peer, ip_core, plen = p2p()
        peer.interface(InterfaceSpec("Ethernet0", ip_peer, plen))
        core.interface(InterfaceSpec(next_port(core), ip_core, plen))
        prefix = Prefix((100 << 24) | ((128 + x) << 16), 16)
        peer.bgp(
            peer_as,
            f"network {prefix.network} mask {prefix.mask}",
        )
        peer.static(str(prefix), "Null0")
        peer.bgp_neighbor(NeighborSpec(peer_ip=ip_core, remote_as=ISP_AS))
        core.bgp_neighbor(
            NeighborSpec(
                peer_ip=ip_peer, remote_as=peer_as,
                route_map_in="PEER_IN", route_map_out="PEER_OUT",
                send_community=True,
            )
        )
        builders[name] = peer
        port[name] = 1

    return {name: builder.render() for name, builder in builders.items()}
