"""The Table 1 network registry: NET1–NET11.

The paper benchmarks 11 real networks of diverse types (data centers,
paired DCs, WANs, campus/enterprise) spanning 75–2735 devices. Those
configurations are proprietary, so this registry generates synthetic
networks of the same *types*, exercising the same feature mix
(protocols, vendors, ACLs, NAT/zones), scaled to pure-Python budgets.
A ``scale`` knob grows every network for larger experiments.

``NET1`` intentionally restricts itself to the feature set the original
Datalog-based Batfish supported, because Figure 3's old-vs-new
comparison runs on it ("the original code does not support the
configuration features of our other real networks").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.synth.campus import campus
from repro.synth.fattree import fattree
from repro.synth.firewall_dc import enterprise_firewall, paired_dc
from repro.synth.isp import isp
from repro.synth.special import net1
from repro.synth.wan import wan


@dataclass(frozen=True)
class NetworkSpec:
    """One row of the Table 1 registry."""

    name: str
    network_type: str
    vendors: Tuple[str, ...]
    protocols: Tuple[str, ...]
    generate: Callable[[int], Dict[str, str]]
    notes: str = ""


def _scaled(value: int, scale: int, minimum: int = 1) -> int:
    return max(minimum, value * scale)


NETWORKS: List[NetworkSpec] = [
    NetworkSpec(
        name="NET1",
        network_type="campus (original-paper features only)",
        vendors=("ciscoish",),
        protocols=("OSPF", "static"),
        generate=lambda scale: net1(num_spurs=_scaled(4, scale, 2)),
        notes="used for the Figure 3 old-vs-new comparison",
    ),
    NetworkSpec(
        name="NET2",
        network_type="DC (fat-tree)",
        vendors=("ciscoish",),
        protocols=("BGP",),
        generate=lambda scale: fattree(k=4 if scale <= 1 else 6),
    ),
    NetworkSpec(
        name="NET3",
        network_type="DC (fat-tree, mixed vendor)",
        vendors=("ciscoish", "juniperish"),
        protocols=("BGP",),
        generate=lambda scale: fattree(
            k=6 if scale <= 1 else 8, vendors=("ciscoish", "juniperish"),
            with_acls=True,
        ),
    ),
    NetworkSpec(
        name="NET4",
        network_type="paired DCs",
        vendors=("ciscoish",),
        protocols=("BGP",),
        generate=lambda scale: paired_dc(k=4 if scale <= 1 else 6),
    ),
    NetworkSpec(
        name="NET5",
        network_type="WAN",
        vendors=("ciscoish",),
        protocols=("OSPF", "BGP", "static"),
        generate=lambda scale: wan(
            num_core=_scaled(4, scale), num_edge=_scaled(8, scale),
            num_externals=2,
        ),
    ),
    NetworkSpec(
        name="NET6",
        network_type="campus (mixed vendor)",
        vendors=("ciscoish", "juniperish"),
        protocols=("OSPF", "static"),
        generate=lambda scale: campus(
            num_blocks=_scaled(3, scale), access_per_block=_scaled(3, scale),
            vendors=("ciscoish", "juniperish"),
        ),
    ),
    NetworkSpec(
        name="NET7",
        network_type="ISP",
        vendors=("ciscoish",),
        protocols=("OSPF", "BGP", "static"),
        generate=lambda scale: isp(
            num_core=_scaled(4, scale), num_customers=_scaled(6, scale),
            num_peers=2,
        ),
    ),
    NetworkSpec(
        name="NET8",
        network_type="enterprise with firewall",
        vendors=("ciscoish",),
        protocols=("OSPF", "static"),
        generate=lambda scale: enterprise_firewall(
            num_inside_routers=_scaled(3, scale)
        ),
        notes="zone-based firewall + source NAT",
    ),
    NetworkSpec(
        name="NET9",
        network_type="DC (large fat-tree)",
        vendors=("ciscoish",),
        protocols=("BGP",),
        generate=lambda scale: fattree(k=6 if scale <= 1 else 8),
    ),
    NetworkSpec(
        name="NET10",
        network_type="WAN (large)",
        vendors=("ciscoish",),
        protocols=("OSPF", "BGP", "static"),
        generate=lambda scale: wan(
            num_core=_scaled(6, scale), num_edge=_scaled(16, scale),
            num_externals=3,
        ),
    ),
    NetworkSpec(
        name="NET11",
        network_type="campus (large)",
        vendors=("ciscoish",),
        protocols=("OSPF", "static"),
        generate=lambda scale: campus(
            num_blocks=_scaled(6, scale), access_per_block=_scaled(4, scale),
        ),
    ),
]


def network_by_name(name: str) -> NetworkSpec:
    for spec in NETWORKS:
        if spec.name == name:
            return spec
    raise KeyError(f"unknown network: {name}")


def apt_comparison_network() -> Dict[str, str]:
    """A 92-device network matching the largest network in the APT
    study (§6: "The largest network the APT authors study has 92
    nodes"): a campus with 15 distribution blocks (2 cores + 30
    distribution + 60 access = 92 devices)."""
    return campus(num_blocks=15, access_per_block=4)
