"""Special-purpose networks: NET1 (the Figure 3 baseline network) and
the two Figure 1 convergence patterns."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.hdr.ip import Ip
from repro.synth.base import CiscoishBuilder, InterfaceSpec, host_subnet, loopback_ip


def net1(num_spurs: int = 4) -> Dict[str, str]:
    """NET1: the network from the original Batfish paper, used for the
    Figure 3 old-vs-new comparison.

    It deliberately uses only features the original (Datalog) code
    supported — single-area OSPF, static routes, ACLs — "the original
    code does not support the configuration features of our other real
    networks". Topology: an OSPF ring of core routers, each with a spur
    router attaching a host subnet; one deliberate ACL asymmetry makes
    the multipath-consistency query return a genuine violation.
    """
    builders: Dict[str, CiscoishBuilder] = {}
    link_counter = [0]

    def p2p() -> Tuple[str, str, int]:
        index = link_counter[0]
        link_counter[0] += 1
        base = (10 << 24) | (1 << 20) | (index << 2)
        return str(Ip(base + 1)), str(Ip(base + 2)), 30

    ring = []
    for c in range(num_spurs):
        builder = CiscoishBuilder(f"net1-core{c}")
        rid = loopback_ip(900 + c)
        builder.router_id(rid)
        builder.interface(
            InterfaceSpec("Loopback0", rid, 32, ospf_area=0, ospf_passive=True)
        )
        ring.append(builder)
        builders[builder.hostname] = builder
    port = [0] * num_spurs

    def next_port(index: int) -> str:
        port[index] += 1
        return f"Ethernet{port[index] - 1}"

    for c in range(num_spurs):
        peer = (c + 1) % num_spurs
        if num_spurs == 2 and c == 1:
            break
        ip_a, ip_b, plen = p2p()
        ring[c].interface(
            InterfaceSpec(next_port(c), ip_a, plen, ospf_area=0, ospf_cost=10)
        )
        ring[peer].interface(
            InterfaceSpec(next_port(peer), ip_b, plen, ospf_area=0, ospf_cost=10)
        )
    for c in range(num_spurs):
        spur = CiscoishBuilder(f"net1-spur{c}")
        rid = loopback_ip(950 + c)
        spur.router_id(rid)
        spur.interface(
            InterfaceSpec("Loopback0", rid, 32, ospf_area=0, ospf_passive=True)
        )
        ip_spur, ip_core, plen = p2p()
        # The first spur dual-homes to two ring routers, with an ACL on
        # only one path: the multipath-consistency violation.
        acl_out = "SPUR_FILTER" if c == 0 else None
        spur.interface(
            InterfaceSpec("Ethernet0", ip_spur, plen, ospf_area=0, ospf_cost=10)
        )
        ring[c].interface(
            InterfaceSpec(next_port(c), ip_core, plen, ospf_area=0,
                          ospf_cost=10, acl_out=acl_out)
        )
        if c == 0:
            ring[c].acl(
                "SPUR_FILTER",
                [
                    "deny tcp any any eq 23",
                    "permit ip any any",
                ],
            )
            ip_spur2, ip_core2, plen = p2p()
            spur.interface(
                InterfaceSpec("Ethernet1", ip_spur2, plen, ospf_area=0,
                              ospf_cost=10)
            )
            ring[1].interface(
                InterfaceSpec(next_port(1), ip_core2, plen, ospf_area=0,
                              ospf_cost=10)
            )
        subnet = host_subnet(3, c)
        gateway = str(Ip(subnet.network.value + 1))
        spur.interface(
            InterfaceSpec("Vlan10", gateway, 24, ospf_area=0, ospf_passive=True,
                          description="hosts")
        )
        spur.static(f"192.0.2.{4 * c}/30", "Null0")
        builders[spur.hostname] = spur
    return {name: builder.render() for name, builder in builders.items()}


def figure1a() -> Dict[str, str]:
    """Figure 1a: two route reflectors, two clients, and an origin whose
    prefix reaches both RRs with equally good attributes — equally good
    advertisements can trigger endless unnecessary re-computation
    without arrival-time tie-breaking."""
    builders: Dict[str, CiscoishBuilder] = {}

    def router(name: str, index: int) -> CiscoishBuilder:
        builder = CiscoishBuilder(name)
        rid = loopback_ip(960 + index)
        builder.router_id(rid)
        builder.interface(
            InterfaceSpec("Loopback0", rid, 32, ospf_area=0, ospf_passive=True)
        )
        builders[name] = builder
        return builder

    origin = router("origin", 0)
    rr1 = router("rr1", 1)
    rr2 = router("rr2", 2)
    client1 = router("client1", 3)
    client2 = router("client2", 4)
    links = [
        (origin, rr1), (origin, rr2),
        (rr1, client1), (rr1, client2),
        (rr2, client1), (rr2, client2),
        (rr1, rr2),
    ]
    port: Dict[str, int] = {}
    base_index = [0]
    for a, b in links:
        base = (10 << 24) | (2 << 20) | (base_index[0] << 2)
        base_index[0] += 1
        ip_a, ip_b = str(Ip(base + 1)), str(Ip(base + 2))
        pa = port.get(a.hostname, 0)
        pb = port.get(b.hostname, 0)
        port[a.hostname] = pa + 1
        port[b.hostname] = pb + 1
        a.interface(InterfaceSpec(f"Ethernet{pa}", ip_a, 30, ospf_area=0, ospf_cost=10))
        b.interface(InterfaceSpec(f"Ethernet{pb}", ip_b, 30, ospf_area=0, ospf_cost=10))
    # iBGP: clients and origin peer with both RRs (loopback sessions).
    asn = 65010
    from repro.synth.base import NeighborSpec

    def mesh(a: CiscoishBuilder, index_a: int, b: CiscoishBuilder, index_b: int,
             a_is_rr: bool = False, b_is_rr: bool = False):
        a.bgp_neighbor(NeighborSpec(peer_ip=loopback_ip(960 + index_b), remote_as=asn,
                                    next_hop_self=True))
        b.bgp_neighbor(NeighborSpec(peer_ip=loopback_ip(960 + index_a), remote_as=asn,
                                    next_hop_self=True))
        if a_is_rr:
            a.bgp_line(
                f"neighbor {loopback_ip(960 + index_b)} route-reflector-client"
            )
        if b_is_rr:
            b.bgp_line(
                f"neighbor {loopback_ip(960 + index_a)} route-reflector-client"
            )

    for builder in (origin, rr1, rr2, client1, client2):
        builder.bgp(asn)
    origin.raw("ip route 100.100.0.0 255.255.0.0 Null0")
    origin.bgp_line("network 100.100.0.0 mask 255.255.0.0")
    mesh(origin, 0, rr1, 1, b_is_rr=True)
    mesh(origin, 0, rr2, 2, b_is_rr=True)
    mesh(rr1, 1, client1, 3, a_is_rr=True)
    mesh(rr1, 1, client2, 4, a_is_rr=True)
    mesh(rr2, 2, client1, 3, a_is_rr=True)
    mesh(rr2, 2, client2, 4, a_is_rr=True)
    mesh(rr1, 1, rr2, 2)
    return {name: builder.render() for name, builder in builders.items()}


def figure1b() -> Dict[str, str]:
    """Figure 1b: two border routers that both hear 10.0.0.0/8
    externally, prefer each other's internal path (local-pref 200 on
    iBGP import), and therefore re-advertise/withdraw in lockstep — the
    pathological loop that coloring breaks (§4.1.2)."""
    ext1 = """hostname ext1
interface Ethernet0
 ip address 10.1.0.2 255.255.255.0
router bgp 100
 bgp router-id 9.9.9.1
 neighbor 10.1.0.1 remote-as 65000
 network 10.0.0.0 mask 255.0.0.0
ip route 10.0.0.0 255.0.0.0 Null0
"""
    ext2 = (
        ext1.replace("ext1", "ext2").replace("10.1.0", "10.2.0")
        .replace("bgp 100", "bgp 200").replace("9.9.9.1", "9.9.9.2")
    )
    r1 = """hostname r1
interface Ethernet0
 ip address 10.1.0.1 255.255.255.0
interface Ethernet1
 ip address 10.12.0.1 255.255.255.0
router bgp 65000
 bgp router-id 1.1.1.1
 neighbor 10.1.0.2 remote-as 100
 neighbor 10.12.0.2 remote-as 65000
 neighbor 10.12.0.2 next-hop-self
 neighbor 10.12.0.2 route-map IBGP_IN in
route-map IBGP_IN permit 10
 set local-preference 200
"""
    r2 = (
        r1.replace("r1", "r2").replace("10.1.0", "10.2.0")
        .replace("10.12.0.1 255", "10.12.0.2 255")
        .replace("neighbor 10.12.0.2", "neighbor 10.12.0.1")
        .replace("remote-as 100", "remote-as 200")
        .replace("1.1.1.1", "2.2.2.2")
    )
    return {"ext1": ext1, "ext2": ext2, "r1": r1, "r2": r2}
