"""Wide-area networks: an OSPF core ring with edge routers, iBGP over
loopbacks, and external eBGP peers with routing policy (the "WAN" rows
of Table 1).

This is the protocol-diverse workload: OSPF for infrastructure
reachability, an iBGP full mesh with next-hop-self at the borders,
eBGP sessions to external networks, route maps with prefix lists,
community tagging, and local-preference steering.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.hdr.ip import Ip, Prefix
from repro.synth.base import (
    CiscoishBuilder,
    InterfaceSpec,
    NeighborSpec,
    host_subnet,
    loopback_ip,
)

WAN_AS = 65500


def wan(num_core: int = 4, num_edge: int = 8,
        num_externals: int = 2) -> Dict[str, str]:
    """Generate a WAN snapshot.

    Core routers form an OSPF ring; each edge router dual-homes to two
    adjacent cores; all WAN routers share an iBGP full mesh over
    loopbacks; ``num_externals`` provider routers peer eBGP with the
    first cores, filtered and tagged by route maps.
    """
    if num_core < 2:
        raise ValueError("need at least two core routers")
    builders: Dict[str, CiscoishBuilder] = {}
    link_counter = [0]

    def p2p() -> Tuple[str, str, int]:
        index = link_counter[0]
        link_counter[0] += 1
        base = (10 << 24) | (5 << 20) | (index << 2)
        return str(Ip(base + 1)), str(Ip(base + 2)), 30

    def wan_router(name: str, index: int) -> CiscoishBuilder:
        builder = CiscoishBuilder(name)
        rid = loopback_ip(index)
        builder.router_id(rid)
        builder.interface(
            InterfaceSpec("Loopback0", rid, 32, ospf_area=0, ospf_passive=True)
        )
        builder.ntp("192.0.2.123")
        builder.dns("192.0.2.53")
        builders[name] = builder
        return builder

    cores = [wan_router(f"wcore{c}", c + 1) for c in range(num_core)]
    edges = [wan_router(f"wedge{e}", 100 + e) for e in range(num_edge)]

    # Core ring (OSPF area 0).
    port = [0] * (num_core + num_edge)

    def next_port(kind: str, index: int) -> str:
        offset = index if kind == "core" else num_core + index
        port[offset] += 1
        return f"Ethernet{port[offset] - 1}"

    for c in range(num_core):
        peer = (c + 1) % num_core
        if num_core == 2 and c == 1:
            break  # avoid a duplicate parallel link in a 2-core ring
        ip_a, ip_b, plen = p2p()
        cores[c].interface(
            InterfaceSpec(next_port("core", c), ip_a, plen, ospf_area=0,
                          ospf_cost=10)
        )
        cores[peer].interface(
            InterfaceSpec(next_port("core", peer), ip_b, plen, ospf_area=0,
                          ospf_cost=10)
        )

    # Edges dual-home to two adjacent cores.
    for e in range(num_edge):
        primary = e % num_core
        secondary = (e + 1) % num_core
        for which, core_index in enumerate((primary, secondary)):
            ip_edge, ip_core, plen = p2p()
            edges[e].interface(
                InterfaceSpec(
                    next_port("edge", e), ip_edge, plen, ospf_area=0,
                    ospf_cost=20 if which else 10,
                )
            )
            cores[core_index].interface(
                InterfaceSpec(
                    next_port("core", core_index), ip_core, plen, ospf_area=0,
                    ospf_cost=20 if which else 10,
                )
            )
        subnet = host_subnet((e % 4) + 8, e)
        gateway = str(Ip(subnet.network.value + 1))
        edges[e].interface(
            InterfaceSpec(
                next_port("edge", e), gateway, 24, ospf_area=0,
                ospf_passive=True, description="attached site",
                acl_in="SITE_IN" if e == 0 else None,
            )
        )
        if e == 0:
            edges[e].acl(
                "SITE_IN",
                [
                    "deny ip 10.99.0.0 0.0.255.255 any",
                    "permit tcp any any",
                    "permit udp any any eq domain",
                    "permit icmp any any",
                    "deny ip any any",
                ],
            )
        edges[e].bgp(
            WAN_AS,
            f"network {subnet.network} mask {subnet.mask}",
        )
    for c in range(num_core):
        cores[c].bgp(WAN_AS)

    # iBGP full mesh over loopbacks.
    wan_names = [b.hostname for b in cores + edges]
    rid_of = {}
    for c, builder in enumerate(cores):
        rid_of[builder.hostname] = loopback_ip(c + 1)
    for e, builder in enumerate(edges):
        rid_of[builder.hostname] = loopback_ip(100 + e)
    for a_name in wan_names:
        for b_name in wan_names:
            if a_name >= b_name:
                continue
            builders[a_name].bgp_neighbor(
                NeighborSpec(
                    peer_ip=rid_of[b_name], remote_as=WAN_AS, next_hop_self=True,
                    send_community=True,
                )
            )
            builders[b_name].bgp_neighbor(
                NeighborSpec(
                    peer_ip=rid_of[a_name], remote_as=WAN_AS, next_hop_self=True,
                    send_community=True,
                )
            )

    # External providers peer with the first cores.
    for x in range(num_externals):
        name = f"provider{x}"
        provider = CiscoishBuilder(name)
        provider_as = 65600 + x
        rid = loopback_ip(200 + x)
        provider.router_id(rid)
        provider.interface(InterfaceSpec("Loopback0", rid, 32))
        ip_prov, ip_core, plen = p2p()
        provider.interface(InterfaceSpec("Ethernet0", ip_prov, plen))
        core = cores[x % num_core]
        core.interface(InterfaceSpec(next_port("core", x % num_core), ip_core, plen))
        external_prefix = Prefix((8 + x) << 24, 8)
        provider.bgp(
            provider_as,
            f"network {external_prefix.network} mask {external_prefix.mask}",
        )
        provider.static(str(external_prefix), "Null0")
        # A concrete service subnet inside the aggregate, so traffic to
        # it is *delivered* rather than falling into the null route.
        service_gateway = str(Ip(external_prefix.network.value + 1))
        provider.interface(
            InterfaceSpec("Service0", service_gateway, 24,
                          description="provider service hosts")
        )
        provider.bgp_neighbor(NeighborSpec(peer_ip=ip_core, remote_as=WAN_AS))
        core.prefix_list(
            f"FROM_PROVIDER{x}", [f"permit {external_prefix} le 24"]
        )
        core.route_map(
            f"RM_PROV{x}_IN", "permit", 10,
            matches=[f"ip address prefix-list FROM_PROVIDER{x}"],
            sets=[
                f"local-preference {200 - x * 50}",
                f"community 65500:{100 + x} additive",
            ],
        )
        core.route_map(f"RM_PROV{x}_IN", "deny", 20)
        core.route_map(
            f"RM_PROV{x}_OUT", "permit", 10,
            matches=["ip address prefix-list OWN_PREFIXES"],
        )
        core.route_map(f"RM_PROV{x}_OUT", "deny", 20)
        core.prefix_list("OWN_PREFIXES", ["permit 172.16.0.0/12 le 24"])
        core.bgp_neighbor(
            NeighborSpec(
                peer_ip=ip_prov, remote_as=provider_as,
                route_map_in=f"RM_PROV{x}_IN", route_map_out=f"RM_PROV{x}_OUT",
            )
        )
        builders[name] = provider

    return {name: builder.render() for name, builder in builders.items()}
