"""The concrete traceroute engine.

This engine forwards one concrete packet hop by hop through the modeled
data plane, recording every ACL, FIB, NAT, and zone decision it touches.
It is deliberately an *independent implementation* of forwarding
semantics from the symbolic BDD engine: §4.3.2 uses the two engines to
cross-validate each other ("Batfish has two independent forwarding
analysis engines ... Validating that such engines produce identical
results is instrumental in uncovering modeling bugs").

It also powers Stage 4 (explaining violations): example packets from the
symbolic engine are traced here to annotate them with the specific
routing and filtering entries along their path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro import obs
from repro.config.model import Action, Device
from repro.dataplane.acl import evaluate_acl, evaluate_acl_trace
from repro.dataplane.fib import Fib, FibActionType
from repro.dataplane.nat import NatPipeline
from repro.hdr.ip import Ip
from repro.hdr.packet import Packet
from repro.provenance import record as prov
from repro.reachability.graph import Disposition
from repro.routing.engine import DataPlane
from repro.routing.topology import InterfaceId

_MAX_HOPS = 64


@dataclass
class TraceStep:
    kind: str  # "acl" | "fib" | "nat" | "zone" | "arrive" | "final"
    detail: str
    #: Per-line/rule evaluation records (ACL line walk, NAT rule walk,
    #: resolved route) — populated only while provenance recording is on.
    lines: Tuple[str, ...] = ()


@dataclass
class TraceHop:
    node: str
    steps: List[TraceStep] = field(default_factory=list)

    def add(self, kind: str, detail: str, lines: Tuple[str, ...] = ()) -> None:
        self.steps.append(TraceStep(kind, detail, lines))

    def describe(self) -> str:
        inner = "; ".join(step.detail for step in self.steps)
        return f"{self.node}: {inner}"


@dataclass
class Trace:
    """One path a packet takes (ECMP produces several traces)."""

    disposition: Disposition
    hops: List[TraceHop]
    final_packet: Packet  # after all transformations

    def path_nodes(self) -> List[str]:
        return [hop.node for hop in self.hops]

    def describe(self) -> str:
        path = " -> ".join(self.path_nodes())
        return f"[{self.disposition.value}] {path}"


class TracerouteEngine:
    """Forwards concrete packets through the computed data plane."""

    def __init__(self, dataplane: DataPlane, fibs: Dict[str, Fib]):
        self.dataplane = dataplane
        self.fibs = fibs
        self._own_ips: Dict[str, Set[Ip]] = {}
        for hostname in dataplane.snapshot.hostnames():
            device = dataplane.snapshot.device(hostname)
            self._own_ips[hostname] = {
                address for _n, address, _l in device.interface_ips()
            }

    def trace(
        self, packet: Packet, start_node: str, start_interface: str
    ) -> List[Trace]:
        """Trace a packet entering the network at (node, interface).

        Returns all ECMP paths; each with its disposition and the final
        (possibly NAT-transformed) packet.
        """
        with obs.span("traceroute", node=start_node, interface=start_interface):
            traces = self._arrive(
                packet, start_node, start_interface, hops=[], visited=set()
            )
        if obs.enabled():
            obs.add("traceroute.runs")
            obs.add("traceroute.paths", len(traces))
        return traces

    # ------------------------------------------------------------------

    def _arrive(
        self,
        packet: Packet,
        hostname: str,
        interface_name: str,
        hops: List[TraceHop],
        visited: Set[Tuple[str, str, Packet]],
    ) -> List[Trace]:
        state_key = (hostname, interface_name, packet)
        if state_key in visited or len(hops) >= _MAX_HOPS:
            hop = TraceHop(hostname)
            hop.add("final", "forwarding loop detected")
            return [Trace(Disposition.LOOP, hops + [hop], packet)]
        visited = visited | {state_key}
        device = self.dataplane.snapshot.device(hostname)
        hop = TraceHop(hostname)
        hop.add("arrive", f"received on {interface_name}: {packet.describe()}")
        iface = device.interfaces.get(interface_name)
        observing = obs.active()
        if observing:
            obs.add("traceroute.hops")
            obs.touch("interface", hostname, interface_name)
        recording = prov.enabled()
        # Ingress ACL.
        if iface is not None and iface.incoming_acl:
            acl = device.acls.get(iface.incoming_acl)
            if acl is not None:
                if recording:
                    result, acl_lines = evaluate_acl_trace(acl, packet)
                else:
                    result, acl_lines = evaluate_acl(acl, packet), []
                if observing and result.line_index is not None:
                    obs.touch(
                        "acl_line", hostname, iface.incoming_acl, result.line_index
                    )
                hop.add(
                    "acl",
                    f"in acl {iface.incoming_acl}: {result.describe()}",
                    tuple(acl_lines),
                )
                if not result.permitted:
                    hop.add("final", "denied by ingress ACL")
                    return [Trace(Disposition.DENIED_IN, hops + [hop], packet)]
        # Destination NAT.
        if iface is not None and iface.dst_nat_rules:
            pipeline = NatPipeline(device, iface.dst_nat_rules, kind=None)
            if recording:
                transformed, nat_lines = pipeline.apply_concrete_trace(packet)
            else:
                transformed, nat_lines = pipeline.apply_concrete(packet), []
            if transformed != packet:
                hop.add(
                    "nat",
                    f"dst nat: {packet.dst_ip} -> {transformed.dst_ip}",
                    tuple(nat_lines),
                )
                packet = transformed
        in_zone = device.zone_of_interface(interface_name) if iface else None
        # Accept locally?
        if packet.dst_ip in self._own_ips[hostname]:
            hop.add("final", f"accepted: destined to {packet.dst_ip}")
            return [Trace(Disposition.ACCEPTED, hops + [hop], packet)]
        # FIB lookup.
        entries = self.fibs[hostname].lookup(packet.dst_ip)
        if not entries:
            hop.add("fib", "no matching route")
            hop.add("final", "no route")
            return [Trace(Disposition.NO_ROUTE, hops + [hop], packet)]
        traces: List[Trace] = []
        for entry in entries:
            branch_hop = TraceHop(hostname, steps=list(hop.steps))
            fib_lines: Tuple[str, ...] = ()
            if recording and entry.source_route is not None:
                fib_lines = (f"route: {entry.source_route.describe()}",)
            branch_hop.add("fib", f"matched {entry.describe()}", fib_lines)
            traces.extend(
                self._forward(
                    packet, device, entry, in_zone, branch_hop, hops, visited
                )
            )
        return traces

    def _forward(
        self, packet, device: Device, entry, in_zone, hop, hops, visited
    ) -> List[Trace]:
        hostname = device.hostname
        recording = prov.enabled()
        if entry.action is FibActionType.DROP_NULL:
            hop.add("final", "null routed")
            return [Trace(Disposition.NULL_ROUTED, hops + [hop], packet)]
        if entry.action is FibActionType.DROP_NO_ROUTE:
            hop.add("final", "unresolvable route")
            return [Trace(Disposition.NO_ROUTE, hops + [hop], packet)]
        out_iface = device.interfaces.get(entry.out_interface)
        # Zone policy (stateful firewall forward path).
        if device.zones:
            out_zone = device.zone_of_interface(entry.out_interface)
            permitted, detail, zone_lines = self._zone_permits(
                device, in_zone, out_zone, packet, recording
            )
            hop.add("zone", detail, tuple(zone_lines))
            if not permitted:
                hop.add("final", "denied by zone policy")
                return [Trace(Disposition.DENIED_OUT, hops + [hop], packet)]
        # Source NAT.
        if out_iface is not None and out_iface.src_nat_rules:
            pipeline = NatPipeline(device, out_iface.src_nat_rules, kind=None)
            if recording:
                transformed, nat_lines = pipeline.apply_concrete_trace(packet)
            else:
                transformed, nat_lines = pipeline.apply_concrete(packet), []
            if transformed != packet:
                hop.add(
                    "nat",
                    f"src nat: {packet.src_ip} -> {transformed.src_ip}",
                    tuple(nat_lines),
                )
                packet = transformed
        # Egress ACL.
        if out_iface is not None and out_iface.outgoing_acl:
            acl = device.acls.get(out_iface.outgoing_acl)
            if acl is not None:
                if recording:
                    result, acl_lines = evaluate_acl_trace(acl, packet)
                else:
                    result, acl_lines = evaluate_acl(acl, packet), []
                if obs.active() and result.line_index is not None:
                    obs.touch(
                        "acl_line",
                        hostname,
                        out_iface.outgoing_acl,
                        result.line_index,
                    )
                hop.add(
                    "acl",
                    f"out acl {out_iface.outgoing_acl}: {result.describe()}",
                    tuple(acl_lines),
                )
                if not result.permitted:
                    hop.add("final", "denied by egress ACL")
                    return [Trace(Disposition.DENIED_OUT, hops + [hop], packet)]
        # Hand off to the neighbor / sink.
        return self._transmit(packet, device, entry, out_iface, hop, hops, visited)

    def _transmit(
        self, packet, device, entry, out_iface, hop, hops, visited
    ) -> List[Trace]:
        hostname = device.hostname
        interface_id = InterfaceId(hostname, entry.out_interface)
        neighbor_edges = self.dataplane.topology.edges_from(interface_id)
        target_ip = entry.arp_ip if entry.arp_ip is not None else packet.dst_ip
        for l3_edge in neighbor_edges:
            if l3_edge.head_ip == target_ip:
                hop.add(
                    "final",
                    f"forwarded out {entry.out_interface} to "
                    f"{l3_edge.head.node} ({target_ip})",
                )
                return self._arrive(
                    packet,
                    l3_edge.head.node,
                    l3_edge.head.interface,
                    hops + [hop],
                    visited,
                )
        # No modeled neighbor owns the target address.
        prefix = out_iface.prefix if out_iface is not None else None
        if (
            entry.arp_ip is None
            and prefix is not None
            and prefix.contains_ip(packet.dst_ip)
        ):
            hop.add("final", f"delivered to subnet {prefix}")
            return [Trace(Disposition.DELIVERED, hops + [hop], packet)]
        hop.add("final", f"exits network via {entry.out_interface}")
        return [Trace(Disposition.EXITS_NETWORK, hops + [hop], packet)]

    def _zone_permits(
        self, device: Device, in_zone, out_zone, packet, recording: bool = False
    ) -> Tuple[bool, str, List[str]]:
        if in_zone == out_zone:
            return True, f"intra-zone {in_zone}: permit", []
        policy = device.zone_policies.get((in_zone, out_zone)) if in_zone and out_zone else None
        if policy is None:
            return False, f"no policy {in_zone} -> {out_zone}: deny", []
        acl = device.acls.get(policy.acl)
        if acl is None:
            return False, f"zone policy acl {policy.acl} undefined: deny", []
        if recording:
            result, acl_lines = evaluate_acl_trace(acl, packet)
        else:
            result, acl_lines = evaluate_acl(acl, packet), []
        if obs.active() and result.line_index is not None:
            obs.touch("acl_line", device.hostname, policy.acl, result.line_index)
        return (
            result.permitted,
            f"zone policy {in_zone} -> {out_zone}: {result.describe()}",
            acl_lines,
        )
