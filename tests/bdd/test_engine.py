"""Tests for the ROBDD engine, including property-based validation of the
BDD algebra against explicit truth tables."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd.engine import FALSE, TRUE, BddEngine


@pytest.fixture
def engine():
    return BddEngine(num_vars=8)


class TestBasics:
    def test_terminals(self, engine):
        assert engine.not_(TRUE) == FALSE
        assert engine.not_(FALSE) == TRUE
        assert engine.and_(TRUE, FALSE) == FALSE
        assert engine.or_(TRUE, FALSE) == TRUE

    def test_var_canonical(self, engine):
        assert engine.var(3) == engine.var(3)
        assert engine.var(3) != engine.var(4)

    def test_nvar_is_not_var(self, engine):
        assert engine.nvar(2) == engine.not_(engine.var(2))

    def test_var_out_of_range(self, engine):
        with pytest.raises(ValueError):
            engine.var(8)
        with pytest.raises(ValueError):
            engine.nvar(-1)

    def test_zero_vars_rejected(self):
        with pytest.raises(ValueError):
            BddEngine(0)

    def test_idempotence_and_canonicity(self, engine):
        a = engine.var(0)
        b = engine.var(1)
        ab1 = engine.and_(a, b)
        ab2 = engine.and_(b, a)
        assert ab1 == ab2  # canonical: same function, same id

    def test_complement_involution(self, engine):
        f = engine.or_(engine.var(0), engine.nvar(3))
        assert engine.not_(engine.not_(f)) == f

    def test_excluded_middle(self, engine):
        f = engine.xor(engine.var(1), engine.var(2))
        assert engine.or_(f, engine.not_(f)) == TRUE
        assert engine.and_(f, engine.not_(f)) == FALSE

    def test_diff(self, engine):
        a, b = engine.var(0), engine.var(1)
        d = engine.diff(a, b)
        assert engine.and_(d, b) == FALSE
        assert engine.or_(d, engine.and_(a, b)) == a

    def test_implies(self, engine):
        a, b = engine.var(0), engine.var(1)
        assert engine.implies(engine.and_(a, b), a)
        assert not engine.implies(a, engine.and_(a, b))

    def test_ite(self, engine):
        f, g, h = engine.var(0), engine.var(1), engine.var(2)
        ite = engine.ite(f, g, h)
        expected = engine.or_(engine.and_(f, g), engine.and_(engine.not_(f), h))
        assert ite == expected

    def test_ite_shortcuts(self, engine):
        g, h = engine.var(1), engine.var(2)
        assert engine.ite(TRUE, g, h) == g
        assert engine.ite(FALSE, g, h) == h
        assert engine.ite(engine.var(0), TRUE, FALSE) == engine.var(0)
        assert engine.ite(engine.var(0), FALSE, TRUE) == engine.nvar(0)
        assert engine.ite(engine.var(0), g, g) == g

    def test_all_and_or(self, engine):
        vs = [engine.var(i) for i in range(4)]
        assert engine.all_and([]) == TRUE
        assert engine.all_or([]) == FALSE
        conj = engine.all_and(vs)
        for i in range(4):
            assert engine.implies(conj, vs[i])
        disj = engine.all_or(vs)
        assert engine.implies(vs[2], disj)


class TestEvalAndModels:
    def test_eval(self, engine):
        f = engine.and_(engine.var(0), engine.nvar(1))
        assert engine.eval(f, {0: 1, 1: 0})
        assert not engine.eval(f, {0: 1, 1: 1})
        assert not engine.eval(f, {0: 0})

    def test_any_sat_of_false(self, engine):
        assert engine.any_sat(FALSE) is None

    def test_any_sat_satisfies(self, engine):
        f = engine.and_(engine.var(2), engine.nvar(5))
        model = engine.any_sat(f)
        assert engine.eval(f, model)

    def test_from_assignment(self, engine):
        f = engine.from_assignment({1: 1, 3: 0})
        assert engine.eval(f, {1: 1, 3: 0})
        assert not engine.eval(f, {1: 1, 3: 1})

    def test_sat_count(self, engine):
        assert engine.sat_count(TRUE) == 256
        assert engine.sat_count(FALSE) == 0
        assert engine.sat_count(engine.var(0)) == 128
        f = engine.and_(engine.var(0), engine.var(7))
        assert engine.sat_count(f) == 64

    def test_sat_count_smaller_universe(self, engine):
        f = engine.var(0)
        assert engine.sat_count(f, over_vars=1) == 1

    def test_sat_count_rejects_dependent_vars(self, engine):
        with pytest.raises(ValueError):
            engine.sat_count(engine.var(7), over_vars=2)

    def test_sat_iter_enumerates_disjoint_cubes(self, engine):
        f = engine.xor(engine.var(0), engine.var(1))
        cubes = list(engine.sat_iter(f))
        assert len(cubes) == 2
        for cube in cubes:
            assert engine.eval(f, cube)

    def test_sat_iter_limit(self, engine):
        assert len(list(engine.sat_iter(TRUE, limit=1))) == 1

    def test_best_sat_respects_preference(self, engine):
        f = TRUE
        prefer = engine.and_(engine.var(0), engine.var(1))
        model = engine.best_sat(f, [prefer])
        assert model[0] == 1 and model[1] == 1

    def test_best_sat_skips_unsatisfiable_preference(self, engine):
        f = engine.nvar(0)
        model = engine.best_sat(f, [engine.var(0), engine.var(1)])
        assert model[0] == 0  # first preference conflicts, dropped
        assert model[1] == 1  # second applies

    def test_best_sat_of_empty(self, engine):
        assert engine.best_sat(FALSE, [engine.var(0)]) is None


class TestStructure:
    def test_support(self, engine):
        f = engine.and_(engine.var(1), engine.or_(engine.var(4), engine.nvar(6)))
        assert engine.support(f) == (1, 4, 6)
        assert engine.support(TRUE) == ()

    def test_size(self, engine):
        assert engine.size(TRUE) == 0
        assert engine.size(engine.var(0)) == 1
        f = engine.and_(engine.var(0), engine.var(1))
        assert engine.size(f) == 2

    def test_restrict(self, engine):
        f = engine.and_(engine.var(0), engine.var(1))
        assert engine.restrict(f, 0, 1) == engine.var(1)
        assert engine.restrict(f, 0, 0) == FALSE

    def test_clear_caches_preserves_functions(self, engine):
        f = engine.and_(engine.var(0), engine.var(1))
        engine.clear_caches()
        assert engine.and_(engine.var(0), engine.var(1)) == f


class TestQuantification:
    def test_exists_removes_var(self, engine):
        f = engine.and_(engine.var(0), engine.var(1))
        cube = engine.cube([0])
        assert engine.exists(f, cube) == engine.var(1)

    def test_exists_of_unconstrained_var(self, engine):
        f = engine.var(1)
        cube = engine.cube([0, 5])
        assert engine.exists(f, cube) == f

    def test_exists_all_support(self, engine):
        f = engine.xor(engine.var(2), engine.var(3))
        cube = engine.cube([2, 3])
        assert engine.exists(f, cube) == TRUE

    def test_cube_interning(self, engine):
        assert engine.cube([3, 1]) == engine.cube([1, 3, 3])

    def test_rename(self, engine):
        f = engine.and_(engine.var(0), engine.nvar(2))
        mapping = engine.rename_map({0: 1, 2: 3})
        g = engine.rename(f, mapping)
        assert g == engine.and_(engine.var(1), engine.nvar(3))

    def test_rename_must_preserve_order(self, engine):
        with pytest.raises(ValueError):
            engine.rename_map({0: 5, 2: 3})

    def test_and_exists_equals_unfused(self, engine):
        a = engine.or_(engine.var(0), engine.var(2))
        b = engine.and_(engine.var(0), engine.var(3))
        cube = engine.cube([0])
        fused = engine.and_exists(a, b, cube)
        unfused = engine.exists(engine.and_(a, b), cube)
        assert fused == unfused

    def test_transform_models_rewrite(self, engine):
        # Variables: input bit 0, output bit 1. Relation: out = NOT in.
        relation = engine.xor(engine.var(0), engine.var(1))
        cube = engine.cube([0])
        rename = engine.rename_map({1: 0})
        # Input set: bit0 = 1. After "negate" transform: bit0 = 0.
        result = engine.transform(engine.var(0), relation, cube, rename)
        assert result == engine.nvar(0)


def _truth_table(engine, node, nvars):
    return tuple(
        engine.eval(node, {i: (row >> i) & 1 for i in range(nvars)})
        for row in range(1 << nvars)
    )


@st.composite
def _random_expr(draw, depth=0):
    """Random boolean expression over 5 variables as a nested tuple."""
    if depth >= 4 or draw(st.booleans()):
        return ("var", draw(st.integers(min_value=0, max_value=4)))
    op = draw(st.sampled_from(["and", "or", "xor", "not"]))
    if op == "not":
        return ("not", draw(_random_expr(depth + 1)))
    return (op, draw(_random_expr(depth + 1)), draw(_random_expr(depth + 1)))


def _build(engine, expr):
    if expr[0] == "var":
        return engine.var(expr[1])
    if expr[0] == "not":
        return engine.not_(_build(engine, expr[1]))
    lhs, rhs = _build(engine, expr[1]), _build(engine, expr[2])
    return {"and": engine.and_, "or": engine.or_, "xor": engine.xor}[expr[0]](lhs, rhs)


def _eval_expr(expr, bits):
    if expr[0] == "var":
        return bits[expr[1]]
    if expr[0] == "not":
        return 1 - _eval_expr(expr[1], bits)
    lhs, rhs = _eval_expr(expr[1], bits), _eval_expr(expr[2], bits)
    return {"and": lhs & rhs, "or": lhs | rhs, "xor": lhs ^ rhs}[expr[0]]


class TestAlgebraProperties:
    @given(_random_expr())
    @settings(max_examples=200)
    def test_bdd_matches_truth_table(self, expr):
        engine = BddEngine(5)
        node = _build(engine, expr)
        for row in range(32):
            bits = [(row >> i) & 1 for i in range(5)]
            assignment = {i: bits[i] for i in range(5)}
            assert engine.eval(node, assignment) == bool(_eval_expr(expr, bits))

    @given(_random_expr(), _random_expr())
    @settings(max_examples=100)
    def test_de_morgan(self, e1, e2):
        engine = BddEngine(5)
        a, b = _build(engine, e1), _build(engine, e2)
        assert engine.not_(engine.and_(a, b)) == engine.or_(
            engine.not_(a), engine.not_(b)
        )

    @given(_random_expr())
    @settings(max_examples=100)
    def test_sat_count_matches_enumeration(self, expr):
        engine = BddEngine(5)
        node = _build(engine, expr)
        explicit = sum(
            _eval_expr(expr, [(row >> i) & 1 for i in range(5)])
            for row in range(32)
        )
        assert engine.sat_count(node) == explicit

    @given(_random_expr(), st.integers(min_value=0, max_value=4))
    @settings(max_examples=100)
    def test_exists_is_or_of_cofactors(self, expr, level):
        engine = BddEngine(5)
        node = _build(engine, expr)
        quantified = engine.exists(node, engine.cube([level]))
        expected = engine.or_(
            engine.restrict(node, level, 0), engine.restrict(node, level, 1)
        )
        assert quantified == expected

    @given(_random_expr(), _random_expr())
    @settings(max_examples=100)
    def test_and_exists_matches_unfused(self, e1, e2):
        engine = BddEngine(5)
        a, b = _build(engine, e1), _build(engine, e2)
        cube = engine.cube([1, 3])
        assert engine.and_exists(a, b, cube) == engine.exists(
            engine.and_(a, b), cube
        )
