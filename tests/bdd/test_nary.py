"""Property tests for the n-ary BDD kernels (or_all / and_all).

The balanced-tree reduction must compute exactly the same canonical node
as the naive binary left fold, for any operand multiset — including
duplicates, terminals, empty input, and arbitrary order.
"""

import functools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd.engine import FALSE, TRUE, BddEngine

NUM_VARS = 6


@pytest.fixture
def engine():
    return BddEngine(num_vars=NUM_VARS)


def _build_operand(engine, spec):
    """One random BDD: a conjunction of literals, or a terminal."""
    if spec == "true":
        return TRUE
    if spec == "false":
        return FALSE
    node = TRUE
    for var_index, polarity in spec:
        literal = engine.var(var_index) if polarity else engine.nvar(var_index)
        node = engine.and_(node, literal)
    return node


_literal = st.tuples(st.integers(0, NUM_VARS - 1), st.booleans())
_operand_spec = st.one_of(
    st.just("true"),
    st.just("false"),
    st.lists(_literal, min_size=1, max_size=4),
)
_operand_lists = st.lists(_operand_spec, min_size=0, max_size=12)


@settings(max_examples=200, deadline=None)
@given(specs=_operand_lists)
def test_or_all_equals_binary_fold(specs):
    engine = BddEngine(num_vars=NUM_VARS)
    operands = [_build_operand(engine, spec) for spec in specs]
    expected = functools.reduce(engine.or_, operands, FALSE)
    assert engine.or_all(operands) == expected


@settings(max_examples=200, deadline=None)
@given(specs=_operand_lists)
def test_and_all_equals_binary_fold(specs):
    engine = BddEngine(num_vars=NUM_VARS)
    operands = [_build_operand(engine, spec) for spec in specs]
    expected = functools.reduce(engine.and_, operands, TRUE)
    assert engine.and_all(operands) == expected


@settings(max_examples=100, deadline=None)
@given(specs=_operand_lists)
def test_nary_is_order_insensitive(specs):
    engine = BddEngine(num_vars=NUM_VARS)
    operands = [_build_operand(engine, spec) for spec in specs]
    assert engine.or_all(operands) == engine.or_all(list(reversed(operands)))
    assert engine.and_all(operands) == engine.and_all(list(reversed(operands)))


class TestEdgeCases:
    def test_empty_identities(self, engine):
        assert engine.or_all([]) == FALSE
        assert engine.and_all([]) == TRUE

    def test_single_operand(self, engine):
        node = engine.var(2)
        assert engine.or_all([node]) == node
        assert engine.and_all([node]) == node

    def test_terminal_short_circuit(self, engine):
        node = engine.var(0)
        assert engine.or_all([node, TRUE, engine.var(1)]) == TRUE
        assert engine.and_all([node, FALSE, engine.var(1)]) == FALSE

    def test_duplicates_are_idempotent(self, engine):
        node = engine.and_(engine.var(0), engine.nvar(3))
        assert engine.or_all([node] * 5) == node
        assert engine.and_all([node] * 5) == node

    def test_complement_pair(self, engine):
        assert engine.or_all([engine.var(1), engine.nvar(1)]) == TRUE
        assert engine.and_all([engine.var(1), engine.nvar(1)]) == FALSE

    def test_back_compat_aliases(self, engine):
        operands = [engine.var(0), engine.var(1), engine.nvar(2)]
        assert engine.all_or(operands) == engine.or_all(operands)
        assert engine.all_and(operands) == engine.and_all(operands)
