"""Tests for variable permutation (endpoint swap) and transformation
edges, forward and backward."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd.engine import FALSE, TRUE, BddEngine
from repro.config.model import Acl, AclLine, Action, Device, NatKind, NatRule
from repro.dataplane.nat import NatPipeline
from repro.hdr import fields as f
from repro.hdr.headerspace import PacketEncoder
from repro.hdr.ip import Ip, Prefix
from repro.reachability.graph import Transform


class TestPermute:
    def test_identity_permutation(self):
        engine = BddEngine(8)
        node = engine.and_(engine.var(0), engine.nvar(3))
        assert engine.permute(node, {}) == node
        assert engine.permute(node, {0: 0, 3: 3}) == node

    def test_simple_swap(self):
        engine = BddEngine(8)
        node = engine.and_(engine.var(0), engine.nvar(1))
        swapped = engine.permute(node, {0: 1, 1: 0})
        assert swapped == engine.and_(engine.var(1), engine.nvar(0))

    def test_swap_is_involution(self):
        engine = BddEngine(8)
        node = engine.or_(
            engine.and_(engine.var(0), engine.var(5)),
            engine.xor(engine.var(2), engine.var(7)),
        )
        mapping = {0: 5, 5: 0, 2: 7, 7: 2}
        assert engine.permute(engine.permute(node, mapping), mapping) == node

    def test_terminals(self):
        engine = BddEngine(4)
        assert engine.permute(TRUE, {0: 1, 1: 0}) == TRUE
        assert engine.permute(FALSE, {0: 1, 1: 0}) == FALSE

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=50)
    def test_permute_preserves_semantics(self, value_bits, probe_bits):
        engine = BddEngine(8)
        # Build a function over bits 0-3, swap the block with bits 4-7.
        node = engine.from_assignment(
            {i: (value_bits >> i) & 1 for i in range(4)}
        )
        mapping = {i: i + 4 for i in range(4)}
        mapping.update({i + 4: i for i in range(4)})
        swapped = engine.permute(node, mapping)
        assignment = {i: (probe_bits >> i) & 1 for i in range(8)}
        swapped_assignment = {
            mapping.get(i, i): bit for i, bit in assignment.items()
        }
        assert engine.eval(swapped, swapped_assignment) == engine.eval(
            node, assignment
        )


class TestEndpointSwap:
    def test_packet_swap(self):
        enc = PacketEncoder()
        engine = enc.engine
        layout = enc.layout
        mapping = {}
        for a, b in ((f.DST_IP, f.SRC_IP), (f.DST_PORT, f.SRC_PORT)):
            for bit in range(layout.width(a)):
                mapping[layout.var(a, bit)] = layout.var(b, bit)
                mapping[layout.var(b, bit)] = layout.var(a, bit)
        flow = engine.and_(
            enc.ip_eq(f.SRC_IP, "10.1.1.1"),
            engine.and_(
                enc.ip_eq(f.DST_IP, "10.2.2.2"),
                engine.and_(
                    enc.field_eq(f.SRC_PORT, 51000),
                    enc.field_eq(f.DST_PORT, 443),
                ),
            ),
        )
        swapped = engine.permute(flow, mapping)
        expected = engine.and_(
            enc.ip_eq(f.SRC_IP, "10.2.2.2"),
            engine.and_(
                enc.ip_eq(f.DST_IP, "10.1.1.1"),
                engine.and_(
                    enc.field_eq(f.SRC_PORT, 443),
                    enc.field_eq(f.DST_PORT, 51000),
                ),
            ),
        )
        assert swapped == expected


def _nat_device():
    device = Device(hostname="fw")
    device.acls["M"] = Acl(
        name="M", lines=[AclLine(action=Action.PERMIT, src=Prefix("192.168.0.0/16"))]
    )
    return device


class TestTransformEdge:
    def test_forward_backward_roundtrip(self):
        enc = PacketEncoder()
        engine = enc.engine
        pipeline = NatPipeline(
            _nat_device(),
            [NatRule(kind=NatKind.SOURCE, match_acl="M", pool=Prefix("100.64.0.0/24"))],
            kind=None,
        )
        edge = Transform(enc, pipeline, "test")
        inside = enc.ip_in_prefix(f.SRC_IP, "192.168.0.0/16")
        out = edge.forward(inside)
        assert out == enc.ip_in_prefix(f.SRC_IP, "100.64.0.0/24")
        # Backward: whose packets could have produced the pool space?
        pre = edge.backward(out)
        assert engine.and_(pre, inside) == inside

    def test_backward_passthrough(self):
        enc = PacketEncoder()
        engine = enc.engine
        pipeline = NatPipeline(
            _nat_device(),
            [NatRule(kind=NatKind.SOURCE, match_acl="M", pool=Prefix("100.64.0.0/24"))],
            kind=None,
        )
        edge = Transform(enc, pipeline, "test")
        outside = enc.ip_in_prefix(f.SRC_IP, "172.16.0.0/12")
        # Non-matching traffic passes unchanged both ways.
        assert edge.forward(outside) == outside
        assert engine.and_(edge.backward(outside), outside) == outside

    def test_backward_excludes_unreachable_outputs(self):
        enc = PacketEncoder()
        engine = enc.engine
        pipeline = NatPipeline(
            _nat_device(),
            [NatRule(kind=NatKind.SOURCE, match_acl="M", pool=Prefix("100.64.0.5/32"))],
            kind=None,
        )
        edge = Transform(enc, pipeline, "test")
        # Target an output the rewrite can never produce for matching
        # traffic; only pass-through could reach it.
        target = enc.ip_eq(f.SRC_IP, "100.64.0.9")
        pre = edge.backward(target)
        inside = enc.ip_in_prefix(f.SRC_IP, "192.168.0.0/16")
        assert engine.and_(pre, inside) == FALSE
        assert engine.and_(pre, target) == target  # pass-through preimage
