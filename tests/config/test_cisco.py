"""Tests for the ciscoish parser and its conversion to the VI model."""

import pytest

from repro.config.cisco import parse_cisco
from repro.config.model import Action, MatchKind, NatKind, Protocol, SetKind
from repro.hdr import fields as f
from repro.hdr.ip import Ip, Prefix

BASIC = """\
hostname r1
!
interface Ethernet0
 description core link
 ip address 10.0.1.1 255.255.255.0
 ip access-group ACL_IN in
 ip access-group ACL_OUT out
 ip ospf cost 10
 ip ospf area 0
!
interface Ethernet1
 ip address 10.0.2.1/24
 shutdown
!
interface Loopback0
 ip address 1.1.1.1 255.255.255.255
!
router ospf 1
 router-id 1.1.1.1
 passive-interface Loopback0
 redistribute static route-map RM_STATIC metric 20
!
router bgp 65001
 bgp router-id 1.1.1.1
 neighbor 10.0.1.2 remote-as 65002
 neighbor 10.0.1.2 description transit peer
 neighbor 10.0.1.2 route-map RM_IN in
 neighbor 10.0.1.2 route-map RM_OUT out
 neighbor 10.0.1.2 next-hop-self
 neighbor 10.0.1.2 send-community
 network 10.1.0.0 mask 255.255.0.0
 redistribute connected
 maximum-paths 4
!
ip route 0.0.0.0 0.0.0.0 10.0.1.2
ip route 10.9.0.0 255.255.0.0 Null0 250
!
ip access-list extended ACL_IN
 permit tcp any host 10.0.1.5 eq 80
 deny ip 10.9.0.0 0.0.255.255 any
 permit tcp any any established
 permit ip any any
!
ip access-list standard ACL_OUT
 permit 10.0.0.0 0.255.255.255
!
ip prefix-list PL seq 5 permit 10.0.0.0/8 le 24
!
route-map RM_IN permit 10
 match ip address prefix-list PL
 set local-preference 200
 set community 65001:100 additive
route-map RM_IN deny 20
!
route-map RM_OUT permit 10
 set metric 50
!
route-map RM_STATIC permit 10
!
ip community-list standard CL permit 65001:100
ip as-path access-list AP permit ^65002_
!
ntp server 192.0.2.1
ip name-server 192.0.2.53
snmp-server community public
"""


@pytest.fixture(scope="module")
def parsed():
    return parse_cisco(BASIC)


class TestInterfaces:
    def test_hostname(self, parsed):
        device, _ = parsed
        assert device.hostname == "r1"

    def test_address_with_mask(self, parsed):
        device, _ = parsed
        eth0 = device.interfaces["Ethernet0"]
        assert eth0.address == Ip("10.0.1.1")
        assert eth0.prefix_length == 24
        assert eth0.prefix == Prefix("10.0.1.0/24")

    def test_cidr_address(self, parsed):
        device, _ = parsed
        assert device.interfaces["Ethernet1"].prefix_length == 24

    def test_shutdown(self, parsed):
        device, _ = parsed
        assert not device.interfaces["Ethernet1"].enabled
        assert device.interfaces["Ethernet0"].enabled

    def test_acl_bindings(self, parsed):
        device, _ = parsed
        eth0 = device.interfaces["Ethernet0"]
        assert eth0.incoming_acl == "ACL_IN"
        assert eth0.outgoing_acl == "ACL_OUT"

    def test_ospf_interface_settings(self, parsed):
        device, _ = parsed
        eth0 = device.interfaces["Ethernet0"]
        assert eth0.ospf_enabled
        assert eth0.ospf_cost == 10
        assert eth0.ospf_area == 0

    def test_passive_interface(self, parsed):
        device, _ = parsed
        assert device.interfaces["Loopback0"].ospf_passive

    def test_description(self, parsed):
        device, _ = parsed
        assert device.interfaces["Ethernet0"].description == "core link"


class TestRouting:
    def test_ospf_process(self, parsed):
        device, _ = parsed
        assert device.ospf.router_id == Ip("1.1.1.1")
        redist = device.ospf.redistributions[0]
        assert redist.source is Protocol.STATIC
        assert redist.route_map == "RM_STATIC"
        assert redist.metric == 20

    def test_bgp_process(self, parsed):
        device, _ = parsed
        assert device.bgp.local_as == 65001
        assert device.bgp.maximum_paths == 4
        assert device.bgp.networks == [Prefix("10.1.0.0/16")]

    def test_bgp_neighbor(self, parsed):
        device, _ = parsed
        neighbor = device.bgp.neighbors[Ip("10.0.1.2")]
        assert neighbor.remote_as == 65002
        assert neighbor.import_policy == "RM_IN"
        assert neighbor.export_policy == "RM_OUT"
        assert neighbor.next_hop_self
        assert neighbor.send_community
        assert neighbor.description == "transit peer"

    def test_static_routes(self, parsed):
        device, _ = parsed
        default = device.static_routes[0]
        assert default.prefix == Prefix("0.0.0.0/0")
        assert default.next_hop_ip == Ip("10.0.1.2")
        null_route = device.static_routes[1]
        assert null_route.is_null_routed
        assert null_route.admin_distance == 250

    def test_router_id_fallback_uses_loopback(self):
        device, _ = parse_cisco(
            "hostname r9\n"
            "interface Loopback0\n ip address 9.9.9.9 255.255.255.255\n"
            "interface Ethernet0\n ip address 10.255.0.1 255.255.255.0\n"
        )
        assert device.router_id() == Ip("9.9.9.9")


class TestAcls:
    def test_extended_acl_lines(self, parsed):
        device, _ = parsed
        acl = device.acls["ACL_IN"]
        first = acl.lines[0]
        assert first.action is Action.PERMIT
        assert first.protocol == f.PROTO_TCP
        assert first.dst == Prefix("10.0.1.5/32")
        assert first.dst_ports == ((80, 80),)
        second = acl.lines[1]
        assert second.action is Action.DENY
        assert second.src == Prefix("10.9.0.0/16")
        third = acl.lines[2]
        assert third.established

    def test_standard_acl(self, parsed):
        device, _ = parsed
        acl = device.acls["ACL_OUT"]
        assert acl.lines[0].src == Prefix("10.0.0.0/8")
        assert acl.lines[0].protocol is None

    def test_port_names(self):
        device, _ = parse_cisco(
            "hostname r\nip access-list extended A\n permit tcp any any eq https\n"
        )
        assert device.acls["A"].lines[0].dst_ports == ((443, 443),)

    def test_port_operators(self):
        device, _ = parse_cisco(
            "hostname r\nip access-list extended A\n"
            " permit tcp any gt 1023 any lt 1024\n"
            " permit udp any range 5000 6000 any neq 53\n"
        )
        first, second = device.acls["A"].lines
        assert first.src_ports == ((1024, 65535),)
        assert first.dst_ports == ((0, 1023),)
        assert second.src_ports == ((5000, 6000),)
        assert second.dst_ports == ((0, 52), (54, 65535))


class TestPolicy:
    def test_prefix_list(self, parsed):
        device, _ = parsed
        plist = device.prefix_lists["PL"]
        assert plist.permits(Prefix("10.5.0.0/16"))
        assert not plist.permits(Prefix("10.5.0.0/28"))  # le 24
        assert not plist.permits(Prefix("11.0.0.0/8"))

    def test_route_map_clauses(self, parsed):
        device, _ = parsed
        route_map = device.route_maps["RM_IN"]
        permit, deny = route_map.sorted_clauses()
        assert permit.action is Action.PERMIT
        assert permit.matches[0].kind is MatchKind.PREFIX_LIST
        assert permit.matches[0].value == "PL"
        set_kinds = {s.kind for s in permit.sets}
        assert SetKind.LOCAL_PREF in set_kinds
        assert SetKind.COMMUNITY_ADDITIVE in set_kinds
        assert deny.action is Action.DENY

    def test_community_and_as_path_lists(self, parsed):
        device, _ = parsed
        assert device.community_lists["CL"].permits(["65001:100"])
        assert not device.community_lists["CL"].permits(["65001:999"])
        assert device.as_path_lists["AP"].permits([65002, 3356])
        assert not device.as_path_lists["AP"].permits([65001, 65002])


class TestManagementPlane:
    def test_ntp_dns_snmp(self, parsed):
        device, _ = parsed
        assert device.ntp_servers == [Ip("192.0.2.1")]
        assert device.dns_servers == [Ip("192.0.2.53")]
        assert device.snmp_communities == ["public"]

    def test_config_lines_counted(self, parsed):
        device, _ = parsed
        assert device.config_lines > 40


class TestNatAndZones:
    NAT = """\
hostname fw1
interface Ethernet0
 ip address 192.168.1.1 255.255.255.0
 ip nat inside
 zone-member security trust
interface Ethernet1
 ip address 203.0.113.1 255.255.255.0
 ip nat outside
 zone-member security untrust
ip access-list extended NAT_MATCH
 permit ip 192.168.0.0 0.0.255.255 any
ip nat pool POOL1 100.64.0.1 100.64.0.254 prefix-length 24
ip nat inside source list NAT_MATCH pool POOL1
ip nat inside source static 192.168.1.5 203.0.113.5
zone security trust
zone security untrust
zone-pair security TP source trust destination untrust
 service-policy type inspect FW_POLICY
ip access-list extended FW_POLICY
 permit tcp any any eq 443
"""

    def test_nat_rules_attach_to_outside_interface(self):
        device, _ = parse_cisco(self.NAT)
        outside = device.interfaces["Ethernet1"]
        kinds = [rule.kind for rule in outside.src_nat_rules]
        assert NatKind.SOURCE in kinds
        assert NatKind.STATIC in kinds
        dynamic = next(r for r in outside.src_nat_rules if r.kind is NatKind.SOURCE)
        assert dynamic.pool == Prefix("100.64.0.0/24")
        assert dynamic.match_acl == "NAT_MATCH"
        static = next(r for r in outside.src_nat_rules if r.kind is NatKind.STATIC)
        assert static.static_inside == Prefix("192.168.1.5/32")
        assert static.pool == Prefix("203.0.113.5/32")

    def test_inside_interface_has_no_nat(self):
        device, _ = parse_cisco(self.NAT)
        assert device.interfaces["Ethernet0"].src_nat_rules == []

    def test_zones(self):
        device, _ = parse_cisco(self.NAT)
        assert device.zone_of_interface("Ethernet0") == "trust"
        policy = device.zone_policies[("trust", "untrust")]
        assert policy.acl == "FW_POLICY"

    def test_undefined_nat_pool_warns(self):
        _, warnings = parse_cisco(
            "hostname r\nip nat inside source list A pool NOPE\n"
        )
        assert any("undefined NAT pool" in w.comment for w in warnings)


class TestWarnings:
    def test_unrecognized_line_warns_but_continues(self):
        device, warnings = parse_cisco(
            "hostname r1\nfeature bash-shell\ninterface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n"
        )
        assert device.interfaces["Ethernet0"].address == Ip("10.0.0.1")
        assert any("unrecognized top-level" in w.comment for w in warnings)

    def test_unrecognized_interface_line(self):
        _, warnings = parse_cisco(
            "hostname r1\ninterface Ethernet0\n duplex full\n"
        )
        assert any("unrecognized interface line" in w.comment for w in warnings)

    def test_mtu_and_ospf_timers_parsed(self):
        device, warnings = parse_cisco(
            "hostname r1\n"
            "interface Ethernet0\n"
            " ip address 10.0.0.1 255.255.255.0\n"
            " mtu 9000\n"
            " ip ospf hello-interval 5\n"
        )
        iface = device.interfaces["Ethernet0"]
        assert iface.mtu == 9000
        assert iface.ospf_hello_interval == 5
        assert iface.ospf_dead_interval == 20  # 4x hello when unset
        assert not warnings

    def test_numbered_acl_warns(self):
        _, warnings = parse_cisco("hostname r1\naccess-list 101 permit ip any any\n")
        assert any("numbered ACLs" in w.comment for w in warnings)

    def test_discontiguous_wildcard_rejected(self):
        with pytest.raises(ValueError):
            parse_cisco(
                "hostname r\nip access-list extended A\n permit ip 10.0.0.0 0.255.0.255 any\n"
            )
