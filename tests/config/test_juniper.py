"""Tests for the juniperish (set-style) parser."""

import pytest

from repro.config.juniper import parse_juniper
from repro.config.model import Action, MatchKind, SetKind
from repro.hdr import fields as f
from repro.hdr.ip import Ip, Prefix

BASIC = """\
set system host-name r2
set system ntp server 192.0.2.1
set system name-server 192.0.2.53
set interfaces ge-0/0/0 unit 0 family inet address 10.0.1.2/24
set interfaces ge-0/0/0 unit 0 family inet filter input ACL_IN
set interfaces ge-0/0/0 unit 0 family inet filter output ACL_OUT
set interfaces ge-0/0/1 unit 0 family inet address 10.0.2.2/24
set interfaces ge-0/0/1 disable
set interfaces lo0 unit 0 family inet address 2.2.2.2/32
set interfaces ge-0/0/0 description core uplink
set protocols ospf area 0 interface ge-0/0/0 metric 15
set protocols ospf area 0 interface lo0 passive
set protocols ospf reference-bandwidth 100000000000
set protocols bgp local-as 65002
set protocols bgp group PEERS neighbor 10.0.1.1 peer-as 65001
set protocols bgp group PEERS neighbor 10.0.1.1 import RM_IN
set protocols bgp group PEERS neighbor 10.0.1.1 export RM_OUT
set protocols bgp group PEERS neighbor 10.0.1.1 description transit
set routing-options router-id 2.2.2.2
set routing-options static route 0.0.0.0/0 next-hop 10.0.1.1
set routing-options static route 10.99.0.0/16 next-hop discard preference 250
set policy-options prefix-list PL 10.0.0.0/8
set policy-options policy-statement RM_IN term 10 from prefix-list PL
set policy-options policy-statement RM_IN term 10 then local-preference 200
set policy-options policy-statement RM_IN term 10 then accept
set policy-options policy-statement RM_IN term 20 then reject
set policy-options policy-statement RM_OUT term 10 then metric 50
set policy-options policy-statement RM_OUT term 10 then accept
set policy-options community PEER_ROUTES members 65001:100
set firewall filter ACL_IN term web from protocol tcp
set firewall filter ACL_IN term web from destination-port 80
set firewall filter ACL_IN term web then accept
set firewall filter ACL_IN term block-net from source-address 10.9.0.0/16
set firewall filter ACL_IN term block-net then discard
set firewall filter ACL_OUT term all then accept
"""


@pytest.fixture(scope="module")
def parsed():
    return parse_juniper(BASIC)


class TestInterfaces:
    def test_hostname(self, parsed):
        device, _ = parsed
        assert device.hostname == "r2"
        assert device.vendor == "juniperish"

    def test_address(self, parsed):
        device, _ = parsed
        iface = device.interfaces["ge-0/0/0"]
        assert iface.address == Ip("10.0.1.2")
        assert iface.prefix_length == 24

    def test_filters(self, parsed):
        device, _ = parsed
        iface = device.interfaces["ge-0/0/0"]
        assert iface.incoming_acl == "ACL_IN"
        assert iface.outgoing_acl == "ACL_OUT"

    def test_disable(self, parsed):
        device, _ = parsed
        assert not device.interfaces["ge-0/0/1"].enabled

    def test_description(self, parsed):
        device, _ = parsed
        assert device.interfaces["ge-0/0/0"].description == "core uplink"

    def test_loopback(self, parsed):
        device, _ = parsed
        assert device.interfaces["lo0"].is_loopback


class TestRouting:
    def test_ospf(self, parsed):
        device, _ = parsed
        iface = device.interfaces["ge-0/0/0"]
        assert iface.ospf_enabled
        assert iface.ospf_cost == 15
        assert device.interfaces["lo0"].ospf_passive
        assert device.ospf.reference_bandwidth == 100000000000

    def test_bgp(self, parsed):
        device, _ = parsed
        assert device.bgp.local_as == 65002
        neighbor = device.bgp.neighbors[Ip("10.0.1.1")]
        assert neighbor.remote_as == 65001
        assert neighbor.import_policy == "RM_IN"
        assert neighbor.export_policy == "RM_OUT"
        assert neighbor.description == "transit"

    def test_router_id(self, parsed):
        device, _ = parsed
        assert device.bgp.router_id == Ip("2.2.2.2")
        assert device.ospf.router_id == Ip("2.2.2.2")

    def test_static_routes(self, parsed):
        device, _ = parsed
        default, discard = device.static_routes
        assert default.prefix == Prefix("0.0.0.0/0")
        assert default.next_hop_ip == Ip("10.0.1.1")
        assert default.admin_distance == 5  # juniper default preference
        assert discard.is_null_routed
        assert discard.admin_distance == 250


class TestPolicy:
    def test_policy_statement_to_route_map(self, parsed):
        device, _ = parsed
        route_map = device.route_maps["RM_IN"]
        first, second = route_map.sorted_clauses()
        assert first.action is Action.PERMIT
        assert first.matches[0].kind is MatchKind.PREFIX_LIST
        assert first.sets[0].kind is SetKind.LOCAL_PREF
        assert second.action is Action.DENY

    def test_prefix_list(self, parsed):
        device, _ = parsed
        assert device.prefix_lists["PL"].permits(Prefix("10.0.0.0/8"))

    def test_community(self, parsed):
        device, _ = parsed
        assert device.community_lists["PEER_ROUTES"].permits(["65001:100"])


class TestFilters:
    def test_filter_to_acl(self, parsed):
        device, _ = parsed
        acl = device.acls["ACL_IN"]
        web, block = acl.lines
        assert web.action is Action.PERMIT
        assert web.protocol == f.PROTO_TCP
        assert web.dst_ports == ((80, 80),)
        assert block.action is Action.DENY
        assert block.src == Prefix("10.9.0.0/16")

    def test_term_order_preserved(self, parsed):
        device, _ = parsed
        acl = device.acls["ACL_IN"]
        assert [l.name for l in acl.lines] == ["term web", "term block-net"]

    def test_port_range_token(self):
        device, _ = parse_juniper(
            "set system host-name r\n"
            "set firewall filter A term t from destination-port 5000-6000\n"
            "set firewall filter A term t then accept\n"
        )
        assert device.acls["A"].lines[0].dst_ports == ((5000, 6000),)


class TestZones:
    ZONES = """\
set system host-name fw2
set interfaces ge-0/0/0 unit 0 family inet address 192.168.1.1/24
set interfaces ge-0/0/1 unit 0 family inet address 203.0.113.1/24
set security zones security-zone trust interfaces ge-0/0/0
set security zones security-zone untrust interfaces ge-0/0/1
set security policies from-zone trust to-zone untrust policy allow-web match protocol tcp
set security policies from-zone trust to-zone untrust policy allow-web match destination-port 443
set security policies from-zone trust to-zone untrust policy allow-web then accept
"""

    def test_zone_membership(self):
        device, _ = parse_juniper(self.ZONES)
        assert device.zone_of_interface("ge-0/0/0") == "trust"
        assert device.zone_of_interface("ge-0/0/1") == "untrust"

    def test_zone_policy_becomes_acl(self):
        device, _ = parse_juniper(self.ZONES)
        policy = device.zone_policies[("trust", "untrust")]
        acl = device.acls[policy.acl]
        assert acl.lines[0].action is Action.PERMIT
        assert acl.lines[0].dst_ports == ((443, 443),)


class TestWarnings:
    def test_non_set_line_warns(self):
        _, warnings = parse_juniper("delete interfaces ge-0/0/0\n")
        assert any("expected a 'set'" in w.comment for w in warnings)

    def test_comments_ignored(self):
        _, warnings = parse_juniper("# a comment\nset system host-name r\n")
        assert warnings == []

    def test_bgp_without_local_as(self):
        device, warnings = parse_juniper(
            "set system host-name r\n"
            "set protocols bgp group G neighbor 10.0.0.1 peer-as 65001\n"
        )
        assert device.bgp is None
        assert any("without local-as" in w.comment for w in warnings)

    def test_neighbor_without_peer_as_dropped(self):
        device, warnings = parse_juniper(
            "set system host-name r\n"
            "set protocols bgp local-as 65002\n"
            "set protocols bgp group G neighbor 10.0.0.1 import RM\n"
        )
        assert device.bgp.neighbors == {}
        assert any("no peer-as" in w.comment for w in warnings)
