"""Tests for snapshot loading, syntax detection, and reference tracking."""

import os

import pytest

from repro.config.loader import (
    detect_syntax,
    load_snapshot_from_dir,
    load_snapshot_from_texts,
    parse_config_text,
)
from repro.config.references import (
    StructureType,
    undefined_references,
    unused_structures,
)

CISCO = """\
hostname r1
interface Ethernet0
 ip address 10.0.1.1 255.255.255.0
 ip access-group MISSING_ACL in
router bgp 65001
 neighbor 10.0.1.2 remote-as 65002
 neighbor 10.0.1.2 route-map MISSING_RM in
ip access-list extended UNUSED_ACL
 permit ip any any
"""

JUNIPER = """\
set system host-name r2
set interfaces ge-0/0/0 unit 0 family inet address 10.0.1.2/24
"""


class TestDetectSyntax:
    def test_cisco(self):
        assert detect_syntax(CISCO) == "ciscoish"

    def test_juniper(self):
        assert detect_syntax(JUNIPER) == "juniperish"

    def test_empty_defaults_to_cisco(self):
        assert detect_syntax("") == "ciscoish"

    def test_parse_dispatch(self):
        device, _ = parse_config_text(JUNIPER)
        assert device.vendor == "juniperish"
        device, _ = parse_config_text(CISCO)
        assert device.vendor == "ciscoish"


class TestSnapshotLoading:
    def test_from_texts(self):
        snapshot = load_snapshot_from_texts({"r1.cfg": CISCO, "r2.cfg": JUNIPER})
        assert snapshot.hostnames() == ["r1", "r2"]
        assert snapshot.device("r2").vendor == "juniperish"

    def test_duplicate_hostname_flagged(self):
        snapshot = load_snapshot_from_texts(
            {"a.cfg": "hostname dup\n", "b.cfg": "hostname dup\n"}
        )
        assert len(snapshot.devices) == 1
        assert any("duplicate hostname" in w.comment for w in snapshot.warnings)

    def test_from_dir(self, tmp_path):
        (tmp_path / "r1.cfg").write_text(CISCO)
        (tmp_path / "r2.cfg").write_text(JUNIPER)
        (tmp_path / "notes.txt").write_text("not a config")
        snapshot = load_snapshot_from_dir(str(tmp_path))
        assert snapshot.hostnames() == ["r1", "r2"]

    def test_from_empty_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_snapshot_from_dir(str(tmp_path))


class TestReferences:
    def test_undefined_references_found(self):
        device, _ = parse_config_text(CISCO)
        undefined = undefined_references(device)
        names = {(ref.structure_type, ref.name) for ref in undefined}
        assert (StructureType.ACL, "MISSING_ACL") in names
        assert (StructureType.ROUTE_MAP, "MISSING_RM") in names

    def test_defined_references_not_flagged(self):
        text = CISCO.replace("MISSING_ACL", "UNUSED_ACL")
        device, _ = parse_config_text(text)
        undefined = undefined_references(device)
        assert all(ref.name != "UNUSED_ACL" for ref in undefined)

    def test_unused_structures_found(self):
        device, _ = parse_config_text(CISCO)
        unused = unused_structures(device)
        assert any(
            u.name == "UNUSED_ACL" and u.structure_type is StructureType.ACL
            for u in unused
        )

    def test_used_structure_not_unused(self):
        text = CISCO.replace("MISSING_ACL", "UNUSED_ACL")
        device, _ = parse_config_text(text)
        assert not any(u.name == "UNUSED_ACL" for u in unused_structures(device))

    def test_reference_context_is_descriptive(self):
        device, _ = parse_config_text(CISCO)
        ref = next(
            r for r in undefined_references(device) if r.name == "MISSING_RM"
        )
        assert "import policy" in ref.context
