"""Tests for source-location provenance through normalization (§7.3).

"A common compiler mitigation technique includes metadata with each
intermediate-level instruction that contains information, such as the
corresponding source-level locations" — ACL lines in the vendor-
independent model carry (file, line) back to the configuration text,
and analyses surface it in their explanations.
"""

from repro.config.cisco import parse_cisco
from repro.dataplane.acl import evaluate_acl
from repro.hdr.ip import Ip
from repro.hdr.packet import Packet

CONFIG = """\
hostname r1
interface e0
 ip address 10.0.0.1 255.255.255.0
 ip access-group FILTER in
ip access-list extended FILTER
 deny tcp any any eq 23
 permit ip any any
"""


class TestProvenance:
    def test_acl_lines_carry_source_location(self):
        device, _ = parse_cisco(CONFIG, filename="r1.cfg")
        acl = device.acls["FILTER"]
        assert acl.lines[0].source_file == "r1.cfg"
        # `deny tcp any any eq 23` is physical line 6 of the file.
        assert acl.lines[0].source_line == 6
        assert acl.lines[1].source_line == 7

    def test_evaluation_surfaces_source_location(self):
        device, _ = parse_cisco(CONFIG, filename="r1.cfg")
        result = evaluate_acl(device.acls["FILTER"], Packet(dst_port=23))
        assert "r1.cfg:6" in result.describe()

    def test_implicit_deny_has_no_location(self):
        device, _ = parse_cisco(
            "hostname r\nip access-list extended EMPTY\n permit tcp any any\n"
        )
        result = evaluate_acl(
            device.acls["EMPTY"], Packet(ip_protocol=17)
        )
        assert result.describe() == "implicit deny"

    def test_traceroute_steps_include_location(self):
        from repro.config.loader import load_snapshot_from_texts
        from repro.dataplane.fib import compute_fibs
        from repro.routing.engine import compute_dataplane
        from repro.traceroute.engine import TracerouteEngine

        snapshot = load_snapshot_from_texts({"r1.cfg": CONFIG})
        dataplane = compute_dataplane(snapshot)
        tracer = TracerouteEngine(dataplane, compute_fibs(dataplane))
        packet = Packet(
            src_ip=Ip("10.0.0.9"), dst_ip=Ip("10.0.0.1"), dst_port=23
        )
        traces = tracer.trace(packet, "r1", "e0")
        details = [
            step.detail
            for trace in traces
            for hop in trace.hops
            for step in hop.steps
        ]
        assert any("r1.cfg:6" in detail for detail in details)
