"""Cross-vendor provenance parity for redistribution statements: both
dialects must blame the exact ``redistribute`` / ``export`` line, since
dataflow findings (route-leak, redistribution-loop) point users there."""

from repro.config.loader import load_snapshot_from_texts
from repro.config.model import Protocol

CISCO = """
hostname c1
interface Ethernet0
 ip address 10.0.0.1 255.255.255.0
 no shutdown
ip route 10.9.0.0 255.255.0.0 Null0
router ospf 1
 redistribute static route-map FILTER
router bgp 65001
 redistribute static route-map FILTER
 neighbor 10.0.0.2 remote-as 65002
route-map FILTER permit 10
"""

JUNIPER = """
set system host-name j1
set interfaces ge-0/0/0 unit 0 family inet address 10.0.0.1/24
set routing-options static route 10.9.0.0/16 discard
set protocols ospf area 0 interface ge-0/0/0
set protocols ospf export FILTER
set protocols bgp local-as 65001
set protocols bgp export FILTER
set protocols bgp group PEERS neighbor 10.0.0.2 peer-as 65002
set policy-options policy-statement FILTER term 1 then accept
"""


def line_of(text, marker):
    for number, line in enumerate(text.splitlines(), start=1):
        if marker in line:
            return number
    raise AssertionError(f"marker {marker!r} not found")


def single_redistribution(process):
    assert process is not None
    assert len(process.redistributions) == 1
    return process.redistributions[0]


class TestCiscoProvenance:
    def test_ospf_and_bgp_redistribute_blame_their_lines(self):
        snapshot = load_snapshot_from_texts({"c1": CISCO})
        device = snapshot.device("c1")
        ospf = single_redistribution(device.ospf)
        assert ospf.source == Protocol.STATIC
        assert ospf.route_map == "FILTER"
        assert ospf.source_file == "c1"
        assert ospf.source_line == line_of(
            CISCO, "redistribute static route-map FILTER"
        )
        bgp = single_redistribution(device.bgp)
        assert bgp.route_map == "FILTER"
        assert bgp.source_file == "c1"
        # The BGP statement is a *different* line than the OSPF one.
        assert bgp.source_line > ospf.source_line
        assert CISCO.splitlines()[bgp.source_line - 1].strip() == (
            "redistribute static route-map FILTER"
        )


class TestJuniperProvenance:
    def test_export_statements_blame_their_lines(self):
        snapshot = load_snapshot_from_texts({"j1": JUNIPER})
        device = snapshot.device("j1")
        ospf = single_redistribution(device.ospf)
        assert ospf.route_map == "FILTER"
        assert ospf.source_file == "j1"
        assert ospf.source_line == line_of(JUNIPER, "protocols ospf export")
        bgp = single_redistribution(device.bgp)
        assert bgp.route_map == "FILTER"
        assert bgp.source_file == "j1"
        assert bgp.source_line == line_of(JUNIPER, "protocols bgp export")


class TestParity:
    def test_vendors_agree_on_shape(self):
        """The dataflow graph builder consumes redistributions without
        knowing the vendor: both dialects must fill the same fields
        with real (nonzero) line numbers."""
        snapshot = load_snapshot_from_texts({"c1": CISCO, "j1": JUNIPER})
        for hostname in ("c1", "j1"):
            device = snapshot.device(hostname)
            for process in (device.ospf, device.bgp):
                redist = single_redistribution(process)
                assert redist.source == Protocol.STATIC
                assert redist.route_map == "FILTER"
                assert redist.source_file == hostname
                assert redist.source_line > 0
