"""Regression: every structure reference carries a resolvable source
location (the satellite requirement behind lint provenance).

Runs over every synthetic network in the Table 1 registry plus both
hand-written vendor fixtures, so a parser change that drops line
tracking for any reference site fails here with the exact context
string.
"""

import pytest

from repro.config.loader import load_snapshot_from_texts
from repro.config.references import iter_references
from repro.synth.networks import NETWORKS


def _assert_located(snapshot):
    missing = []
    for hostname in snapshot.hostnames():
        for ref in iter_references(snapshot.device(hostname)):
            if not ref.source_file or ref.source_line <= 0:
                missing.append(
                    f"{hostname}: {ref.context} "
                    f"({ref.source_file!r}:{ref.source_line})"
                )
    assert not missing, "references without locations:\n" + "\n".join(missing)


@pytest.mark.parametrize("spec", NETWORKS, ids=lambda s: s.name)
def test_synthetic_network_references_located(spec):
    _assert_located(load_snapshot_from_texts(spec.generate(1)))


def test_all_reference_kinds_located():
    """A config exercising every reference site iter_references knows:
    interface filters/zones/NAT, BGP policies and update-source,
    redistribution maps, route-map matches, zone-pair policies, and
    static-route interfaces."""
    configs = {
        "r1": """
hostname r1
zone security INSIDE
zone security OUTSIDE
interface e0
 ip address 10.0.0.1 255.255.255.0
 ip access-group IN_ACL in
 ip access-group OUT_ACL out
 zone-member security INSIDE
interface e1
 ip address 10.0.1.1 255.255.255.0
 zone-member security OUTSIDE
ip access-list extended IN_ACL
 permit ip any any
ip access-list extended OUT_ACL
 permit ip any any
ip access-list extended PAIR_ACL
 permit ip any any
ip prefix-list PL seq 5 permit 10.0.0.0/8
route-map RM permit 10
 match ip address prefix-list PL
route-map CONN permit 10
router bgp 65000
 neighbor 10.0.0.2 remote-as 65001
 neighbor 10.0.0.2 route-map RM in
 neighbor 10.0.0.2 route-map RM out
 neighbor 10.0.0.2 update-source e0
 redistribute connected route-map CONN
router ospf 1
 network 10.0.0.0 0.0.255.255 area 0
 redistribute connected route-map CONN
zone-pair security IN2OUT source INSIDE destination OUTSIDE
 service-policy PAIR_ACL
ip route 10.99.0.0 255.255.0.0 e1
""",
    }
    snapshot = load_snapshot_from_texts(configs)
    refs = list(iter_references(snapshot.device("r1")))
    contexts = {ref.context for ref in refs}
    # Every reference kind the model knows shows up in this config.
    assert any("incoming filter" in c for c in contexts)
    assert any("outgoing filter" in c for c in contexts)
    assert any("zone membership" in c for c in contexts)
    assert any("import policy" in c for c in contexts)
    assert any("export policy" in c for c in contexts)
    assert any("update-source" in c for c in contexts)
    assert any("bgp redistribute" in c for c in contexts)
    assert any("ospf redistribute" in c for c in contexts)
    assert any("clause" in c for c in contexts)
    assert any("zone-pair" in c for c in contexts)
    assert any("next-hop interface" in c for c in contexts)
    _assert_located(snapshot)
