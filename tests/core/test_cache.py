"""Tests for the content-addressed snapshot cache (repro.core.cache)."""

import pytest

from repro.core.cache import (
    SnapshotCache,
    engine_version,
    resolve_cache,
    snapshot_key,
)
from repro.core.session import Session
from repro.synth.special import net1


@pytest.fixture()
def configs():
    return net1(2)


class TestKeying:
    def test_key_is_stable(self, configs):
        assert snapshot_key(configs) == snapshot_key(dict(configs))

    def test_key_ignores_dict_order(self, configs):
        reordered = dict(reversed(list(configs.items())))
        assert snapshot_key(configs) == snapshot_key(reordered)

    def test_one_byte_edit_changes_key(self, configs):
        edited = dict(configs)
        name = sorted(edited)[0]
        edited[name] = edited[name] + "!"
        assert snapshot_key(configs) != snapshot_key(edited)

    def test_filename_participates_in_key(self, configs):
        renamed = {f"x-{name}": text for name, text in configs.items()}
        assert snapshot_key(configs) != snapshot_key(renamed)

    def test_salt_participates_in_key(self, configs):
        assert snapshot_key(configs) != snapshot_key(configs, salt="other")

    def test_engine_version_is_hex_and_memoized(self):
        version = engine_version()
        assert len(version) == 64
        assert version == engine_version()


class TestResolve:
    def test_none_and_false_disable(self):
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None

    def test_string_names_directory(self, tmp_path):
        cache = resolve_cache(str(tmp_path))
        assert isinstance(cache, SnapshotCache)

    def test_instance_passthrough(self, tmp_path):
        cache = SnapshotCache(str(tmp_path))
        assert resolve_cache(cache) is cache

    def test_true_uses_env_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        cache = resolve_cache(True)
        cache.store("probe", "0" * 64, {"ok": 1})
        assert (tmp_path / "envcache").exists()

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            resolve_cache(42)


class TestRoundTrip:
    def test_same_configs_hit_with_identical_results(self, tmp_path, configs):
        cache = SnapshotCache(str(tmp_path))
        cold = Session.from_texts(configs, cache=cache)
        cold_dp = cold.dataplane
        assert cache.stats()["misses"] >= 2  # snapshot + dataplane
        assert cache.stats()["hits"] == 0

        warm = Session.from_texts(configs, cache=cache)
        warm_dp = warm.dataplane
        assert cache.stats()["hits"] >= 2  # snapshot + dataplane

        # The cached pipeline must be indistinguishable from the
        # computed one.
        assert warm.snapshot.hostnames() == cold.snapshot.hostnames()
        assert warm_dp.converged == cold_dp.converged
        assert sorted(warm_dp.nodes) == sorted(cold_dp.nodes)
        for hostname in cold_dp.nodes:
            cold_routes = sorted(
                r.describe() for r in cold_dp.main_rib(hostname).routes()
            )
            warm_routes = sorted(
                r.describe() for r in warm_dp.main_rib(hostname).routes()
            )
            assert warm_routes == cold_routes

    def test_cached_session_answers_queries(self, tmp_path, configs):
        cache = SnapshotCache(str(tmp_path))
        Session.from_texts(configs, cache=cache).dataplane
        warm = Session.from_texts(configs, cache=cache)
        answer = warm.reachability()
        assert answer.success_set() != 0

    def test_one_byte_edit_misses(self, tmp_path, configs):
        cache = SnapshotCache(str(tmp_path))
        Session.from_texts(configs, cache=cache).dataplane
        hits_before = cache.stats()["hits"]

        edited = dict(configs)
        name = sorted(edited)[0]
        edited[name] = edited[name] + "\n! trailing comment\n"
        Session.from_texts(edited, cache=cache).dataplane
        # Snapshot-level and dataplane entries must miss (no false
        # sharing of results); only the per-device parse memo may hit,
        # and exactly for the files whose bytes did not change.
        assert cache.stats()["hits"] == hits_before + len(configs) - 1

    def test_settings_change_misses_dataplane(self, tmp_path, configs):
        from repro.routing.engine import ConvergenceSettings

        cache = SnapshotCache(str(tmp_path))
        Session.from_texts(configs, cache=cache).dataplane
        changed = Session.from_texts(
            configs,
            cache=cache,
            settings=ConvergenceSettings(max_iterations=77),
        )
        changed.dataplane
        stats = cache.stats()
        # Snapshot key matches (same bytes) but the dataplane entry is
        # salted with the simulation settings, so it recomputes.
        assert stats["hits"] == 1
        assert stats["misses"] >= 3

    @pytest.mark.parametrize(
        "garbage",
        [
            b"not a pickle",
            b"garbage\n",  # 'g' is the pickle GLOBAL opcode -> ValueError
            b"",
            b"\x80\x05incomplete",
        ],
    )
    def test_corrupt_entry_degrades_to_miss(self, tmp_path, configs, garbage):
        cache = SnapshotCache(str(tmp_path))
        session = Session.from_texts(configs, cache=cache)
        session.dataplane
        for path in tmp_path.rglob("*"):
            if path.is_file():
                path.write_bytes(garbage)
        recovered = Session.from_texts(configs, cache=cache)
        assert recovered.dataplane.converged

    def test_clear_empties_cache(self, tmp_path, configs):
        cache = SnapshotCache(str(tmp_path))
        Session.from_texts(configs, cache=cache)
        cache.clear()
        assert not any(p.is_file() for p in tmp_path.rglob("*"))


class TestEviction:
    def _entry_size(self, tmp_path):
        cache = SnapshotCache(str(tmp_path / "probe"))
        cache.store("blob", "0" * 64, b"x" * 1024)
        (path,) = (tmp_path / "probe").glob("*.pkl")
        return path.stat().st_size

    def test_unbounded_by_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_MAX_BYTES", raising=False)
        cache = SnapshotCache(str(tmp_path))
        assert cache.max_bytes is None
        for i in range(5):
            cache.store("blob", f"{i:064d}", b"x" * 4096)
        assert cache.stats()["evictions"] == 0
        assert len(list(tmp_path.glob("*.pkl"))) == 5

    def test_evicts_least_recently_used(self, tmp_path):
        size = self._entry_size(tmp_path)
        cache = SnapshotCache(str(tmp_path / "c"), max_bytes=size * 2)
        import time as _time

        for i in range(3):
            cache.store("blob", f"{i:064d}", b"x" * 1024)
            _time.sleep(0.01)  # distinct mtimes
        # Budget holds two entries: the oldest (entry 0) was evicted.
        assert cache.stats()["evictions"] == 1
        assert cache.load("blob", f"{0:064d}") is None
        assert cache.load("blob", f"{2:064d}") is not None

    def test_hit_refreshes_recency(self, tmp_path):
        size = self._entry_size(tmp_path)
        cache = SnapshotCache(str(tmp_path / "c"), max_bytes=size * 2)
        import time as _time

        cache.store("blob", "a" * 64, b"x" * 1024)
        _time.sleep(0.01)
        cache.store("blob", "b" * 64, b"x" * 1024)
        _time.sleep(0.01)
        assert cache.load("blob", "a" * 64) is not None  # touch 'a'
        _time.sleep(0.01)
        cache.store("blob", "c" * 64, b"x" * 1024)
        # 'b' is now the LRU entry, not 'a'.
        assert cache.load("blob", "b" * 64) is None
        assert cache.load("blob", "a" * 64) is not None

    def test_just_written_entry_survives_tiny_budget(self, tmp_path):
        cache = SnapshotCache(str(tmp_path), max_bytes=1)
        cache.store("blob", "a" * 64, b"x" * 4096)
        # Over budget but never self-evicting: the entry still caches.
        assert cache.load("blob", "a" * 64) is not None

    def test_env_knob(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "12345")
        assert SnapshotCache(str(tmp_path)).max_bytes == 12345
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "not-a-number")
        with pytest.raises(ValueError):
            SnapshotCache(str(tmp_path))


class TestProtect:
    """protect() pins entries a live delta still needs (the base
    snapshot's devices and data plane) against LRU eviction."""

    def _sized_cache(self, tmp_path, entries=2):
        probe = SnapshotCache(str(tmp_path / "probe"))
        probe.store("blob", "0" * 64, b"x" * 1024)
        (path,) = (tmp_path / "probe").glob("*.pkl")
        return SnapshotCache(
            str(tmp_path / "c"), max_bytes=path.stat().st_size * entries
        )

    def test_protected_entry_survives_eviction_pressure(self, tmp_path):
        import time as _time

        cache = self._sized_cache(tmp_path, entries=2)
        cache.store("blob", "a" * 64, b"x" * 1024)
        with cache.protect([("blob", "a" * 64)]):
            for i in range(3):
                _time.sleep(0.01)
                cache.store("blob", f"{i:064d}", b"x" * 1024)
            # 'a' is the LRU entry yet still present; pressure fell on
            # the unpinned entries instead.
            assert cache.load("blob", "a" * 64) is not None
        assert cache.stats()["evictions"] > 0

    def test_unprotected_entry_evicts_after_exit(self, tmp_path):
        import time as _time

        cache = self._sized_cache(tmp_path, entries=2)
        cache.store("blob", "a" * 64, b"x" * 1024)
        with cache.protect([("blob", "a" * 64)]):
            pass
        for i in range(3):
            _time.sleep(0.01)
            cache.store("blob", f"{i:064d}", b"x" * 1024)
        assert cache.load("blob", "a" * 64) is None

    def test_protection_is_refcounted(self, tmp_path):
        import time as _time

        cache = self._sized_cache(tmp_path, entries=2)
        cache.store("blob", "a" * 64, b"x" * 1024)
        outer = cache.protect([("blob", "a" * 64)])
        inner = cache.protect([("blob", "a" * 64)])
        outer.__enter__()
        inner.__enter__()
        inner.__exit__(None, None, None)
        # Still pinned by the outer protector.
        for i in range(3):
            _time.sleep(0.01)
            cache.store("blob", f"{i:064d}", b"x" * 1024)
        assert cache.load("blob", "a" * 64) is not None
        outer.__exit__(None, None, None)

    def test_nested_overlapping_scopes_compose(self, tmp_path):
        """The sweep shape: an outer scope pins the base snapshot's
        entries for the whole run while each scenario's delta pins an
        overlapping subset; the overlap must stay pinned until the
        *outer* scope ends, and unrelated entries keep evicting."""
        import time as _time

        cache = self._sized_cache(tmp_path, entries=3)
        cache.store("blob", "a" * 64, b"x" * 1024)
        _time.sleep(0.01)
        cache.store("blob", "b" * 64, b"x" * 1024)
        with cache.protect([("blob", "a" * 64), ("blob", "b" * 64)]):
            with cache.protect([("blob", "a" * 64)]):
                pass
            # Inner exit must not have unpinned the overlap.
            for i in range(4):
                _time.sleep(0.01)
                cache.store("blob", f"{i:064d}", b"x" * 1024)
            assert cache.load("blob", "a" * 64) is not None
            assert cache.load("blob", "b" * 64) is not None
        assert cache.stats()["evictions"] > 0

    def test_protect_wins_race_with_in_flight_eviction(self, tmp_path, monkeypatch):
        """A pin taken after eviction has started scanning the directory
        but before any unlink must still be honored — the evictor has to
        re-check the pin set under the lock at unlink time, not act on a
        snapshot taken when the scan began."""
        import os as _os
        import time as _time

        cache = self._sized_cache(tmp_path, entries=2)
        cache.store("blob", "a" * 64, b"x" * 1024)
        _time.sleep(0.01)
        cache.store("blob", "b" * 64, b"x" * 1024)

        pin = cache.protect([("blob", "a" * 64)])
        entered = []
        real_listdir = _os.listdir

        def racing_listdir(path):
            # Simulates a concurrent sweep thread opening its protect
            # scope mid-eviction: after the evictor began its scan.
            if not entered:
                entered.append(True)
                pin.__enter__()
            return real_listdir(path)

        monkeypatch.setattr("repro.core.cache.os.listdir", racing_listdir)
        _time.sleep(0.01)
        cache.store("blob", "c" * 64, b"x" * 1024)  # drives eviction
        monkeypatch.undo()
        try:
            # 'a' (the LRU entry) was pinned mid-eviction and survived;
            # pressure fell on 'b' instead.
            assert cache.load("blob", "a" * 64) is not None
            assert cache.load("blob", "b" * 64) is None
        finally:
            pin.__exit__(None, None, None)
