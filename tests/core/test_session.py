"""Tests for the public Session API."""

import pytest

from repro import HeaderSpace, Ip, Packet, Session
from repro.core.session import NotConvergedError
from repro.hdr import fields as f
from repro.reachability.graph import Disposition
from repro.routing.engine import ConvergenceSettings
from repro.synth.special import figure1b, net1
from repro.synth.wan import wan


@pytest.fixture(scope="module")
def session():
    return Session.from_texts(net1(3))


class TestLifecycle:
    def test_from_texts(self, session):
        assert len(session.snapshot.devices) == 6

    def test_from_dir(self, tmp_path):
        for name, text in net1(2).items():
            (tmp_path / f"{name}.cfg").write_text(text)
        session = Session.from_dir(str(tmp_path))
        assert len(session.snapshot.devices) == 4

    def test_lazy_pipeline(self, session):
        assert session.dataplane.converged
        assert session.fibs
        assert session.analyzer.graph.num_nodes() > 0

    def test_assert_converged_passes(self, session):
        session.assert_converged()

    def test_assert_converged_raises_on_oscillation(self):
        bad = Session.from_texts(
            figure1b(),
            settings=ConvergenceSettings(schedule="lockstep", max_iterations=40),
        )
        with pytest.raises(NotConvergedError) as excinfo:
            bad.assert_converged()
        assert "10.0.0.0/8" in str(excinfo.value)


class TestSnapshotKey:
    def test_key_is_stable_for_identical_configs(self):
        a = Session.from_texts(net1(2))
        b = Session.from_texts(net1(2))
        assert a.snapshot_key == b.snapshot_key
        assert len(a.snapshot_key) == 64

    def test_key_tracks_configs_and_settings(self):
        base = Session.from_texts(net1(2))
        edited_configs = net1(2)
        name = sorted(edited_configs)[0]
        edited_configs[name] += "\n! edit\n"
        assert Session.from_texts(edited_configs).snapshot_key != base.snapshot_key
        tuned = Session.from_texts(
            net1(2), settings=ConvergenceSettings(max_iterations=7)
        )
        assert tuned.snapshot_key != base.snapshot_key

    def test_fallback_for_raw_snapshot_sessions(self):
        from repro.config.loader import load_snapshot_from_texts

        session = Session(load_snapshot_from_texts(net1(2)))
        assert len(session.snapshot_key) == 64
        # Memoized: repeated reads agree.
        assert session.snapshot_key == session.snapshot_key

    def test_deprecated_alias_warns_and_matches(self):
        session = Session.from_texts(net1(2))
        with pytest.warns(DeprecationWarning):
            legacy = session._dataplane_key()
        assert legacy == session.snapshot_key


class TestQuestionSurface:
    def test_routes(self, session):
        rows = session.routes()
        assert rows
        one_node = session.routes("net1-core0")
        assert all(row.node == "net1-core0" for row in one_node)

    def test_parse_warnings_empty_on_clean(self, session):
        assert session.parse_warnings == []

    def test_configuration_questions(self, session):
        assert session.undefined_references().rows == []
        assert session.duplicate_ips().rows == []
        session.unused_structures()
        session.management_plane_consistency()

    def test_bgp_session_question_on_wan(self):
        wan_session = Session.from_texts(wan(2, 2, 1))
        sessions, issues = wan_session.bgp_session_compatibility()
        assert sessions
        assert issues == []

    def test_filter_questions(self, session):
        result = session.test_filter(
            "net1-core0", "SPUR_FILTER", Packet(dst_port=23)
        )
        assert not result.action.value == "permit"
        rows = session.search_filters(HeaderSpace.build(protocols=[f.PROTO_TCP]))
        assert rows
        session.unreachable_filter_lines()


class TestForwardingSurface:
    def test_reachability_scoped_default(self, session):
        answer = session.reachability()
        assert answer.success_set() != 0

    def test_reachability_explicit_sources(self, session):
        answer = session.reachability(
            HeaderSpace.build(dst="172.19.1.0/24"),
            sources=[("net1-spur0", "Vlan10")],
        )
        assert answer.success_set() != 0

    def test_reachability_unscoped(self, session):
        answer = session.reachability(scoped=False)
        assert Disposition.DELIVERED in answer.by_disposition

    def test_multipath_consistency(self, session):
        violations = session.multipath_consistency()
        assert violations  # NET1's deliberate asymmetry
        assert violations[0].example is not None

    def test_traceroute(self, session):
        packet = Packet(
            src_ip=Ip("172.19.0.10"), dst_ip=Ip("172.19.1.10"), dst_port=80
        )
        traces = session.traceroute(packet, "net1-spur0", "Vlan10")
        assert traces
        assert traces[0].disposition in (
            Disposition.DELIVERED, Disposition.ACCEPTED,
        )

    def test_service_questions(self, session):
        reachable = session.service_reachable(
            "172.19.1.10", port=443, client_locations=[("net1-spur0", "Vlan10")]
        )
        assert reachable.reachable

    def test_validate_engines(self, session):
        report = session.validate_engines()
        assert report.passed, [m.describe() for m in report.mismatches[:3]]
