"""Tests for ACL semantics — concrete evaluation, BDD encoding, and a
property-based agreement check between the two (the in-module half of
the §4.3.2 differential idea)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd.engine import FALSE, TRUE
from repro.config.model import Acl, AclLine, Action
from repro.dataplane.acl import (
    acl_line_spaces,
    acl_permit_space,
    evaluate_acl,
    line_matches,
)
from repro.hdr import fields as f
from repro.hdr.headerspace import PacketEncoder
from repro.hdr.ip import Ip, Prefix
from repro.hdr.packet import Packet


@pytest.fixture(scope="module")
def enc():
    return PacketEncoder()


def _acl(*lines):
    return Acl(name="test", lines=list(lines))


WEB = AclLine(
    action=Action.PERMIT, protocol=f.PROTO_TCP, dst_ports=((80, 80), (443, 443)),
    name="permit web",
)
BLOCK_NET = AclLine(
    action=Action.DENY, src=Prefix("10.9.0.0/16"), name="deny bad net"
)
ALLOW_ALL = AclLine(action=Action.PERMIT, name="permit any")
ESTABLISHED = AclLine(
    action=Action.PERMIT, protocol=f.PROTO_TCP, established=True,
    name="permit established",
)


class TestConcrete:
    def test_first_match_wins(self):
        acl = _acl(BLOCK_NET, ALLOW_ALL)
        bad = Packet(src_ip=Ip("10.9.1.1"))
        good = Packet(src_ip=Ip("10.8.1.1"))
        assert evaluate_acl(acl, bad).action is Action.DENY
        assert evaluate_acl(acl, bad).line_index == 0
        assert evaluate_acl(acl, good).action is Action.PERMIT
        assert evaluate_acl(acl, good).line_index == 1

    def test_implicit_deny(self):
        acl = _acl(WEB)
        result = evaluate_acl(acl, Packet(dst_port=22))
        assert result.action is Action.DENY
        assert result.line is None
        assert result.describe() == "implicit deny"

    def test_port_match(self):
        acl = _acl(WEB)
        assert evaluate_acl(acl, Packet(dst_port=443)).permitted
        assert not evaluate_acl(acl, Packet(dst_port=8080)).permitted

    def test_protocol_match(self):
        assert not line_matches(WEB, Packet(ip_protocol=f.PROTO_UDP, dst_port=80))

    def test_established_requires_ack_or_rst(self):
        ack = Packet(tcp_flags=0b00010000)
        rst = Packet(tcp_flags=0b00000100)
        syn = Packet(tcp_flags=0b00000010)
        assert line_matches(ESTABLISHED, ack)
        assert line_matches(ESTABLISHED, rst)
        assert not line_matches(ESTABLISHED, syn)
        assert not line_matches(
            ESTABLISHED, Packet(ip_protocol=f.PROTO_UDP, tcp_flags=0b00010000)
        )

    def test_icmp_type_match(self):
        echo_only = AclLine(
            action=Action.PERMIT, protocol=f.PROTO_ICMP, icmp_type=8
        )
        assert line_matches(
            echo_only, Packet(ip_protocol=f.PROTO_ICMP, icmp_type=8)
        )
        assert not line_matches(
            echo_only, Packet(ip_protocol=f.PROTO_ICMP, icmp_type=0)
        )


class TestBddEncoding:
    def test_empty_acl_permits_nothing(self, enc):
        assert acl_permit_space(_acl(), enc) == FALSE

    def test_permit_any_is_true(self, enc):
        assert acl_permit_space(_acl(ALLOW_ALL), enc) == TRUE

    def test_line_order_matters(self, enc):
        deny_first = acl_permit_space(_acl(BLOCK_NET, ALLOW_ALL), enc)
        permit_first = acl_permit_space(_acl(ALLOW_ALL, BLOCK_NET), enc)
        assert permit_first == TRUE
        assert deny_first != TRUE
        bad_src = enc.ip_in_prefix(f.SRC_IP, "10.9.0.0/16")
        assert enc.engine.and_(deny_first, bad_src) == FALSE

    def test_line_spaces_partition(self, enc):
        acl = _acl(BLOCK_NET, WEB, ALLOW_ALL)
        spaces = acl_line_spaces(acl, enc)
        engine = enc.engine
        # Effective spaces are pairwise disjoint.
        for i in range(len(spaces)):
            for j in range(i + 1, len(spaces)):
                assert engine.and_(spaces[i][1], spaces[j][1]) == FALSE
        # Their union is everything any line matches.
        union = engine.all_or(space for _line, space in spaces)
        assert union == TRUE  # ALLOW_ALL matches everything eventually

    def test_shadowed_line_has_empty_space(self, enc):
        shadowed = AclLine(
            action=Action.DENY, src=Prefix("10.9.5.0/24"), name="shadowed"
        )
        spaces = acl_line_spaces(_acl(BLOCK_NET, shadowed), enc)
        assert spaces[1][1] == FALSE


@st.composite
def _random_line(draw):
    action = draw(st.sampled_from([Action.PERMIT, Action.DENY]))
    protocol = draw(st.sampled_from([None, f.PROTO_TCP, f.PROTO_UDP]))
    src = None
    if draw(st.booleans()):
        src = Prefix(draw(st.integers(0, 0xFFFFFFFF)), draw(st.integers(0, 24)))
    dst = None
    if draw(st.booleans()):
        dst = Prefix(draw(st.integers(0, 0xFFFFFFFF)), draw(st.integers(0, 24)))
    ports = ()
    if protocol is not None and draw(st.booleans()):
        low = draw(st.integers(0, 65000))
        ports = ((low, low + draw(st.integers(0, 500))),)
    return AclLine(action=action, protocol=protocol, src=src, dst=dst,
                   dst_ports=ports)


@st.composite
def _random_packet(draw):
    return Packet(
        src_ip=Ip(draw(st.integers(0, 0xFFFFFFFF))),
        dst_ip=Ip(draw(st.integers(0, 0xFFFFFFFF))),
        src_port=draw(st.integers(0, 65535)),
        dst_port=draw(st.integers(0, 65535)),
        ip_protocol=draw(st.sampled_from([f.PROTO_TCP, f.PROTO_UDP, f.PROTO_ICMP])),
    )


class TestSymbolicConcreteAgreement:
    @given(st.lists(_random_line(), max_size=6), _random_packet())
    @settings(max_examples=120, deadline=None)
    def test_bdd_agrees_with_evaluation(self, lines, packet):
        enc = PacketEncoder()
        acl = _acl(*lines)
        permit_space = acl_permit_space(acl, enc)
        symbolic = enc.engine.eval(
            permit_space, _assignment(enc, packet)
        )
        concrete = evaluate_acl(acl, packet).permitted
        assert symbolic == concrete


def _assignment(enc, packet):
    assignment = {}
    for field in f.HEADER_FIELDS:
        value = packet.field_value(field)
        width = enc.layout.width(field)
        for bit in range(width):
            assignment[enc.layout.var(field, bit)] = (value >> (width - 1 - bit)) & 1
    return assignment
