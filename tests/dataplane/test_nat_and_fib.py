"""Tests for NAT pipelines (concrete + symbolic agreement) and FIB
construction/resolution."""

import pytest

from repro.bdd.engine import FALSE
from repro.config.loader import load_snapshot_from_texts
from repro.config.model import Acl, AclLine, Action, Device, NatKind, NatRule
from repro.dataplane.fib import FibActionType, build_fib, compute_fibs
from repro.dataplane.nat import NatPipeline, _concrete_pool_ip
from repro.hdr import fields as f
from repro.hdr.headerspace import PacketEncoder
from repro.hdr.ip import Ip, Prefix
from repro.hdr.packet import Packet
from repro.routing.engine import compute_dataplane


def _device_with_nat():
    device = Device(hostname="fw")
    device.acls["MATCH_INSIDE"] = Acl(
        name="MATCH_INSIDE",
        lines=[AclLine(action=Action.PERMIT, src=Prefix("192.168.0.0/16"))],
    )
    return device


DYNAMIC = NatRule(
    kind=NatKind.SOURCE, match_acl="MATCH_INSIDE", pool=Prefix("100.64.0.0/24")
)
STATIC = NatRule(
    kind=NatKind.STATIC,
    match_acl=None,
    pool=Prefix("203.0.113.0/28"),
    static_inside=Prefix("192.168.5.0/28"),
)
DEST = NatRule(
    kind=NatKind.DESTINATION, match_acl=None, pool=Prefix("10.0.0.5/32")
)


class TestConcreteNat:
    def test_dynamic_source_rewrite(self):
        pipeline = NatPipeline(_device_with_nat(), [DYNAMIC], kind=None)
        packet = Packet(src_ip=Ip("192.168.1.7"), dst_ip=Ip("8.8.8.8"))
        rewritten = pipeline.apply_concrete(packet)
        assert Prefix("100.64.0.0/24").contains_ip(rewritten.src_ip)
        assert rewritten.dst_ip == packet.dst_ip

    def test_non_matching_passes_through(self):
        pipeline = NatPipeline(_device_with_nat(), [DYNAMIC], kind=None)
        packet = Packet(src_ip=Ip("172.16.1.1"))
        assert pipeline.apply_concrete(packet) == packet

    def test_static_preserves_offset(self):
        pipeline = NatPipeline(_device_with_nat(), [STATIC], kind=None)
        packet = Packet(src_ip=Ip("192.168.5.7"))
        rewritten = pipeline.apply_concrete(packet)
        assert rewritten.src_ip == Ip("203.0.113.7")

    def test_destination_rewrite(self):
        pipeline = NatPipeline(_device_with_nat(), [DEST], kind=None)
        packet = Packet(dst_ip=Ip("1.2.3.4"))
        assert pipeline.apply_concrete(packet).dst_ip == Ip("10.0.0.5")

    def test_first_match_order(self):
        narrower = NatRule(
            kind=NatKind.SOURCE, match_acl=None, pool=Prefix("198.51.100.1/32")
        )
        pipeline = NatPipeline(_device_with_nat(), [DYNAMIC, narrower], kind=None)
        inside = Packet(src_ip=Ip("192.168.1.1"))
        outside = Packet(src_ip=Ip("172.16.1.1"))
        assert Prefix("100.64.0.0/24").contains_ip(
            pipeline.apply_concrete(inside).src_ip
        )
        assert pipeline.apply_concrete(outside).src_ip == Ip("198.51.100.1")

    def test_undefined_match_acl_never_matches(self):
        rule = NatRule(kind=NatKind.SOURCE, match_acl="NOPE", pool=Prefix("1.1.1.1/32"))
        pipeline = NatPipeline(_device_with_nat(), [rule], kind=None)
        packet = Packet(src_ip=Ip("192.168.1.1"))
        assert pipeline.apply_concrete(packet) == packet

    def test_pool_ip_static_offset_helper(self):
        assert _concrete_pool_ip(STATIC, Ip("192.168.5.3")) == Ip("203.0.113.3")


class TestSymbolicNat:
    def test_concrete_result_in_symbolic_set(self):
        """The concrete rewrite must always land inside the symbolic
        output set (superset semantics for pools)."""
        enc = PacketEncoder()
        device = _device_with_nat()
        pipeline = NatPipeline(device, [DYNAMIC, STATIC], kind=None)
        for src in ("192.168.1.7", "192.168.5.3", "172.16.0.9"):
            packet = Packet(src_ip=Ip(src), dst_ip=Ip("8.8.8.8"))
            out_set = pipeline.apply_symbolic(enc, enc.packet_bdd(packet))
            concrete = pipeline.apply_concrete(packet)
            assert enc.engine.and_(out_set, enc.packet_bdd(concrete)) != FALSE

    def test_symbolic_pool_is_whole_pool(self):
        enc = PacketEncoder()
        pipeline = NatPipeline(_device_with_nat(), [DYNAMIC], kind=None)
        inside = enc.ip_in_prefix(f.SRC_IP, "192.168.0.0/16")
        out = pipeline.apply_symbolic(enc, inside)
        assert out == enc.ip_in_prefix(f.SRC_IP, "100.64.0.0/24")

    def test_passthrough_preserved_symbolically(self):
        enc = PacketEncoder()
        pipeline = NatPipeline(_device_with_nat(), [DYNAMIC], kind=None)
        outside = enc.ip_in_prefix(f.SRC_IP, "172.16.0.0/12")
        assert pipeline.apply_symbolic(enc, outside) == outside

    def test_empty_pipeline_is_identity(self):
        enc = PacketEncoder()
        pipeline = NatPipeline(_device_with_nat(), [], kind=None)
        space = enc.ip_in_prefix(f.DST_IP, "10.0.0.0/8")
        assert pipeline.apply_symbolic(enc, space) == space


FIB_CONFIGS = {
    "r1": """
hostname r1
interface Ethernet0
 ip address 10.0.0.1 255.255.255.0
interface Ethernet1
 ip address 10.0.1.1 255.255.255.0
ip route 192.168.0.0 255.255.0.0 10.0.0.2
ip route 0.0.0.0 0.0.0.0 10.0.1.2
ip route 172.31.0.0 255.255.0.0 Null0
""",
}


class TestFib:
    @pytest.fixture(scope="class")
    def fib(self):
        dataplane = compute_dataplane(load_snapshot_from_texts(FIB_CONFIGS))
        return compute_fibs(dataplane)["r1"]

    def test_lpm_choice(self, fib):
        entries = fib.lookup(Ip("192.168.1.1"))
        assert entries[0].out_interface == "Ethernet0"
        assert entries[0].arp_ip == Ip("10.0.0.2")
        entries = fib.lookup(Ip("8.8.8.8"))
        assert entries[0].out_interface == "Ethernet1"

    def test_connected_entry_delivers_direct(self, fib):
        entries = fib.lookup(Ip("10.0.0.9"))
        assert entries[0].action is FibActionType.FORWARD
        assert entries[0].arp_ip is None  # deliver toward dst itself

    def test_null_route(self, fib):
        entries = fib.lookup(Ip("172.31.5.5"))
        assert entries[0].action is FibActionType.DROP_NULL

    def test_entry_count(self, fib):
        assert len(fib) == 5  # 2 connected + 3 statics

    def test_describe(self, fib):
        entries = fib.lookup(Ip("192.168.1.1"))
        assert "192.168.0.0/16" in entries[0].describe()
