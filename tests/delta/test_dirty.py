"""Dirty-set computation: routing fingerprints, protocol-edge closure,
and the candidate-host restriction contract."""

from repro.config.loader import load_snapshot_from_texts
from repro.delta import compute_dirty_set, protocol_edges, routing_fingerprint

OSPF_PAIR = {
    "r1": """
hostname r1
interface Loopback0
 ip address 1.1.1.1 255.255.255.255
 ip ospf area 0
interface Ethernet0
 ip address 10.0.12.1 255.255.255.0
 ip ospf area 0
router ospf 1
 router-id 1.1.1.1
""",
    "r2": """
hostname r2
interface Loopback0
 ip address 2.2.2.2 255.255.255.255
 ip ospf area 0
interface Ethernet0
 ip address 10.0.12.2 255.255.255.0
 ip ospf area 0
router ospf 1
 router-id 2.2.2.2
""",
}


def _device(text, hostname="r1"):
    return load_snapshot_from_texts({hostname: text}).device(hostname)


class TestRoutingFingerprint:
    BASE = OSPF_PAIR["r1"]

    def test_stable_across_reparses(self):
        assert routing_fingerprint(_device(self.BASE)) == routing_fingerprint(
            _device(self.BASE)
        )

    def test_management_plane_edits_are_inert(self):
        for inert_line in (
            "ntp server 203.0.113.250\n",
            "snmp-server community letmein RO\n",
        ):
            edited = _device(self.BASE + inert_line)
            assert routing_fingerprint(edited) == routing_fingerprint(
                _device(self.BASE)
            ), inert_line

    def test_interface_description_is_inert(self):
        edited = self.BASE.replace(
            "interface Ethernet0\n",
            "interface Ethernet0\n description uplink to r2\n",
        )
        assert routing_fingerprint(_device(edited)) == routing_fingerprint(
            _device(self.BASE)
        )

    def test_static_route_changes_fingerprint(self):
        edited = self.BASE + "ip route 203.0.113.0 255.255.255.0 Null0\n"
        assert routing_fingerprint(_device(edited)) != routing_fingerprint(
            _device(self.BASE)
        )

    def test_interface_address_changes_fingerprint(self):
        edited = self.BASE.replace("10.0.12.1", "10.0.12.9")
        assert routing_fingerprint(_device(edited)) != routing_fingerprint(
            _device(self.BASE)
        )

    def test_acl_relevant_only_for_bgp_speakers(self):
        acl = "ip access-list extended MGMT\n permit tcp any any eq 22\n"
        # No BGP: ACLs cannot influence routing, fingerprint unchanged.
        assert routing_fingerprint(_device(self.BASE + acl)) == (
            routing_fingerprint(_device(self.BASE))
        )
        # With BGP the same ACL participates (session viability, §4.1.1).
        bgp = (
            "router bgp 65001\n"
            " bgp router-id 1.1.1.1\n"
            " neighbor 10.0.12.2 remote-as 65002\n"
        )
        assert routing_fingerprint(_device(self.BASE + bgp + acl)) != (
            routing_fingerprint(_device(self.BASE + bgp))
        )


class TestDirtyClosure:
    def test_identical_snapshots_have_empty_dirty_set(self):
        base = load_snapshot_from_texts(OSPF_PAIR)
        new = load_snapshot_from_texts(dict(OSPF_PAIR))
        computation = compute_dirty_set(base, new)
        assert computation.seeds == []
        assert computation.dirty == set()
        # The empty-seed early return never builds protocol topologies.
        assert computation.edges == set()

    def test_routing_edit_dirties_ospf_neighbor(self):
        edited = dict(OSPF_PAIR)
        edited["r1"] = (
            OSPF_PAIR["r1"] + "ip route 203.0.113.0 255.255.255.0 Null0\n"
        )
        computation = compute_dirty_set(
            load_snapshot_from_texts(OSPF_PAIR),
            load_snapshot_from_texts(edited),
        )
        assert computation.seeds == ["r1"]
        assert computation.dirty == {"r1", "r2"}

    def test_severing_edit_dirties_both_sides(self):
        # Removing OSPF from r1's link tears down the adjacency; the
        # closure must follow the *base* world's edge so r2 (whose
        # routes through r1 vanish) is re-simulated too.
        severed = dict(OSPF_PAIR)
        severed["r1"] = OSPF_PAIR["r1"].replace(
            "interface Ethernet0\n ip address 10.0.12.1 255.255.255.0\n"
            " ip ospf area 0\n",
            "interface Ethernet0\n ip address 10.0.12.1 255.255.255.0\n",
        )
        assert severed["r1"] != OSPF_PAIR["r1"]
        base = load_snapshot_from_texts(OSPF_PAIR)
        new = load_snapshot_from_texts(severed)
        # The new world alone has no r1<->r2 protocol edge...
        assert protocol_edges(new) == set()
        # ...yet both sides are dirty via the union of worlds.
        computation = compute_dirty_set(base, new)
        assert computation.seeds == ["r1"]
        assert computation.dirty == {"r1", "r2"}

    def test_added_and_removed_devices_seed(self):
        grown = dict(OSPF_PAIR)
        grown["r3"] = "hostname r3\ninterface e0\n ip address 10.9.0.1 255.255.255.0\n"
        base = load_snapshot_from_texts(OSPF_PAIR)
        new = load_snapshot_from_texts(grown)
        assert "r3" in compute_dirty_set(base, new).dirty
        removal = compute_dirty_set(new, base)
        assert "r3" in removal.dirty
        # Removed devices are excluded by the new-snapshot projection.
        assert removal.dirty_in(base) == set()

    def test_candidate_hosts_restricts_comparison(self):
        edited = dict(OSPF_PAIR)
        edited["r1"] = (
            OSPF_PAIR["r1"] + "ip route 203.0.113.0 255.255.255.0 Null0\n"
        )
        base = load_snapshot_from_texts(OSPF_PAIR)
        new = load_snapshot_from_texts(edited)
        assert compute_dirty_set(
            base, new, candidate_hosts={"r1"}
        ).dirty == {"r1", "r2"}
        # The contract is the caller's: a candidate set that misses the
        # changed host makes the diff (wrongly) report it clean. This
        # documents why the engine derives candidates from changed
        # *files* via the injective filename->hostname map.
        assert compute_dirty_set(
            base, new, candidate_hosts={"r2"}
        ).dirty == set()
