"""Incremental delta engine: splice exactness against full recomputes,
fallback behavior, and the differential validator itself."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.session import Session
from repro.delta import DeltaValidationError, fib_lines
from repro.delta.engine import _validate
from repro.synth.special import net1

#: Two protocol components: an OSPF pair (a, b) and a standalone
#: static-only device (c) — edits to one component must never
#: re-simulate the other.
THREE_ISLANDS = {
    "a": """
hostname a
interface Loopback0
 ip address 1.1.1.1 255.255.255.255
 ip ospf area 0
interface Ethernet0
 ip address 10.0.12.1 255.255.255.0
 ip ospf area 0
router ospf 1
 router-id 1.1.1.1
""",
    "b": """
hostname b
interface Loopback0
 ip address 2.2.2.2 255.255.255.255
 ip ospf area 0
interface Ethernet0
 ip address 10.0.12.2 255.255.255.0
 ip ospf area 0
router ospf 1
 router-id 2.2.2.2
""",
    "c": """
hostname c
interface Ethernet0
 ip address 10.9.0.1 255.255.255.0
ip route 198.51.100.0 255.255.255.0 Null0
""",
}

INERT_LINE = "ntp server 203.0.113.250\n"
ROUTE_LINE = "ip route 203.0.113.0 255.255.255.0 Null0\n"


def full_fib_lines(configs):
    return fib_lines(Session.from_texts(configs).fibs)


class TestSplice:
    def test_partial_dirty_resimulates_one_component(self):
        base = Session.from_texts(THREE_ISLANDS)
        base.fibs
        new = base.delta(
            {"a": THREE_ISLANDS["a"] + ROUTE_LINE}, validate=True
        )
        info = new.delta_info
        assert not info.fallback
        assert info.validated
        assert info.seeds == ["a"]
        assert set(info.dirty_devices) == {"a", "b"}
        assert info.reused_devices == 1
        # The clean island's FIB is the base object, not a copy.
        assert new.fibs["c"] is base.fibs["c"]
        # The edit actually landed in the spliced result.
        assert any(
            "203.0.113.0/24" in line for line in fib_lines(new.fibs)["a"]
        )

    def test_inert_edit_reuses_base_dataplane_wholesale(self):
        base = Session.from_texts(THREE_ISLANDS)
        base.fibs
        new = base.delta({"c": THREE_ISLANDS["c"] + INERT_LINE}, validate=True)
        info = new.delta_info
        assert not info.fallback
        assert info.dirty_devices == []
        assert info.reused_devices == 3
        assert info.parse_memo_hits == 2
        # Converged state is aliased, never copied...
        assert (
            new.dataplane.nodes["a"].main_rib
            is base.dataplane.nodes["a"].main_rib
        )
        # ...but device references follow the new snapshot.
        assert new.dataplane.nodes["c"].device is new.snapshot.device("c")

    def test_rewriting_file_with_identical_bytes_is_no_change(self):
        base = Session.from_texts(THREE_ISLANDS)
        base.fibs
        new = base.delta({"a": THREE_ISLANDS["a"]}, validate=True)
        assert new.delta_info.changed_files == []
        assert new.delta_info.dirty_devices == []

    def test_chained_deltas(self):
        base = Session.from_texts(THREE_ISLANDS)
        base.fibs
        first = base.delta({"c": THREE_ISLANDS["c"] + INERT_LINE})
        second = first.delta(
            {"a": THREE_ISLANDS["a"] + ROUTE_LINE}, validate=True
        )
        assert second.delta_info.validated
        assert set(second.delta_info.dirty_devices) == {"a", "b"}

    def test_device_removal(self):
        base = Session.from_texts(THREE_ISLANDS)
        base.fibs
        new = base.delta({"c": None}, validate=True)
        assert not new.delta_info.fallback
        assert new.delta_info.seeds == ["c"]
        assert "c" not in new.fibs
        assert set(new.fibs) == {"a", "b"}

    def test_device_addition(self):
        base = Session.from_texts(THREE_ISLANDS)
        base.fibs
        extra = (
            "hostname d\n"
            "interface Ethernet0\n"
            " ip address 10.8.0.1 255.255.255.0\n"
        )
        new = base.delta({"d": extra}, validate=True)
        assert not new.delta_info.fallback
        assert new.delta_info.dirty_devices == ["d"]
        assert new.delta_info.reused_devices == 3


class TestFallback:
    PAIR = {name: THREE_ISLANDS[name] for name in ("a", "b")}

    def test_all_dirty_falls_back_to_full_recompute(self):
        base = Session.from_texts(self.PAIR)
        base.fibs
        new = base.delta({"a": self.PAIR["a"] + ROUTE_LINE})
        info = new.delta_info
        assert info.fallback
        assert "full recompute" in info.fallback_reason
        # Fallback results ARE full recomputes: no validation needed,
        # and the lazy pipeline must still produce the edited route.
        assert not info.validated
        assert any(
            "203.0.113.0/24" in line for line in fib_lines(new.fibs)["a"]
        )

    def test_base_without_configs_is_rejected(self):
        from repro.config.loader import load_snapshot_from_texts

        session = Session(load_snapshot_from_texts(self.PAIR))
        with pytest.raises(ValueError, match="from_texts"):
            session.delta({"a": self.PAIR["a"] + INERT_LINE})

    def test_non_string_text_is_rejected(self):
        base = Session.from_texts(self.PAIR)
        with pytest.raises(TypeError, match="str or None"):
            base.delta({"a": 42})

    def test_deleting_every_file_is_rejected(self):
        base = Session.from_texts(self.PAIR)
        with pytest.raises(ValueError, match="every config"):
            base.delta({"a": None, "b": None})


class TestValidator:
    def test_validator_catches_corrupted_splice(self):
        base = Session.from_texts(THREE_ISLANDS)
        base.fibs
        new = base.delta({"c": THREE_ISLANDS["c"] + INERT_LINE})
        assert not new.delta_info.fallback
        # Sabotage the spliced FIBs; the differential check must fail
        # and localize the divergence to the mangled host.
        del new._fibs["c"]
        with pytest.raises(DeltaValidationError, match="c"):
            _validate(base, new)


class TestPropertyRandomEdits:
    """Property-style check: ANY single-device edit, inert or not,
    yields FIBs byte-identical to a from-scratch recompute."""

    CONFIGS = net1(2)
    EDITS = (
        INERT_LINE,
        "snmp-server community public RO\n",
        ROUTE_LINE,
        "ip route 203.0.113.64 255.255.255.192 Null0\n",
    )

    @settings(max_examples=20, deadline=None)
    @given(
        target=st.sampled_from(sorted(CONFIGS)),
        edit=st.sampled_from(EDITS),
    )
    def test_single_device_edit_matches_full_recompute(self, target, edit):
        base = Session.from_texts(self.CONFIGS)
        edited = {**self.CONFIGS, target: self.CONFIGS[target] + edit}
        new = base.delta({target: self.CONFIGS[target] + edit})
        assert fib_lines(new.fibs) == full_fib_lines(edited)
