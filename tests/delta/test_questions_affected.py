"""Coverage-guided question prioritization on deltas: after a one-line
routing edit, ``questions_affected`` is a strict subset of everything
that ran, skipped questions provably answer byte-identically, and the
records chain across two deltas (the invalidation regression)."""

import json

import pytest

from repro import obs
from repro.core.cache import SnapshotCache
from repro.service.serialize import QUESTIONS, run_question
from repro.service.store import SnapshotStore
from repro.synth.special import net1

ROUTE_LINE = "ip route 203.0.113.0 255.255.255.0 Null0\n"

#: A probe through net1-core0's SPUR_FILTER (deny tcp any any eq 23).
TELNET = {
    "src_ip": "10.99.0.1", "dst_ip": "10.99.0.2",
    "ip_protocol": "tcp", "src_port": 1024, "dst_port": 23,
}

#: Every registered question this battery can run without a second
#: snapshot (route_diff needs a reference snapshot).
BATTERY = [
    ("routes", {}),
    ("reachability", {}),
    ("traceroute", {
        "packet": TELNET, "node": "net1-core0", "interface": "Ethernet0",
    }),
    ("test_filter", {
        "node": "net1-core0", "filter": "SPUR_FILTER", "packet": TELNET,
    }),
    ("explain_route", {"node": "net1-core1", "prefix": "192.0.2.0/30"}),
    ("undefined_references", {}),
    ("unused_structures", {}),
    ("duplicate_ips", {}),
    ("lint", {}),
    ("parse_warnings", {}),
]

#: Wall-clock fields that legitimately differ between two identical
#: executions (the lint dataflow block carries fixpoint timing and the
#: cold/warm-start flag); everything else must match byte for byte.
VOLATILE = {"rule_seconds", "total_seconds", "dataflow"}


def canonical(answer):
    """Byte-stable JSON form of an answer (timing fields stripped)."""
    if isinstance(answer, dict):
        answer = {
            key: value for key, value in answer.items()
            if key not in VOLATILE
        }
    return json.dumps(answer, sort_keys=True)


@pytest.fixture(autouse=True)
def obs_clean():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def run_battery(store, name):
    return {
        question: canonical(run_question(store, name, question, dict(params)))
        for question, params in BATTERY
    }


class TestQuestionsAffected:
    def test_routing_edit_affects_strict_subset(self, tmp_path):
        """The acceptance path: run every runnable registered question,
        make a one-line routing edit, and check the delta names a
        strict subset as affected — with the skipped ones provably
        answering byte-identically on the new snapshot."""
        obs.enable_metrics()
        store = SnapshotStore(SnapshotCache(str(tmp_path)))
        configs = net1(3)
        store.init("lab", configs)
        before = run_battery(store, "lab")

        store.patch("lab", {"net1-core2": configs["net1-core2"] + ROUTE_LINE})
        info = store.get("lab").delta_info
        assert info is not None
        # NET1 is one OSPF domain, so a routing edit dirties the whole
        # ring and the engine takes its perf fallback — the dirty set is
        # still exact, so config-scoped skipping must still happen.
        assert set(info.dirty_devices) == set(configs)

        affected = {entry["question"] for entry in info.questions_affected}
        skipped = {entry["question"] for entry in info.questions_skipped}
        ran = {question for question, _ in BATTERY}
        # Strict subset of the registered questions, nothing invented,
        # nothing lost, no overlap.
        assert affected and affected < set(QUESTIONS)
        assert skipped and affected | skipped == ran
        assert not affected & skipped
        # Config-scoped questions pinned to untouched net1-core0 must
        # be skipped; the edit is a routing change, so routing-scoped
        # ones must rerun.
        assert {"test_filter", "lint"} <= skipped
        assert {"routes", "reachability"} <= affected
        # Ranking: every affected entry carries a positive overlap,
        # sorted best-first.
        overlaps = [entry["overlap"] for entry in info.questions_affected]
        assert all(value >= 1 for value in overlaps)
        assert overlaps == sorted(overlaps, reverse=True)

        # Differential validation: skipping was sound.
        after = run_battery(store, "lab")
        for question in skipped:
            assert after[question] == before[question], question

    def test_skipped_records_chain_across_two_deltas(self, tmp_path):
        """Regression for the stale-aggregate bug: records carried
        forward for skipped questions must survive a second delta
        without the question ever re-running, and the tracker must hold
        no touches for invalidated hosts."""
        obs.enable_metrics()
        store = SnapshotStore(SnapshotCache(str(tmp_path)))
        configs = net1(3)
        store.init("lab", configs)
        run_battery(store, "lab")

        store.patch("lab", {"net1-core2": configs["net1-core2"] + ROUTE_LINE})
        first = store.get("lab").delta_info
        first_skipped = {e["question"] for e in first.questions_skipped}
        assert "test_filter" in first_skipped

        # Second delta WITHOUT re-running anything in between: the
        # carried-forward records are the only knowledge source.
        store.patch("lab", {
            "net1-core2": configs["net1-core2"] + ROUTE_LINE + ROUTE_LINE
        })
        second = store.get("lab").delta_info
        second_skipped = {e["question"] for e in second.questions_skipped}
        assert "test_filter" in second_skipped
        assert "lint" in second_skipped

        # Invalidation left no attributed touches on the edited host,
        # and the aggregates agree with the surviving vectors.
        tracker = obs.coverage()
        assert all(
            key[1] != "net1-core2" for key in tracker.touched_keys()
        )
        dump = tracker.dump()
        recomputed = {}
        for label, vector in dump["vectors"].items():
            for rendered, count in vector.items():
                kind = rendered.split(":", 1)[0]
                per_kind = recomputed.setdefault(label, {})
                per_kind[kind] = per_kind.get(kind, 0) + count
        assert dump["by_query"] == recomputed

    def test_new_device_marks_everything_affected(self, tmp_path):
        """A changed device *set* is unbounded: even an isolated new
        host grows global answers (routes rows, reachability sources),
        so no question may be skipped."""
        obs.enable_metrics()
        store = SnapshotStore(SnapshotCache(str(tmp_path)))
        store.init("lab", net1(3))
        run_battery(store, "lab")
        store.patch("lab", {"newdev": "hostname newdev\n"})
        info = store.get("lab").delta_info
        assert not info.questions_skipped
        assert {e["question"] for e in info.questions_affected} == {
            question for question, _ in BATTERY
        }
