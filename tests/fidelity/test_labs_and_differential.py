"""Tests for the fidelity frameworks: ground-truth labs (§4.3.1) and
differential engine testing (§4.3.2)."""

import pytest

from repro.config.loader import load_snapshot_from_texts
from repro.fidelity.differential import (
    run_differential_suite,
    validate_concrete_against_symbolic,
    validate_symbolic_against_concrete,
)
from repro.fidelity.labs import (
    ExpectedTrace,
    Lab,
    LabRepository,
    RuntimeState,
    collect_runtime_state,
)
from repro.fidelity.reference_labs import (
    OSPF_LAB_CONFIGS,
    build_reference_repository,
)
from repro.reachability.queries import NetworkAnalyzer
from repro.routing.engine import compute_dataplane
from repro.synth.fattree import fattree
from repro.synth.special import net1


class TestReferenceLabs:
    def test_all_reference_labs_pass(self):
        """The daily validation job: every lab's model state must match
        its recorded ground truth."""
        repository = build_reference_repository()
        report = repository.run()
        assert report.labs_run == 4
        assert report.checks > 0
        assert report.passed, [f.detail for f in report.failures]

    def test_single_lab_selection(self):
        repository = build_reference_repository()
        report = repository.run("ospf-basic")
        assert report.labs_run == 1
        assert report.passed

    def test_duplicate_lab_rejected(self):
        repository = build_reference_repository()
        with pytest.raises(ValueError):
            repository.register(repository.labs()[0])

    def test_route_regression_detected(self):
        """Tamper with the recorded state: the framework must flag it."""
        repository = LabRepository()
        broken = RuntimeState(
            routes={"r1": ["connected 10.0.0.0/30 via e0"]}  # incomplete
        )
        repository.register(
            Lab(
                name="broken",
                description="deliberately wrong golden state",
                configs=OSPF_LAB_CONFIGS,
                expected=broken,
            )
        )
        report = repository.run()
        assert not report.passed
        assert report.failures[0].kind == "routes"
        assert "missing" in report.failures[0].detail

    def test_trace_regression_detected(self):
        from repro.hdr.ip import Ip
        from repro.hdr.packet import Packet
        from repro.reachability.graph import Disposition

        repository = LabRepository()
        wrong_trace = RuntimeState(
            routes={},
            traces=[
                ExpectedTrace(
                    packet=Packet(
                        src_ip=Ip("172.16.1.10"), dst_ip=Ip("172.16.2.10"),
                    ),
                    start_node="r1",
                    start_interface="lan",
                    disposition=Disposition.DENIED_IN,  # wrong on purpose
                )
            ],
        )
        repository.register(
            Lab(
                name="wrong-trace",
                description="deliberately wrong trace golden",
                configs=OSPF_LAB_CONFIGS,
                expected=wrong_trace,
            )
        )
        report = repository.run()
        assert not report.passed
        assert report.failures[0].kind == "trace"

    def test_collect_runtime_state_shape(self):
        state = collect_runtime_state(OSPF_LAB_CONFIGS)
        assert set(state.routes) == {"r1", "r2"}
        assert all(routes for routes in state.routes.values())


class TestDifferentialTesting:
    @pytest.fixture(scope="class")
    def analyzer(self):
        dataplane = compute_dataplane(load_snapshot_from_texts(net1(3)))
        return NetworkAnalyzer(dataplane)

    def test_symbolic_verified_by_concrete(self, analyzer):
        report = validate_symbolic_against_concrete(analyzer)
        assert report.checks > 0
        assert report.passed, [m.describe() for m in report.mismatches]

    def test_concrete_verified_by_symbolic(self, analyzer):
        report = validate_concrete_against_symbolic(analyzer)
        assert report.checks > 0
        assert report.passed, [m.describe() for m in report.mismatches]

    def test_full_suite_on_bgp_network(self):
        """Cross-validation over a BGP fat-tree (multipath + ACLs)."""
        dataplane = compute_dataplane(
            load_snapshot_from_texts(fattree(4, with_acls=True))
        )
        analyzer = NetworkAnalyzer(dataplane)
        report = run_differential_suite(analyzer)
        assert report.checks > 100
        assert report.passed, [m.describe() for m in report.mismatches[:5]]

    def test_injected_bug_is_caught(self):
        """Sabotage the symbolic graph: the cross-validation must notice
        (this is the §4.3.2 value proposition)."""
        from repro.bdd.engine import FALSE
        from repro.reachability.graph import Constraint

        dataplane = compute_dataplane(load_snapshot_from_texts(net1(3)))
        analyzer = NetworkAnalyzer(dataplane)
        # Corrupt one forwarding edge: claim some prefix is unreachable.
        engine = analyzer.encoder.engine
        sabotaged = 0
        for edge in analyzer.graph.edges:
            if isinstance(edge.fn, Constraint) and edge.tail[0] == "egress":
                edge.fn.label = engine.and_(
                    edge.fn.label,
                    engine.not_(
                        analyzer.encoder.ip_in_prefix("dst_ip", "172.19.0.0/24")
                    ),
                )
                sabotaged += 1
        assert sabotaged
        report = validate_concrete_against_symbolic(analyzer)
        assert not report.passed
