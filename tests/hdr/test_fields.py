"""Tests for the BDD variable layout."""

import pytest

from repro.hdr import fields as f
from repro.hdr.fields import DEFAULT_LAYOUT, HeaderLayout


class TestLayout:
    def test_paper_field_order(self):
        # §4.2.2: dst IP first, then src IP, ports, ICMP, protocol, ...
        layout = HeaderLayout()
        order = [layout.var(name, 0) for name in f.HEADER_FIELDS]
        assert order == sorted(order)
        assert layout.var(f.DST_IP, 0) == 0

    def test_msb_first_within_field(self):
        layout = HeaderLayout()
        vars_ = layout.vars_of(f.IP_PROTOCOL)
        assert list(vars_) == sorted(vars_)
        assert len(vars_) == 8

    def test_paired_fields_interleaved(self):
        # "we interleave the variables for input-output packet pairs"
        layout = HeaderLayout()
        for field in f.PAIRED_FIELDS:
            for bit in range(layout.width(field)):
                assert layout.out_var(field, bit) == layout.var(field, bit) + 1

    def test_unpaired_field_has_no_out_vars(self):
        layout = HeaderLayout()
        with pytest.raises(ValueError):
            layout.out_var(f.IP_PROTOCOL, 0)

    def test_var_count_independent_of_network(self):
        # §4.2.2: the number of variables is primarily the header bits;
        # network-dependent extras are just a handful of zone/waypoint bits.
        base = HeaderLayout(num_zone_bits=0, num_waypoint_bits=0)
        assert base.num_vars == base.header_vars
        # Header = paired fields twice + singles.
        paired_bits = sum(
            w for name, w in ((n, base.width(n)) for n in f.PAIRED_FIELDS)
        )
        expected = base.header_vars
        assert expected == 2 * paired_bits + (
            sum(base.width(n) for n in f.HEADER_FIELDS) - paired_bits
        )
        extended = HeaderLayout(num_zone_bits=4, num_waypoint_bits=8)
        assert extended.num_vars == base.num_vars + 2 * 4 + 8

    def test_extension_fields_after_header(self):
        layout = HeaderLayout()
        assert layout.var(f.ZONE_IN, 0) >= layout.header_vars
        assert layout.var(f.WAYPOINT, 0) > layout.var(f.ZONE_OUT, 0)

    def test_rename_out_to_in_is_order_preserving(self):
        layout = HeaderLayout()
        mapping = layout.rename_out_to_in([f.DST_IP, f.SRC_IP])
        items = sorted(mapping.items())
        targets = [t for _, t in items]
        assert targets == sorted(targets)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_LAYOUT.var("no_such_field", 0)

    def test_bit_out_of_range(self):
        with pytest.raises(ValueError):
            DEFAULT_LAYOUT.var(f.DSCP, 6)

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            HeaderLayout(num_zone_bits=-1)

    def test_fields_listing(self):
        layout = HeaderLayout()
        listed = layout.fields()
        assert set(f.HEADER_FIELDS) <= set(listed)
        assert f.ZONE_IN in listed and f.WAYPOINT in listed
