"""Tests for the packet-set BDD encoding, including property-based
agreement between symbolic (BDD) and concrete (Packet) semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd.engine import FALSE, TRUE
from repro.hdr import fields as f
from repro.hdr.headerspace import HeaderSpace, PacketEncoder
from repro.hdr.ip import Ip, Prefix
from repro.hdr.packet import Packet


@pytest.fixture(scope="module")
def enc():
    return PacketEncoder()


class TestFieldConstraints:
    def test_field_eq_membership(self, enc):
        node = enc.field_eq(f.DST_PORT, 443)
        assert enc.engine.eval(node, _packet_assignment(enc, Packet(dst_port=443)))
        assert not enc.engine.eval(node, _packet_assignment(enc, Packet(dst_port=80)))

    def test_field_eq_out_of_range(self, enc):
        with pytest.raises(ValueError):
            enc.field_eq(f.DST_PORT, 1 << 16)

    def test_range_empty(self, enc):
        assert enc.field_in_range(f.DST_PORT, 10, 5) == FALSE

    def test_range_full(self, enc):
        assert enc.field_in_range(f.DST_PORT, 0, 65535) == TRUE

    def test_range_bad_bounds(self, enc):
        with pytest.raises(ValueError):
            enc.field_in_range(f.DST_PORT, 0, 1 << 16)

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=200)
    def test_range_matches_concrete(self, low, high, probe):
        enc = PacketEncoder()
        node = enc.field_in_range(f.ICMP_CODE, low, high)
        pkt = Packet(ip_protocol=f.PROTO_ICMP, icmp_code=probe)
        expected = low <= probe <= high
        assert enc.engine.eval(node, _packet_assignment(enc, pkt)) == expected

    def test_prefix_constraint(self, enc):
        node = enc.ip_in_prefix(f.DST_IP, "10.0.3.0/24")
        inside = Packet(dst_ip=Ip("10.0.3.77"))
        outside = Packet(dst_ip=Ip("10.0.4.1"))
        assert enc.engine.eval(node, _packet_assignment(enc, inside))
        assert not enc.engine.eval(node, _packet_assignment(enc, outside))

    def test_zero_prefix_is_true(self, enc):
        assert enc.ip_in_prefix(f.SRC_IP, "0.0.0.0/0") == TRUE

    def test_prefix_bdd_size_is_prefix_length(self, enc):
        # Compact encoding: /24 constraint tests exactly 24 bits.
        node = enc.ip_in_prefix(f.DST_IP, "10.0.3.0/24")
        assert enc.engine.size(node) == 24

    def test_protocol_helpers(self, enc):
        pkt_tcp = _packet_assignment(enc, Packet(ip_protocol=f.PROTO_TCP))
        assert enc.engine.eval(enc.tcp(), pkt_tcp)
        assert not enc.engine.eval(enc.udp(), pkt_tcp)
        assert not enc.engine.eval(enc.icmp(), pkt_tcp)

    def test_tcp_flag(self, enc):
        syn_only = Packet(tcp_flags=0b00000010)  # SYN bit per layout order
        assignment = _packet_assignment(enc, syn_only)
        assert enc.engine.eval(enc.tcp_flag(f.TCP_SYN), assignment)
        assert not enc.engine.eval(enc.tcp_flag(f.TCP_ACK), assignment)

    def test_port_ranges_union(self, enc):
        node = enc.port_ranges(f.DST_PORT, [(80, 80), (443, 443)])
        assert enc.engine.eval(node, _packet_assignment(enc, Packet(dst_port=443)))
        assert not enc.engine.eval(node, _packet_assignment(enc, Packet(dst_port=22)))


class TestPacketConversion:
    def test_packet_bdd_is_singleton_over_header(self, enc):
        pkt = Packet(dst_ip=Ip("1.2.3.4"), src_ip=Ip("4.3.2.1"), dst_port=80)
        node = enc.packet_bdd(pkt)
        recovered = enc.packet_from_model(enc.engine.any_sat(node))
        assert recovered == pkt

    def test_packet_from_empty_model(self, enc):
        assert enc.packet_from_model(None) is None

    def test_example_packet_respects_preferences(self, enc):
        space = enc.ip_in_prefix(f.DST_IP, "10.0.0.0/8")
        prefer_http = enc.engine.and_(enc.tcp(), enc.field_eq(f.DST_PORT, 80))
        pkt = enc.example_packet(space, [prefer_http])
        assert pkt.ip_protocol == f.PROTO_TCP
        assert pkt.dst_port == 80
        assert Prefix("10.0.0.0/8").contains_ip(pkt.dst_ip)

    def test_example_packet_of_empty_set(self, enc):
        assert enc.example_packet(FALSE) is None

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    @settings(max_examples=50)
    def test_roundtrip_property(self, ip_value):
        enc = PacketEncoder()
        pkt = Packet(dst_ip=Ip(ip_value), src_ip=Ip(ip_value ^ 0xFFFFFFFF))
        assert enc.packet_from_model(enc.engine.any_sat(enc.packet_bdd(pkt))) == pkt


class TestTransformVariables:
    def test_identity_relation(self, enc):
        engine = enc.engine
        identity = enc.identity(f.DST_IP)
        # (in=10.0.0.1) AND identity => out=10.0.0.1.
        set_in = enc.ip_eq(f.DST_IP, "10.0.0.1")
        joint = engine.and_(set_in, identity)
        out_right = enc.out_ip_eq(f.DST_IP, "10.0.0.1")
        out_wrong = enc.out_ip_eq(f.DST_IP, "10.0.0.2")
        assert engine.and_(joint, out_right) != FALSE
        assert engine.and_(joint, out_wrong) == FALSE

    def test_transform_rewrites_dst(self, enc):
        engine = enc.engine
        # NAT: dst 1.1.1.1 -> 10.0.0.5
        relation = engine.and_(
            enc.ip_eq(f.DST_IP, "1.1.1.1"), enc.out_ip_eq(f.DST_IP, "10.0.0.5")
        )
        cube = enc.input_cube([f.DST_IP])
        rename = enc.rename_out_to_in([f.DST_IP])
        before = engine.and_(
            enc.ip_eq(f.DST_IP, "1.1.1.1"), enc.ip_eq(f.SRC_IP, "2.2.2.2")
        )
        after = engine.transform(before, relation, cube, rename)
        expected = engine.and_(
            enc.ip_eq(f.DST_IP, "10.0.0.5"), enc.ip_eq(f.SRC_IP, "2.2.2.2")
        )
        assert after == expected

    def test_transform_to_pool(self, enc):
        engine = enc.engine
        relation = engine.and_(
            enc.ip_in_prefix(f.SRC_IP, "192.168.0.0/16"),
            enc.out_in_prefix(f.SRC_IP, "100.64.0.0/24"),
        )
        cube = enc.input_cube([f.SRC_IP])
        rename = enc.rename_out_to_in([f.SRC_IP])
        before = enc.ip_eq(f.SRC_IP, "192.168.1.1")
        after = engine.transform(before, relation, cube, rename)
        assert after == enc.ip_in_prefix(f.SRC_IP, "100.64.0.0/24")

    def test_erase_field(self, enc):
        node = enc.engine.and_(
            enc.ip_eq(f.DST_IP, "1.1.1.1"), enc.field_eq(f.DST_PORT, 80)
        )
        erased = enc.erase(node, [f.DST_PORT])
        assert erased == enc.ip_eq(f.DST_IP, "1.1.1.1")


class TestHeaderSpace:
    def test_build_accepts_scalars(self):
        space = HeaderSpace.build(dst="10.0.0.0/8", protocols=[f.PROTO_TCP])
        assert space.dst_prefixes == (Prefix("10.0.0.0/8"),)

    def test_contains_concrete(self):
        space = HeaderSpace.build(
            dst="10.0.0.0/8",
            not_dst="10.9.0.0/16",
            dst_ports=[(80, 90)],
            protocols=[f.PROTO_TCP],
        )
        assert space.contains(Packet(dst_ip=Ip("10.1.2.3"), dst_port=85))
        assert not space.contains(Packet(dst_ip=Ip("10.9.2.3"), dst_port=85))
        assert not space.contains(Packet(dst_ip=Ip("10.1.2.3"), dst_port=99))
        assert not space.contains(
            Packet(dst_ip=Ip("10.1.2.3"), dst_port=85, ip_protocol=f.PROTO_UDP)
        )

    def test_empty_space_is_true_bdd(self):
        enc = PacketEncoder()
        assert HeaderSpace().to_bdd(enc) == TRUE

    @given(
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=32),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=65535),
    )
    @settings(max_examples=100)
    def test_bdd_and_concrete_agree(self, net, plen, probe_ip, probe_port):
        enc = PacketEncoder()
        space = HeaderSpace.build(
            dst=Prefix(net, plen), dst_ports=[(100, 2000)], protocols=[f.PROTO_UDP]
        )
        node = space.to_bdd(enc)
        pkt = Packet(
            dst_ip=Ip(probe_ip), dst_port=probe_port, ip_protocol=f.PROTO_UDP
        )
        assert enc.engine.eval(node, _packet_assignment(enc, pkt)) == space.contains(
            pkt
        )

    def test_tcp_flag_constraints(self):
        enc = PacketEncoder()
        space = HeaderSpace.build(
            protocols=[f.PROTO_TCP],
            tcp_flags_set=[f.TCP_SYN],
            tcp_flags_unset=[f.TCP_ACK],
        )
        syn = Packet(tcp_flags=0b00000010)
        syn_ack = Packet(tcp_flags=0b00010010)
        assert space.contains(syn)
        assert not space.contains(syn_ack)
        node = space.to_bdd(enc)
        assert enc.engine.eval(node, _packet_assignment(enc, syn))
        assert not enc.engine.eval(node, _packet_assignment(enc, syn_ack))


def _packet_assignment(enc, packet):
    """Full variable assignment for a concrete packet."""
    assignment = {}
    for field in f.HEADER_FIELDS:
        value = packet.field_value(field)
        width = enc.layout.width(field)
        for bit in range(width):
            assignment[enc.layout.var(field, bit)] = (value >> (width - 1 - bit)) & 1
    return assignment
