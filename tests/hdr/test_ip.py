"""Tests for IPv4 address and prefix primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hdr.ip import MAX_IP, Ip, Prefix, ip_range_to_prefixes


class TestIp:
    def test_parse_and_str_roundtrip(self):
        assert str(Ip("10.0.3.1")) == "10.0.3.1"
        assert Ip("0.0.0.0").value == 0
        assert Ip("255.255.255.255").value == MAX_IP

    def test_int_construction(self):
        assert Ip(0x0A000301) == Ip("10.0.3.1")

    def test_copy_construction(self):
        a = Ip("1.2.3.4")
        assert Ip(a) == a

    def test_invalid_strings(self):
        for bad in ["", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1.2.3.-4"]:
            with pytest.raises(ValueError):
                Ip(bad)

    def test_out_of_range_int(self):
        with pytest.raises(ValueError):
            Ip(-1)
        with pytest.raises(ValueError):
            Ip(MAX_IP + 1)

    def test_bad_type(self):
        with pytest.raises(TypeError):
            Ip(1.5)

    def test_ordering(self):
        assert Ip("1.0.0.0") < Ip("2.0.0.0")
        assert Ip("10.0.0.1") <= Ip("10.0.0.1")
        assert max(Ip("9.9.9.9"), Ip("10.0.0.0")) == Ip("10.0.0.0")

    def test_bits_msb_first(self):
        ip = Ip("128.0.0.1")
        assert ip.bit(0) == 1
        assert ip.bit(31) == 1
        assert all(ip.bit(i) == 0 for i in range(1, 31))

    def test_bit_out_of_range(self):
        with pytest.raises(ValueError):
            Ip("1.1.1.1").bit(32)

    def test_plus(self):
        assert Ip("10.0.0.255").plus(1) == Ip("10.0.1.0")

    def test_hashable(self):
        assert len({Ip("1.1.1.1"), Ip("1.1.1.1"), Ip("1.1.1.2")}) == 2

    @given(st.integers(min_value=0, max_value=MAX_IP))
    def test_str_parse_roundtrip_property(self, value):
        assert Ip(str(Ip(value))).value == value


class TestPrefix:
    def test_parse(self):
        p = Prefix("10.0.3.0/24")
        assert p.length == 24
        assert str(p) == "10.0.3.0/24"

    def test_canonicalization(self):
        assert Prefix("10.0.3.77/24") == Prefix("10.0.3.0/24")

    def test_components(self):
        p = Prefix("192.168.4.0/22")
        assert p.network == Ip("192.168.4.0")
        assert p.mask == Ip("255.255.252.0")
        assert p.first_ip == Ip("192.168.4.0")
        assert p.last_ip == Ip("192.168.7.255")
        assert p.num_ips == 1024

    def test_zero_prefix(self):
        p = Prefix("0.0.0.0/0")
        assert p.contains_ip("1.2.3.4")
        assert p.last_ip == Ip(MAX_IP)
        assert p.num_ips == 1 << 32

    def test_host_prefix(self):
        p = Prefix("1.2.3.4/32")
        assert p.contains_ip("1.2.3.4")
        assert not p.contains_ip("1.2.3.5")
        assert p.num_ips == 1

    def test_missing_length(self):
        with pytest.raises(ValueError):
            Prefix("10.0.0.0")

    def test_bad_length(self):
        with pytest.raises(ValueError):
            Prefix("10.0.0.0/33")

    def test_contains_prefix(self):
        outer = Prefix("10.0.0.0/8")
        assert outer.contains_prefix(Prefix("10.5.0.0/16"))
        assert outer.contains_prefix(outer)
        assert not Prefix("10.5.0.0/16").contains_prefix(outer)
        assert not outer.contains_prefix(Prefix("11.0.0.0/8"))

    def test_overlaps(self):
        assert Prefix("10.0.0.0/8").overlaps(Prefix("10.1.0.0/16"))
        assert Prefix("10.1.0.0/16").overlaps(Prefix("10.0.0.0/8"))
        assert not Prefix("10.0.0.0/16").overlaps(Prefix("10.1.0.0/16"))

    def test_subnets(self):
        low, high = Prefix("10.0.0.0/8").subnets()
        assert low == Prefix("10.0.0.0/9")
        assert high == Prefix("10.128.0.0/9")

    def test_subnet_of_host_route_fails(self):
        with pytest.raises(ValueError):
            Prefix("1.1.1.1/32").subnets()

    def test_host_ips_excludes_network_and_broadcast(self):
        hosts = list(Prefix("10.0.0.0/30").host_ips())
        assert hosts == [Ip("10.0.0.1"), Ip("10.0.0.2")]

    def test_host_ips_p2p_includes_all(self):
        hosts = list(Prefix("10.0.0.0/31").host_ips())
        assert hosts == [Ip("10.0.0.0"), Ip("10.0.0.1")]

    def test_host_ips_limit(self):
        assert len(list(Prefix("10.0.0.0/24").host_ips(limit=5))) == 5

    def test_ordering_deterministic(self):
        prefixes = [Prefix("10.0.0.0/8"), Prefix("10.0.0.0/16"), Prefix("9.0.0.0/8")]
        assert sorted(prefixes)[0] == Prefix("9.0.0.0/8")

    @given(
        st.integers(min_value=0, max_value=MAX_IP),
        st.integers(min_value=0, max_value=32),
    )
    def test_contains_own_ips_property(self, value, length):
        p = Prefix(value, length)
        assert p.contains_ip(p.first_ip)
        assert p.contains_ip(p.last_ip)
        assert p.contains_ip(Ip(value))


class TestRangeToPrefixes:
    def test_single_ip(self):
        assert list(ip_range_to_prefixes(Ip("1.1.1.1"), Ip("1.1.1.1"))) == [
            Prefix("1.1.1.1/32")
        ]

    def test_aligned_block(self):
        assert list(ip_range_to_prefixes(Ip("10.0.0.0"), Ip("10.0.0.255"))) == [
            Prefix("10.0.0.0/24")
        ]

    def test_unaligned_range(self):
        prefixes = list(ip_range_to_prefixes(Ip("10.0.0.1"), Ip("10.0.0.6")))
        covered = []
        for p in prefixes:
            covered.extend(range(p.first_ip.value, p.last_ip.value + 1))
        assert covered == list(range(Ip("10.0.0.1").value, Ip("10.0.0.6").value + 1))

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            list(ip_range_to_prefixes(Ip("2.0.0.0"), Ip("1.0.0.0")))

    def test_full_space(self):
        assert list(ip_range_to_prefixes(Ip(0), Ip(MAX_IP))) == [Prefix("0.0.0.0/0")]

    @given(
        st.integers(min_value=0, max_value=MAX_IP),
        st.integers(min_value=0, max_value=1000),
    )
    def test_cover_exact_property(self, start, span):
        end = min(start + span, MAX_IP)
        prefixes = list(ip_range_to_prefixes(Ip(start), Ip(end)))
        # Exactly covers [start, end], in order, with no overlap.
        position = start
        for p in prefixes:
            assert p.first_ip.value == position
            position = p.last_ip.value + 1
        assert position == end + 1
