"""Tests for concrete packets."""

import pytest

from repro.hdr import fields as f
from repro.hdr.ip import Ip
from repro.hdr.packet import Packet, packet_from_field_values


class TestPacket:
    def test_defaults(self):
        pkt = Packet()
        assert pkt.ip_protocol == f.PROTO_TCP
        assert pkt.dst_ip == Ip(0)

    def test_field_value(self):
        pkt = Packet(dst_ip=Ip("1.2.3.4"), dst_port=80)
        assert pkt.field_value(f.DST_IP) == Ip("1.2.3.4").value
        assert pkt.field_value(f.DST_PORT) == 80

    def test_validation(self):
        with pytest.raises(ValueError):
            Packet(dst_port=1 << 16)
        with pytest.raises(ValueError):
            Packet(dscp=64)

    def test_with_fields(self):
        pkt = Packet(dst_port=80)
        changed = pkt.with_fields(dst_port=443)
        assert changed.dst_port == 443
        assert pkt.dst_port == 80  # immutable original

    def test_reversed_swaps_endpoints(self):
        pkt = Packet(
            dst_ip=Ip("1.1.1.1"), src_ip=Ip("2.2.2.2"), dst_port=80, src_port=1234
        )
        rev = pkt.reversed()
        assert rev.dst_ip == Ip("2.2.2.2")
        assert rev.src_ip == Ip("1.1.1.1")
        assert rev.dst_port == 1234
        assert rev.src_port == 80
        assert rev.reversed() == pkt

    def test_tcp_flag_accessor(self):
        syn_ack = Packet(tcp_flags=0b00010010)
        assert syn_ack.tcp_flag(f.TCP_SYN)
        assert syn_ack.tcp_flag(f.TCP_ACK)
        assert not syn_ack.tcp_flag(f.TCP_FIN)

    def test_describe_tcp(self):
        pkt = Packet(
            dst_ip=Ip("10.0.0.1"), src_ip=Ip("10.0.0.2"), dst_port=80, src_port=555
        )
        assert pkt.describe() == "tcp 10.0.0.2:555 -> 10.0.0.1:80"

    def test_describe_icmp(self):
        pkt = Packet(ip_protocol=f.PROTO_ICMP, icmp_type=8)
        assert "icmp" in pkt.describe() and "type 8" in pkt.describe()

    def test_describe_other_protocol(self):
        pkt = Packet(ip_protocol=f.PROTO_OSPF)
        assert pkt.describe().startswith("ospf")

    def test_hashable_and_equal(self):
        assert Packet(dst_port=80) == Packet(dst_port=80)
        assert len({Packet(dst_port=80), Packet(dst_port=80)}) == 1


class TestPacketFromFieldValues:
    def test_builds_with_defaults(self):
        pkt = packet_from_field_values({f.DST_IP: Ip("9.9.9.9").value})
        assert pkt.dst_ip == Ip("9.9.9.9")
        assert pkt.ip_protocol == f.PROTO_TCP  # default preserved

    def test_ignores_internal_fields(self):
        pkt = packet_from_field_values({f.WAYPOINT: 3, f.ZONE_IN: 1, f.DST_PORT: 22})
        assert pkt.dst_port == 22
