"""End-to-end integration over the Table 1 network registry: every
network must parse cleanly, converge deterministically, answer the
standard questions, and (for a representative subset) pass the §4.3.2
differential cross-validation of the two forwarding engines."""

import pytest

from repro import Session
from repro.synth.networks import NETWORKS, network_by_name

_ALL = [spec.name for spec in NETWORKS]
_DIFFERENTIAL = ["NET1", "NET2", "NET5", "NET8"]


@pytest.fixture(scope="module")
def sessions():
    cache = {}

    def get(name):
        if name not in cache:
            cache[name] = Session.from_texts(network_by_name(name).generate(1))
        return cache[name]

    return get


@pytest.mark.parametrize("name", _ALL)
def test_parses_without_warnings(sessions, name):
    session = sessions(name)
    assert session.parse_warnings == [], [
        (w.text, w.comment) for w in session.parse_warnings[:3]
    ]


@pytest.mark.parametrize("name", _ALL)
def test_converges_deterministically(sessions, name):
    session = sessions(name)
    session.assert_converged()
    # Re-run from scratch: identical route tables (§4.1.2 determinism).
    fresh = Session.from_texts(network_by_name(name).generate(1))
    original_routes = sorted((r.node, r.description) for r in session.routes())
    fresh_routes = sorted((r.node, r.description) for r in fresh.routes())
    assert original_routes == fresh_routes


@pytest.mark.parametrize("name", _ALL)
def test_configuration_hygiene(sessions, name):
    session = sessions(name)
    assert session.undefined_references().rows == []
    assert session.duplicate_ips().rows == []


@pytest.mark.parametrize("name", _ALL)
def test_bgp_sessions_all_compatible(sessions, name):
    session = sessions(name)
    _sessions, issues = session.bgp_session_compatibility()
    assert issues == []


@pytest.mark.parametrize("name", _ALL)
def test_scoped_reachability_succeeds_somewhere(sessions, name):
    session = sessions(name)
    answer = session.reachability()
    assert answer.success_set() != 0


@pytest.mark.parametrize("name", _DIFFERENTIAL)
def test_differential_engines_agree(sessions, name):
    session = sessions(name)
    report = session.validate_engines()
    assert report.checks > 0
    assert report.passed, [m.describe() for m in report.mismatches[:5]]
