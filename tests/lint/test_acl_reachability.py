"""ACL line-reachability rules, verified differentially.

The lab ACL is purpose-built: one fully-shadowed line, one
partially-shadowed line, plus healthy lines. The rule output is checked
line-by-line against an independent brute-force computation (per-line
BDD subtraction of the union of all earlier lines), and the witnesses
are checked semantically: the union of the blamed lines must actually
cover the shadowed space.
"""

import pytest

from repro.bdd.engine import FALSE
from repro.config.loader import load_snapshot_from_texts
from repro.dataplane.acl import line_space
from repro.hdr.headerspace import PacketEncoder
from repro.lint import get_rule
from repro.synth.networks import network_by_name

LAB = {
    "lab": """
hostname lab
interface Ethernet0
 ip address 10.0.0.1 255.255.255.0
 ip access-group LAB in
ip access-list extended LAB
 permit tcp 10.1.0.0 0.0.255.255 any eq 80
 deny tcp 10.1.2.0 0.0.0.255 any eq 80
 permit udp 10.2.0.0 0.0.255.255 any
 deny ip 10.2.3.0 0.0.0.255 any
 permit icmp any any
""",
}


@pytest.fixture(scope="module")
def lab_snapshot():
    return load_snapshot_from_texts(LAB)


def brute_force_line_status(snapshot):
    """Independent per-line reachability: effective space is the line's
    space minus the union (or_all) of ALL earlier lines — no sequential
    residual bookkeeping shared with the rule implementation."""
    encoder = PacketEncoder()
    engine = encoder.engine
    unreachable, partial = set(), set()
    for hostname in snapshot.hostnames():
        device = snapshot.device(hostname)
        for acl_name, acl in sorted(device.acls.items()):
            spaces = [line_space(line, encoder) for line in acl.lines]
            for index, space in enumerate(spaces):
                union_earlier = engine.or_all(spaces[:index])
                effective = engine.diff(space, union_earlier)
                if effective == FALSE:
                    unreachable.add((hostname, acl_name, index))
                elif effective != space:
                    partial.add((hostname, acl_name, index))
    return unreachable, partial


def findings_as_line_keys(snapshot, rule_id):
    """Map rule findings back to (hostname, acl, line_index) through
    their source locations."""
    by_location = {}
    for hostname in snapshot.hostnames():
        device = snapshot.device(hostname)
        for acl_name, acl in device.acls.items():
            for index, line in enumerate(acl.lines):
                key = (hostname, line.source_file, line.source_line)
                by_location[key] = (hostname, acl_name, index)
    keys = set()
    for finding in get_rule(rule_id).run(snapshot):
        key = (finding.hostname, finding.location.file, finding.location.line)
        assert key in by_location, f"finding at unknown location {key}"
        keys.add(by_location[key])
    return keys


class TestLab:
    def test_fully_shadowed_line_reported(self, lab_snapshot):
        keys = findings_as_line_keys(lab_snapshot, "acl-line-unreachable")
        assert ("lab", "LAB", 1) in keys
        # Healthy lines are not flagged.
        assert ("lab", "LAB", 0) not in keys
        assert ("lab", "LAB", 2) not in keys

    def test_partially_shadowed_line_reported(self, lab_snapshot):
        keys = findings_as_line_keys(lab_snapshot, "acl-line-partially-shadowed")
        assert ("lab", "LAB", 3) in keys
        assert ("lab", "LAB", 0) not in keys

    def test_unreachable_witness_names_shadowing_line(self, lab_snapshot):
        findings = get_rule("acl-line-unreachable").run(lab_snapshot)
        device = lab_snapshot.device("lab")
        acl = device.acls["LAB"]
        target = [
            f
            for f in findings
            if f.location.line == acl.lines[1].source_line
        ]
        assert len(target) == 1
        witness_lines = {rel.location.line for rel in target[0].related}
        assert witness_lines == {acl.lines[0].source_line}

    def test_partial_witness_names_overlapping_line(self, lab_snapshot):
        findings = get_rule("acl-line-partially-shadowed").run(lab_snapshot)
        device = lab_snapshot.device("lab")
        acl = device.acls["LAB"]
        target = [
            f
            for f in findings
            if f.location.line == acl.lines[3].source_line
        ]
        assert len(target) == 1
        witness_lines = {rel.location.line for rel in target[0].related}
        assert acl.lines[2].source_line in witness_lines

    def test_witnesses_cover_shadowed_space(self, lab_snapshot):
        """Semantic witness check: the union of blamed lines really does
        absorb everything the flagged line lost."""
        encoder = PacketEncoder()
        engine = encoder.engine
        device = lab_snapshot.device("lab")
        acl = device.acls["LAB"]
        spaces = [line_space(line, encoder) for line in acl.lines]
        line_by_source = {
            line.source_line: index for index, line in enumerate(acl.lines)
        }
        for finding in get_rule("acl-line-unreachable").run(lab_snapshot):
            index = line_by_source[finding.location.line]
            if spaces[index] == FALSE:
                continue
            witness_union = engine.or_all(
                [
                    spaces[line_by_source[rel.location.line]]
                    for rel in finding.related
                ]
            )
            assert engine.diff(spaces[index], witness_union) == FALSE


class TestDifferential:
    @pytest.mark.parametrize("source", ["lab", "NET3", "NET8"])
    def test_rule_matches_brute_force(self, source, lab_snapshot):
        if source == "lab":
            snapshot = lab_snapshot
        else:
            snapshot = load_snapshot_from_texts(
                network_by_name(source).generate(1)
            )
        expected_unreachable, expected_partial = brute_force_line_status(
            snapshot
        )
        assert (
            findings_as_line_keys(snapshot, "acl-line-unreachable")
            == expected_unreachable
        )
        assert (
            findings_as_line_keys(snapshot, "acl-line-partially-shadowed")
            == expected_partial
        )
