"""Cross-device rules: BGP session compatibility, OSPF adjacency, MTU."""

import pytest

from repro.config.loader import load_snapshot_from_texts
from repro.lint import get_rule

# r1--r2 on 10.0.12.0/24. Deliberate faults:
#  * r1's AS-65003 neighbor 10.0.12.9 points nowhere (unknown peer)
#  * r1 sets ebgp-multihop toward r2; r2 does not (one-sided)
#  * r1 pins update-source Loopback0 (1.1.1.1) but r2 peers with
#    10.0.12.1 (inconsistent update-source)
#  * OSPF hello-interval 5 on r1's link vs default 10 on r2's
#  * mtu 9000 on r1's link vs default 1500 on r2's
BROKEN_PAIR = {
    "r1": """
hostname r1
interface Loopback0
 ip address 1.1.1.1 255.255.255.255
interface Ethernet0
 ip address 10.0.12.1 255.255.255.0
 ip ospf area 0
 ip ospf hello-interval 5
 mtu 9000
router ospf 1
router bgp 65001
 neighbor 10.0.12.2 remote-as 65002
 neighbor 10.0.12.2 ebgp-multihop
 neighbor 10.0.12.2 update-source Loopback0
 neighbor 10.0.12.9 remote-as 65003
""",
    "r2": """
hostname r2
interface Ethernet0
 ip address 10.0.12.2 255.255.255.0
 ip ospf area 0
router ospf 1
router bgp 65002
 neighbor 10.0.12.1 remote-as 65001
""",
}


@pytest.fixture(scope="module")
def snapshot():
    return load_snapshot_from_texts(BROKEN_PAIR)


class TestBgpSessionCompat:
    @pytest.fixture(scope="class")
    def findings(self, snapshot):
        return get_rule("bgp-session-compat").run(snapshot)

    def test_unknown_peer_reported(self, findings):
        assert any(
            "10.0.12.9" in f.message and "not present" in f.message
            for f in findings
        )

    def test_one_sided_ebgp_multihop(self, findings):
        assert any(
            "ebgp-multihop is set on r1 but not on r2" in f.message
            for f in findings
        )

    def test_update_source_inconsistency(self, findings):
        target = [f for f in findings if "update-source" in f.message]
        assert len(target) == 1
        assert "Loopback0" in target[0].message
        assert "1.1.1.1" in target[0].message
        # Witness: the remote neighbor statement.
        assert target[0].related

    def test_finding_locations_resolve(self, findings):
        for finding in findings:
            assert finding.location.file == "r1"
            assert finding.location.line > 0


class TestOspfAdjacency:
    def test_hello_mismatch(self, snapshot):
        findings = get_rule("ospf-adjacency-mismatch").run(snapshot)
        assert any(
            "hello-interval 5 vs 10" in f.message for f in findings
        )
        # dead-interval follows hello at 4x on r1 (20) vs default 40.
        assert any(
            "dead-interval 20 vs 40" in f.message for f in findings
        )

    def test_area_mismatch(self):
        configs = {
            name: text.replace("ip ospf hello-interval 5\n mtu 9000\n", "")
            for name, text in BROKEN_PAIR.items()
        }
        configs["r2"] = configs["r2"].replace(
            "ip ospf area 0", "ip ospf area 7"
        )
        findings = get_rule("ospf-adjacency-mismatch").run(
            load_snapshot_from_texts(configs)
        )
        assert any("area 0 vs 7" in f.message for f in findings)

    def test_one_sided_ospf(self):
        configs = dict(BROKEN_PAIR)
        configs["r2"] = configs["r2"].replace(" ip ospf area 0\n", "")
        findings = get_rule("ospf-adjacency-mismatch").run(
            load_snapshot_from_texts(configs)
        )
        assert any(
            "not on the adjacent" in f.message and "r2" in f.message
            for f in findings
        )

    def test_matched_pair_is_clean(self):
        configs = {
            "a": BROKEN_PAIR["r2"].replace("r2", "a").replace(
                "10.0.12.2", "10.0.12.7"
            ),
            "b": BROKEN_PAIR["r2"].replace("r2", "b").replace(
                "10.0.12.2", "10.0.12.8"
            ),
        }
        snapshot = load_snapshot_from_texts(configs)
        assert get_rule("ospf-adjacency-mismatch").run(snapshot) == []
        assert get_rule("mtu-mismatch").run(snapshot) == []


class TestMtuMismatch:
    def test_mismatch_reported_once_per_link(self, snapshot):
        findings = get_rule("mtu-mismatch").run(snapshot)
        assert len(findings) == 1
        assert "9000 vs 1500" in findings[0].message
        assert findings[0].related
