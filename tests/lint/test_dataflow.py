"""Seeded networks for the five dataflow rules: each network plants one
defect, and the test asserts the rule fires on the right device, blames
the right file:line, and carries the right witnesses."""

import pytest

from repro.config.loader import load_snapshot_from_texts
from repro.lint import LintConfig, Severity, lint_snapshot
from repro.lint.dataflow import analyze, validate_containment


def line_of(text, marker):
    """1-based line number of the first config line containing marker."""
    for number, line in enumerate(text.splitlines(), start=1):
        if marker in line:
            return number
    raise AssertionError(f"marker {marker!r} not found")


def run_rules(configs, rules):
    snapshot = load_snapshot_from_texts(configs)
    report = lint_snapshot(snapshot, LintConfig.from_dict({"rules": rules}))
    return snapshot, report


LEAK = {
    "r1": """
hostname r1
interface Ethernet0
 ip address 10.0.12.1 255.255.255.0
 no shutdown
ip route 10.9.0.0 255.255.0.0 Null0
router bgp 65001
 redistribute static
 neighbor 10.0.12.2 remote-as 65002
""",
    "r2": """
hostname r2
interface Ethernet0
 ip address 10.0.12.2 255.255.255.0
 no shutdown
router bgp 65002
 neighbor 10.0.12.1 remote-as 65001
""",
}


class TestRouteLeak:
    def test_redistributed_private_route_leaks(self):
        snapshot, report = run_rules(LEAK, ["route-leak"])
        leaks = [f for f in report.findings if f.hostname == "r1"]
        assert leaks, "r1 redistributes 10.9/16 into an eBGP session"
        finding = leaks[0]
        assert finding.severity is Severity.ERROR
        assert finding.category == "dataflow"
        # Blame: no export policy, so the neighbor statement itself.
        assert finding.location.file == "r1"
        assert finding.location.line == line_of(
            LEAK["r1"], "neighbor 10.0.12.2"
        )
        assert "eBGP peer r2" in finding.message
        assert "10.9.0.0/16" in finding.message, "witness route expected"
        # Related: where the route entered BGP, and who receives it.
        related_lines = {(r.location.file, r.location.line) for r in finding.related}
        assert ("r1", line_of(LEAK["r1"], "redistribute static")) in related_lines
        assert ("r2", line_of(LEAK["r2"], "neighbor 10.0.12.1")) in related_lines

    def test_no_leak_without_redistribution(self):
        configs = {
            "r1": LEAK["r1"].replace(" redistribute static\n", ""),
            "r2": LEAK["r2"],
        }
        _, report = run_rules(configs, ["route-leak"])
        assert not report.findings

    def test_no_export_community_advertised(self):
        configs = {
            "r1": """
hostname r1
interface Ethernet0
 ip address 10.0.12.1 255.255.255.0
 no shutdown
ip prefix-list NETS seq 5 permit 10.1.0.0/24
route-map TO_PEER permit 10
 match ip address prefix-list NETS
 set community no-export
router bgp 65001
 network 10.1.0.0 mask 255.255.255.0
 neighbor 10.0.12.2 remote-as 65002
 neighbor 10.0.12.2 route-map TO_PEER out
""",
            "r2": LEAK["r2"],
        }
        _, report = run_rules(configs, ["route-leak"])
        tagged = [
            f for f in report.findings if "no-export community" in f.message
        ]
        assert tagged and tagged[0].hostname == "r1"
        # With an export map defined, the map is the blamed location.
        assert tagged[0].location.line == line_of(
            configs["r1"], "route-map TO_PEER permit 10"
        )
        assert "10.1.0.0/24" in tagged[0].message


LOOP = {
    "r1": """
hostname r1
interface Ethernet0
 ip address 10.0.12.1 255.255.255.0
 no shutdown
router ospf 1
 redistribute bgp 65001
router bgp 65001
 network 10.1.0.0 mask 255.255.255.0
 redistribute ospf 1
 neighbor 10.0.12.2 remote-as 65001
""",
    "r2": """
hostname r2
interface Ethernet0
 ip address 10.0.12.2 255.255.255.0
 no shutdown
router bgp 65001
 neighbor 10.0.12.1 remote-as 65001
""",
}


class TestRedistributionLoop:
    def test_mutual_redistribution_detected(self):
        snapshot, report = run_rules(LOOP, ["redistribution-loop"])
        assert report.findings
        assert {f.hostname for f in report.findings} == {"r1"}
        lines = {f.location.line for f in report.findings}
        # Both closing statements of the 2-edge cycle are blamed.
        assert line_of(LOOP["r1"], "redistribute bgp 65001") in lines
        assert line_of(LOOP["r1"], "redistribute ospf 1") in lines
        finding = report.findings[0]
        assert finding.severity is Severity.ERROR
        assert "10.1.0.0/24" in finding.message, "BGP network circulates"
        assert finding.related, "cycle edges are cited as witnesses"
        assert any("cycle continues" in r.message for r in finding.related)

    def test_one_way_redistribution_is_clean(self):
        configs = {
            "r1": LOOP["r1"].replace(" redistribute ospf 1\n", ""),
            "r2": LOOP["r2"],
        }
        _, report = run_rules(configs, ["redistribution-loop"])
        assert not report.findings


FILTER_GAP = {
    "r1": """
hostname r1
interface Ethernet0
 ip address 10.0.12.1 255.255.255.0
 no shutdown
ip prefix-list NETS seq 5 permit 10.1.0.0/24
route-map TO_PEER permit 10
 match ip address prefix-list NETS
router bgp 65001
 network 10.1.0.0 mask 255.255.255.0
 neighbor 10.0.12.2 remote-as 65002
 neighbor 10.0.12.2 route-map TO_PEER out
""",
    "r2": """
hostname r2
interface Ethernet0
 ip address 10.0.12.2 255.255.255.0
 no shutdown
router bgp 65002
 network 10.2.0.0 mask 255.255.255.0
 neighbor 10.0.12.1 remote-as 65001
""",
}


class TestFilterGap:
    def test_unfiltered_direction_flagged(self):
        # r1 -> r2 is filtered by TO_PEER; r2 -> r1 has no policy at
        # all, so only r2 is flagged.
        _, report = run_rules(FILTER_GAP, ["filter-gap"])
        assert {f.hostname for f in report.findings} == {"r2"}
        finding = report.findings[0]
        assert finding.severity is Severity.WARNING
        assert "peers: r1" in finding.message
        assert finding.location.line == line_of(
            FILTER_GAP["r2"], "neighbor 10.0.12.1"
        )

    def test_both_directions_unfiltered(self):
        configs = {
            "r1": FILTER_GAP["r1"].replace(
                " neighbor 10.0.12.2 route-map TO_PEER out\n", ""
            ),
            "r2": FILTER_GAP["r2"],
        }
        _, report = run_rules(configs, ["filter-gap"])
        assert {f.hostname for f in report.findings} == {"r1", "r2"}


COMMUNITY = {
    "r1": """
hostname r1
interface Ethernet0
 ip address 10.0.12.1 255.255.255.0
 no shutdown
route-map TO_PEER permit 10
 set community 65000:99
router bgp 65001
 network 10.1.0.0 mask 255.255.255.0
 neighbor 10.0.12.2 remote-as 65002
 neighbor 10.0.12.2 route-map TO_PEER out
 neighbor 10.0.12.2 send-community
""",
    "r2": """
hostname r2
interface Ethernet0
 ip address 10.0.12.2 255.255.255.0
 no shutdown
ip community-list standard CL permit 65000:1
route-map FROM_PEER permit 10
 match community CL
router bgp 65002
 neighbor 10.0.12.1 remote-as 65001
 neighbor 10.0.12.1 route-map FROM_PEER in
""",
}


class TestCommunityDataflow:
    def test_set_never_matched_and_match_never_carried(self):
        _, report = run_rules(COMMUNITY, ["community-dataflow"])
        dead_set = [f for f in report.findings if f.hostname == "r1"]
        assert dead_set, "65000:99 is set but nothing downstream matches it"
        assert "sets community 65000:99" in dead_set[0].message
        assert dead_set[0].location.line == line_of(
            COMMUNITY["r1"], "route-map TO_PEER permit 10"
        )
        dead_match = [f for f in report.findings if f.hostname == "r2"]
        assert dead_match, "CL wants 65000:1 but no arriving route has it"
        assert "community-list CL" in dead_match[0].message
        assert "never fire" in dead_match[0].message

    def test_consumed_community_is_clean(self):
        # Align the sender's community with the receiver's list: both
        # halves of the plumbing now work, no findings anywhere.
        configs = {
            "r1": COMMUNITY["r1"].replace("65000:99", "65000:1"),
            "r2": COMMUNITY["r2"],
        }
        _, report = run_rules(configs, ["community-dataflow"])
        assert not report.findings


UNREACHABLE = {
    "r1": """
hostname r1
interface Ethernet0
 ip address 10.0.12.1 255.255.255.0
 no shutdown
router bgp 65001
 network 10.1.0.0 mask 255.255.255.0
 neighbor 10.0.12.2 remote-as 65002
""",
    "r2": """
hostname r2
interface Ethernet0
 ip address 10.0.12.2 255.255.255.0
 no shutdown
ip prefix-list TEN seq 5 permit 10.0.0.0/8 le 32
ip prefix-list RFC1918 seq 5 permit 192.168.0.0/16 le 32
route-map FROM_PEER permit 10
 match ip address prefix-list TEN
route-map FROM_PEER permit 20
 match ip address prefix-list RFC1918
router bgp 65002
 neighbor 10.0.12.1 remote-as 65001
 neighbor 10.0.12.1 route-map FROM_PEER in
""",
}


class TestUnreachablePolicyPath:
    def test_dataflow_dead_clause_flagged(self):
        # Clause 20 matches 192.168/16, but r1 only ever sends 10/8
        # space: satisfiable in principle, dead in this network.
        _, report = run_rules(UNREACHABLE, ["unreachable-policy-path"])
        assert {f.hostname for f in report.findings} == {"r2"}
        finding = report.findings[0]
        assert "clause 20" in finding.message
        assert finding.location.line == line_of(
            UNREACHABLE["r2"], "route-map FROM_PEER permit 20"
        )
        assert "dead in this network" in finding.message

    def test_reachable_clauses_are_clean(self):
        configs = {
            "r1": UNREACHABLE["r1"].replace(
                " network 10.1.0.0 mask 255.255.255.0",
                " network 10.1.0.0 mask 255.255.255.0\n"
                " network 192.168.5.0 mask 255.255.255.0",
            ),
            "r2": UNREACHABLE["r2"],
        }
        _, report = run_rules(configs, ["unreachable-policy-path"])
        assert not report.findings


class TestSoundness:
    """The differential from the acceptance criteria, on the seeded
    networks: every concretely propagated prefix must be contained in
    the abstract fixpoint."""

    @pytest.mark.parametrize(
        "configs", [LEAK, LOOP, FILTER_GAP, COMMUNITY, UNREACHABLE],
        ids=["leak", "loop", "filter-gap", "community", "unreachable"],
    )
    def test_containment(self, configs):
        snapshot = load_snapshot_from_texts(configs)
        analysis = analyze(snapshot)
        assert validate_containment(snapshot, analysis) == []

    def test_report_carries_dataflow_stats(self):
        snapshot = load_snapshot_from_texts(LEAK)
        report = lint_snapshot(
            snapshot, LintConfig.from_dict({"rules": ["route-leak"]})
        )
        stats = report.dataflow
        assert stats is not None
        assert stats["nodes"] > 0 and stats["edges"] > 0
        assert stats["iterations"] >= stats["nodes"]
        assert stats["warm_start"] is False
        assert report.to_json()["dataflow"] == stats
