"""Warm-started dataflow fixpoints must be indistinguishable from cold
ones. The property test drives random single-device edits through the
delta path and compares canonical fixpoint states against a full
recomputation; the unit tests pin the warm/fallback decision logic."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config.loader import load_snapshot_from_texts
from repro.core.cache import SnapshotCache
from repro.lint.dataflow import analyze

#: A three-AS chain (r1 -- r2 -- r3) with redistribution at one end and
#: a route-map in the middle, so edits interact with every edge kind.
BASE = {
    "r1": """
hostname r1
interface Ethernet0
 ip address 10.0.12.1 255.255.255.0
 no shutdown
ip route 10.9.1.0 255.255.255.0 Null0
router bgp 65001
 redistribute static
 network 10.1.0.0 mask 255.255.255.0
 neighbor 10.0.12.2 remote-as 65002
""",
    "r2": """
hostname r2
interface Ethernet0
 ip address 10.0.12.2 255.255.255.0
 no shutdown
interface Ethernet1
 ip address 10.0.23.2 255.255.255.0
 no shutdown
ip prefix-list TEN seq 5 permit 10.0.0.0/8 le 32
route-map TO_R3 permit 10
 match ip address prefix-list TEN
router bgp 65002
 network 10.2.0.0 mask 255.255.255.0
 neighbor 10.0.12.1 remote-as 65001
 neighbor 10.0.23.3 remote-as 65003
 neighbor 10.0.23.3 route-map TO_R3 out
""",
    "r3": """
hostname r3
interface Ethernet0
 ip address 10.0.23.3 255.255.255.0
 no shutdown
router bgp 65003
 network 10.3.0.0 mask 255.255.255.0
 neighbor 10.0.23.2 remote-as 65002
""",
}

#: Single-line edits that keep the device set fixed. Some change
#: routing (new seeds, new redistribution), some are no-ops for the
#: graph, and some change the community alphabet — which must force the
#: full-fixpoint fallback rather than produce a stale universe.
EDITS = [
    "ip route 10.{a}.{b}.0 255.255.255.0 Null0\n",
    "ip route 172.16.{b}.0 255.255.255.0 Null0\n",
    "ip prefix-list EXTRA{a} seq 5 permit 10.{a}.0.0/16\n",
    "ip community-list standard NEW{a} permit 65000:{b}\n",
    "! lint-disable route-leak\n",
]


def warm_vs_cold(tmp_path, host, edit):
    cache = SnapshotCache(str(tmp_path))
    base_snapshot = load_snapshot_from_texts(BASE)
    analyze(base_snapshot, cache=cache, snapshot_key="base")

    edited = dict(BASE)
    edited[host] = edited[host] + edit
    new_snapshot = load_snapshot_from_texts(edited)
    warm = analyze(
        new_snapshot,
        cache=cache,
        snapshot_key="edited",
        delta={
            "base_key": "base",
            "dirty_devices": [host],
            "fallback": False,
        },
    )
    cold = analyze(new_snapshot)
    return warm, cold


class TestWarmStartEquivalence:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        host=st.sampled_from(sorted(BASE)),
        edit=st.sampled_from(EDITS),
        a=st.integers(min_value=0, max_value=255),
        b=st.integers(min_value=1, max_value=254),
    )
    def test_single_device_edit_never_diverges(
        self, tmp_path, host, edit, a, b
    ):
        warm, cold = warm_vs_cold(
            tmp_path, host, edit.format(a=a, b=b)
        )
        assert warm.canonical_states() == cold.canonical_states()
        # Edge outputs feed the rules directly; they must agree too.
        assert len(warm.edge_outputs) == len(cold.edge_outputs)
        for ours, theirs in zip(warm.edge_outputs, cold.edge_outputs):
            assert warm.universe.engine.canonical(
                ours.bdd
            ) == cold.universe.engine.canonical(theirs.bdd)
            assert ours.tags == theirs.tags


class TestWarmStartDecision:
    def test_routing_edit_warm_starts(self, tmp_path):
        warm, _ = warm_vs_cold(
            tmp_path, "r1", "ip route 10.77.0.0 255.255.0.0 Null0\n"
        )
        assert warm.warm_start is True

    def test_community_alphabet_change_falls_back(self, tmp_path):
        # A new community changes the BDD variable order, so the cached
        # universe is unusable: the engine must recompute from scratch.
        warm, _ = warm_vs_cold(
            tmp_path, "r2", "ip community-list standard X permit 65000:9\n"
        )
        assert warm.warm_start is False

    def test_delta_fallback_flag_respected(self, tmp_path):
        cache = SnapshotCache(str(tmp_path))
        snapshot = load_snapshot_from_texts(BASE)
        analyze(snapshot, cache=cache, snapshot_key="base")
        result = analyze(
            snapshot,
            cache=cache,
            snapshot_key="again",
            delta={
                "base_key": "base",
                "dirty_devices": ["r1"],
                "fallback": True,
            },
        )
        assert result.warm_start is False

    def test_device_set_change_falls_back(self, tmp_path):
        cache = SnapshotCache(str(tmp_path))
        analyze(
            load_snapshot_from_texts(BASE), cache=cache, snapshot_key="base"
        )
        grown = dict(BASE)
        grown["r4"] = "hostname r4\n"
        result = analyze(
            load_snapshot_from_texts(grown),
            cache=cache,
            snapshot_key="grown",
            delta={
                "base_key": "base",
                "dirty_devices": ["r4"],
                "fallback": False,
            },
        )
        assert result.warm_start is False

    def test_cache_miss_falls_back(self, tmp_path):
        cache = SnapshotCache(str(tmp_path))
        result = analyze(
            load_snapshot_from_texts(BASE),
            cache=cache,
            snapshot_key="fresh",
            delta={
                "base_key": "never-stored",
                "dirty_devices": ["r1"],
                "fallback": False,
            },
        )
        assert result.warm_start is False

    def test_clean_devices_keep_cached_values(self, tmp_path):
        # An edit on r3 (a sink) must not reset r1's state: the warm
        # run re-iterates only the dirty subgraph.
        warm, cold = warm_vs_cold(
            tmp_path, "r3", "ip route 10.88.0.0 255.255.0.0 Null0\n"
        )
        assert warm.warm_start is True
        assert warm.iterations < cold.iterations
