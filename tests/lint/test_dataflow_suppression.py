"""Suppression interplay for dataflow rules: in-source lint-disable,
lintconfig suppress entries, and rule disable must all compose with the
cross-device findings — and SARIF must record each suppression with the
right ``kind``."""

from repro.config.loader import load_snapshot_from_texts
from repro.lint import LintConfig, all_rules, lint_snapshot
from repro.lint.sarif import result_keys, to_sarif

#: r1 redistributes private space into an eBGP session (route-leak on
#: r1), and r2 re-advertises what it learned (route-leak echo on r2) —
#: two findings on two devices from one defect, which is exactly the
#: case device-scoped suppression must distinguish.
LEAKY = {
    "r1": """
hostname r1
interface Ethernet0
 ip address 10.0.12.1 255.255.255.0
 no shutdown
ip route 10.9.0.0 255.255.0.0 Null0
router bgp 65001
 redistribute static
 neighbor 10.0.12.2 remote-as 65002
""",
    "r2": """
hostname r2
interface Ethernet0
 ip address 10.0.12.2 255.255.255.0
 no shutdown
router bgp 65002
 neighbor 10.0.12.1 remote-as 65001
""",
}


def leak_report(configs, lintconfig=None):
    snapshot = load_snapshot_from_texts(configs)
    raw = dict(lintconfig or {})
    raw.setdefault("rules", ["route-leak"])
    return lint_snapshot(snapshot, LintConfig.from_dict(raw))


def sarif_for(report):
    return to_sarif(report.findings, all_rules())


class TestInSourceSuppression:
    def test_lint_disable_is_device_scoped(self):
        configs = {
            "r1": LEAKY["r1"].replace(
                "router bgp 65001",
                "! lint-disable route-leak\nrouter bgp 65001",
            ),
            "r2": LEAKY["r2"],
        }
        report = leak_report(configs)
        by_host = {}
        for finding in report.findings:
            by_host.setdefault(finding.hostname, []).append(finding)
        assert by_host["r1"] and all(f.suppressed for f in by_host["r1"])
        assert by_host["r1"][0].suppression.startswith("lint-disable at r1:")
        # The echo on r2 is a different device: not suppressed.
        assert by_host["r2"] and not any(f.suppressed for f in by_host["r2"])
        # Suppressed findings don't gate CI...
        assert report.exit_code("error") == 1  # r2 still fails the run
        only_r2 = [f for f in report.active()]
        assert {f.hostname for f in only_r2} == {"r2"}

    def test_sarif_kind_in_source(self):
        configs = {
            "r1": LEAKY["r1"].replace(
                "router bgp 65001",
                "! lint-disable route-leak\nrouter bgp 65001",
            ),
            "r2": LEAKY["r2"],
        }
        report = leak_report(configs)
        log = sarif_for(report)
        results = log["runs"][0]["results"]
        suppressed = [r for r in results if r.get("suppressions")]
        live = [r for r in results if not r.get("suppressions")]
        assert suppressed and live
        entry = suppressed[0]["suppressions"][0]
        assert entry["kind"] == "inSource"
        assert entry["justification"].startswith("lint-disable at r1:")
        # Baseline comparison treats suppressed results as resolved.
        keys = result_keys(log)
        assert keys == {
            (r["ruleId"],
             r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"],
             r["locations"][0]["physicalLocation"]["region"]["startLine"],
             r["message"]["text"])
            for r in live
        }
        assert all(uri == "r2" for _, uri, _, _ in keys)


class TestLintconfigSuppression:
    def test_suppress_entry_marks_external(self):
        report = leak_report(
            LEAKY,
            {"suppress": [{"rule": "route-leak", "node": "r1"}]},
        )
        r1 = [f for f in report.findings if f.hostname == "r1"]
        r2 = [f for f in report.findings if f.hostname == "r2"]
        assert r1 and all(f.suppressed for f in r1)
        assert r1[0].suppression == "lintconfig suppression"
        assert r2 and not any(f.suppressed for f in r2)
        log = sarif_for(report)
        kinds = {
            r["suppressions"][0]["kind"]
            for r in log["runs"][0]["results"]
            if r.get("suppressions")
        }
        assert kinds == {"external"}

    def test_wildcard_node_suppresses_both_devices(self):
        report = leak_report(LEAKY, {"suppress": ["route-leak"]})
        assert report.findings and all(f.suppressed for f in report.findings)
        assert report.exit_code("error") == 0
        assert result_keys(sarif_for(report)) == set()

    def test_in_source_wins_over_lintconfig(self):
        # Both mechanisms apply to r1; the in-source one is reported
        # (it is the more local, reviewable statement of intent).
        configs = {
            "r1": LEAKY["r1"].replace(
                "router bgp 65001",
                "! lint-disable route-leak\nrouter bgp 65001",
            ),
            "r2": LEAKY["r2"],
        }
        report = leak_report(
            configs, {"suppress": [{"rule": "route-leak", "node": "r1"}]}
        )
        r1 = [f for f in report.findings if f.hostname == "r1"]
        assert r1[0].suppression.startswith("lint-disable")


class TestRuleDisable:
    def test_disable_removes_rule_entirely(self):
        snapshot = load_snapshot_from_texts(LEAKY)
        report = lint_snapshot(
            snapshot,
            LintConfig.from_dict({"disable": ["route-leak"]}),
        )
        assert "route-leak" not in report.rules_run
        assert not any(f.rule_id == "route-leak" for f in report.findings)
        # Disabling one dataflow rule doesn't take the others down with
        # it: the shared fixpoint still runs and filter-gap still fires
        # on this (completely unfiltered) session.
        assert "filter-gap" in report.rules_run
        assert any(f.rule_id == "filter-gap" for f in report.findings)
        assert report.dataflow is not None

    def test_disabling_all_dataflow_rules_skips_fixpoint(self):
        snapshot = load_snapshot_from_texts(LEAKY)
        dataflow_rules = [
            r.rule_id for r in all_rules() if r.scope == "dataflow"
        ]
        report = lint_snapshot(
            snapshot, LintConfig.from_dict({"disable": dataflow_rules})
        )
        assert report.dataflow is None
        assert not set(report.rules_run) & set(dataflow_rules)
