"""Differential validation of the abstract domain against the concrete
simulator: every prefix the simulated dataplane places in a RIB or
propagates across a BGP session must be contained in the corresponding
abstract fixpoint set (the soundness direction; the abstract side may
over-approximate freely)."""

from repro.config.loader import load_snapshot_from_texts
from repro.lint.dataflow import analyze, validate_containment
from repro.synth.special import net1


class TestContainment:
    def test_net1_dataplane_contained(self):
        # NET1 exercises OSPF adjacencies, statics, redistribution and
        # iBGP at once — the registry network the CI differential runs.
        snapshot = load_snapshot_from_texts(net1(3))
        analysis = analyze(snapshot)
        assert analysis.iterations > 0
        assert validate_containment(snapshot, analysis) == []

    def test_divergence_is_reported_not_swallowed(self):
        # Sabotage the fixpoint after the fact: empty every abstract
        # state and the validator must name the uncovered routes.
        snapshot = load_snapshot_from_texts(net1(3))
        analysis = analyze(snapshot)
        from repro.lint.dataflow.domain import AbstractRoutes

        analysis.states = {
            node: AbstractRoutes.bottom() for node in analysis.states
        }
        analysis.edge_outputs = [
            AbstractRoutes.bottom() for _ in analysis.edge_outputs
        ]
        divergences = validate_containment(snapshot, analysis)
        assert divergences
        assert any("outside the abstract" in line for line in divergences)
