"""Framework behavior: config, suppression, metrics, runner, sessions."""

import pytest

from repro import obs
from repro.config.loader import load_snapshot_from_texts
from repro.core.session import Session
from repro.lint import (
    LintConfig,
    Severity,
    all_rules,
    get_rule,
    lint_snapshot,
)

MESSY = {
    "r1": """
hostname r1
! lint-disable duplicate-ip
interface e0
 ip address 10.0.0.1 255.255.255.0
 ip access-group MISSING in
interface e1
 ip address 10.0.0.1 255.255.255.0
ip access-list extended DEAD
 permit ip any any
""",
    "r2": """
hostname r2
interface e0
 ip address 10.0.0.1 255.255.255.0
""",
}


@pytest.fixture(scope="module")
def snapshot():
    return load_snapshot_from_texts(MESSY)


class TestRegistry:
    def test_expected_rules_registered(self):
        rule_ids = {rule.rule_id for rule in all_rules()}
        assert rule_ids >= {
            "acl-line-unreachable",
            "acl-line-partially-shadowed",
            "route-map-clause-unreachable",
            "vacuous-match",
            "bgp-session-compat",
            "ospf-adjacency-mismatch",
            "mtu-mismatch",
            "undefined-reference",
            "unused-structure",
            "duplicate-ip",
        }

    def test_rules_sorted_and_described(self):
        rules = all_rules()
        assert [r.rule_id for r in rules] == sorted(r.rule_id for r in rules)
        for rule in rules:
            assert rule.description
            assert rule.category in {
                "semantic",
                "cross-device",
                "hygiene",
                "dataflow",
            }

    def test_get_rule(self):
        assert get_rule("duplicate-ip").severity is Severity.WARNING
        assert get_rule("nope") is None


class TestLintConfig:
    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown lintconfig keys"):
            LintConfig.from_dict({"bogus": 1})

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="unknown severity"):
            LintConfig.from_dict({"severity": {"duplicate-ip": "fatal"}})

    def test_rule_selection(self):
        config = LintConfig.from_dict(
            {"rules": ["duplicate-ip", "unused-structure"],
             "disable": ["unused-structure"]}
        )
        assert config.rule_enabled("duplicate-ip")
        assert not config.rule_enabled("unused-structure")
        assert not config.rule_enabled("mtu-mismatch")


class TestRunner:
    def test_report_shape(self, snapshot):
        report = lint_snapshot(snapshot)
        assert set(report.rule_seconds) == set(report.rules_run)
        assert report.total_seconds >= 0
        payload = report.to_json()
        assert payload["summary"]["total"] == len(report.active())
        assert set(payload["rule_seconds"]) == set(report.rules_run)

    def test_rule_filtering(self, snapshot):
        report = lint_snapshot(
            snapshot, LintConfig.from_dict({"rules": ["undefined-reference"]})
        )
        assert report.rules_run == ["undefined-reference"]
        assert all(
            f.rule_id == "undefined-reference" for f in report.findings
        )
        assert len(report.findings) == 1

    def test_severity_override(self, snapshot):
        report = lint_snapshot(
            snapshot,
            LintConfig.from_dict(
                {"rules": ["undefined-reference"],
                 "severity": {"undefined-reference": "note"}}
            ),
        )
        assert report.findings[0].severity is Severity.NOTE

    def test_parallel_matches_serial(self, snapshot):
        serial = lint_snapshot(snapshot, jobs=1)
        parallel = lint_snapshot(snapshot, jobs=4)
        assert serial.findings == parallel.findings

    def test_exit_codes(self, snapshot):
        report = lint_snapshot(snapshot)
        assert report.exit_code(None) == 0
        assert report.exit_code("never") == 0
        assert report.exit_code("error") == 1  # undefined-reference
        report = lint_snapshot(
            snapshot, LintConfig.from_dict({"rules": ["mtu-mismatch"]})
        )
        assert report.exit_code("note") == 0  # no findings at all

    def test_metrics_recorded(self, snapshot):
        metrics = obs.metrics()
        runs_before = metrics.counter("lint.runs")
        found_before = metrics.counter("lint.findings.undefined-reference")
        report = lint_snapshot(snapshot)
        assert metrics.counter("lint.runs") == runs_before + 1
        by_rule = report.counts_by_rule()
        assert (
            metrics.counter("lint.findings.undefined-reference")
            == found_before + by_rule["undefined-reference"]
        )
        histogram = metrics.histogram(
            "lint.rule_seconds.undefined-reference"
        )
        assert histogram is not None and histogram.count >= 1


class TestSuppression:
    def test_in_source_lint_disable(self, snapshot):
        # r1 carries "! lint-disable duplicate-ip": its duplicate-ip
        # findings are suppressed but still present in the report.
        report = lint_snapshot(snapshot)
        dup = [f for f in report.findings if f.rule_id == "duplicate-ip"]
        assert dup, "duplicate address 10.0.0.1 should be found"
        suppressed = [f for f in dup if f.suppressed]
        assert suppressed and all(f.hostname == "r1" for f in suppressed)
        assert "lint-disable at r1:" in suppressed[0].suppression
        # Suppressed findings don't count toward exit codes.
        only_dup = lint_snapshot(
            snapshot, LintConfig.from_dict({"rules": ["duplicate-ip"]})
        )
        active_hosts = {f.hostname for f in only_dup.active()}
        assert "r1" not in active_hosts

    def test_lintconfig_suppression(self, snapshot):
        report = lint_snapshot(
            snapshot,
            LintConfig.from_dict(
                {"rules": ["undefined-reference"],
                 "suppress": [{"rule": "undefined-reference", "node": "r1"}]}
            ),
        )
        assert report.findings and all(f.suppressed for f in report.findings)
        assert report.exit_code("error") == 0

    def test_bare_lint_disable_suppresses_all(self):
        configs = {
            "r1": MESSY["r1"].replace(
                "! lint-disable duplicate-ip", "! lint-disable"
            ),
            "r2": MESSY["r2"],
        }
        report = lint_snapshot(load_snapshot_from_texts(configs))
        assert all(
            f.suppressed for f in report.findings if f.hostname == "r1"
        )


class TestSessionSurface:
    def test_session_lint(self, snapshot):
        report = Session(snapshot).lint(
            {"rules": ["undefined-reference", "duplicate-ip"]}
        )
        assert sorted(report.rules_run) == [
            "duplicate-ip", "undefined-reference",
        ]

    def test_session_lint_rejects_bad_config(self, snapshot):
        with pytest.raises(ValueError):
            Session(snapshot).lint({"nope": True})
