"""Hygiene rules, plus regression coverage for the satellite fixes:
shutdown interfaces in duplicate-ip, and transitive unused-structure
propagation."""

import pytest

from repro.config.loader import load_snapshot_from_texts
from repro.lint import get_rule
from repro.routing.topology import duplicate_ips


class TestDuplicateIpShutdown:
    CONFIGS = {
        "r1": """
hostname r1
interface e0
 ip address 10.0.0.1 255.255.255.0
interface e1
 ip address 10.0.0.1 255.255.255.0
 shutdown
""",
        "r2": """
hostname r2
interface e0
 ip address 10.0.0.9 255.255.255.0
 shutdown
interface e1
 ip address 10.0.0.9 255.255.255.0
 shutdown
""",
    }

    @pytest.fixture(scope="class")
    def snapshot(self):
        return load_snapshot_from_texts(self.CONFIGS)

    def test_shutdown_interfaces_ignored(self, snapshot):
        # The only duplicates involve a shutdown interface (a staged
        # migration), so nothing is reported.
        assert get_rule("duplicate-ip").run(snapshot) == []
        assert duplicate_ips(snapshot) == []

    def test_include_inactive_audits_everything(self, snapshot):
        duplicated = duplicate_ips(snapshot, include_inactive=True)
        assert {str(ip) for ip, _ in duplicated} == {"10.0.0.1", "10.0.0.9"}

    def test_enabled_duplicates_still_reported(self):
        configs = {
            name: text.replace(" shutdown\n", "")
            for name, text in self.CONFIGS.items()
        }
        findings = get_rule("duplicate-ip").run(
            load_snapshot_from_texts(configs)
        )
        assert len(findings) == 2
        assert all(f.related for f in findings)


class TestTransitiveUnused:
    CONFIGS = {
        "r1": """
hostname r1
ip prefix-list LIVE_PL seq 5 permit 10.0.0.0/8
ip prefix-list DEAD_PL seq 5 permit 10.9.0.0/16
route-map LIVE permit 10
 match ip address prefix-list LIVE_PL
route-map DEAD permit 10
 match ip address prefix-list DEAD_PL
router bgp 65000
 neighbor 10.0.0.2 remote-as 65001
 neighbor 10.0.0.2 route-map LIVE in
""",
    }

    def test_structures_behind_unused_maps_are_unused(self):
        findings = get_rule("unused-structure").run(
            load_snapshot_from_texts(self.CONFIGS)
        )
        named = {f.message.split()[1] for f in findings}
        # DEAD is unreferenced; DEAD_PL is only referenced *by* DEAD, so
        # the fixpoint marks it unused as well. LIVE/LIVE_PL stay used.
        assert named == {"DEAD", "DEAD_PL"}

    def test_unused_findings_have_definition_locations(self):
        findings = get_rule("unused-structure").run(
            load_snapshot_from_texts(self.CONFIGS)
        )
        for finding in findings:
            assert finding.location.file == "r1"
            assert finding.location.line > 0
