"""Cross-vendor parity: equivalent ciscoish and juniperish configs must
produce the same lint findings (same rules, same counts).

This is the Lesson-2 discipline applied to the linter — rules operate on
the vendor-independent model, so vendor syntax must not leak into
results.
"""

import pytest

from repro.config.loader import load_snapshot_from_texts
from repro.lint import LintConfig, lint_snapshot

CISCO = {
    "c1": """
hostname c1
interface Ethernet0
 ip address 10.0.0.1 255.255.255.0
 ip access-group SHADOW in
 ip access-group PARTIAL out
interface Ethernet1
 ip address 10.0.1.1 255.255.255.0
 ip access-group MISSING in
ip access-list extended SHADOW
 permit ip any any
 deny tcp any any eq 80
ip access-list extended PARTIAL
 permit tcp any any eq 80
 deny tcp any any
ip access-list extended UNUSED
 permit ip any any
""",
}

JUNIPER = {
    "j1": """\
set system host-name j1
set interfaces ge-0/0/0 unit 0 family inet address 10.0.0.1/24
set interfaces ge-0/0/0 unit 0 family inet filter input SHADOW
set interfaces ge-0/0/0 unit 0 family inet filter output PARTIAL
set interfaces ge-0/0/1 unit 0 family inet address 10.0.1.1/24
set interfaces ge-0/0/1 unit 0 family inet filter input MISSING
set firewall filter SHADOW term all then accept
set firewall filter SHADOW term web from protocol tcp
set firewall filter SHADOW term web from destination-port 80
set firewall filter SHADOW term web then discard
set firewall filter PARTIAL term web from protocol tcp
set firewall filter PARTIAL term web from destination-port 80
set firewall filter PARTIAL term web then accept
set firewall filter PARTIAL term rest from protocol tcp
set firewall filter PARTIAL term rest then discard
set firewall filter UNUSED term all then accept
""",
}

#: Rules with identical expected behavior on the two renditions.
PARITY_RULES = [
    "acl-line-unreachable",
    "acl-line-partially-shadowed",
    "undefined-reference",
    "unused-structure",
]


def _counts(configs):
    report = lint_snapshot(
        load_snapshot_from_texts(configs),
        LintConfig.from_dict({"rules": PARITY_RULES}),
    )
    return report.counts_by_rule(), report


@pytest.fixture(scope="module")
def cisco():
    return _counts(CISCO)


@pytest.fixture(scope="module")
def juniper():
    return _counts(JUNIPER)


class TestVendorParity:
    def test_same_counts_per_rule(self, cisco, juniper):
        assert cisco[0] == juniper[0]

    def test_expected_findings_present(self, cisco):
        counts, _ = cisco
        assert counts["acl-line-unreachable"] == 1
        assert counts["acl-line-partially-shadowed"] == 1
        assert counts["undefined-reference"] == 1
        assert counts["unused-structure"] == 1

    @pytest.mark.parametrize("vendor", ["cisco", "juniper"])
    def test_all_locations_resolve(self, vendor, cisco, juniper):
        _, report = cisco if vendor == "cisco" else juniper
        for finding in report.findings:
            assert finding.location.file, finding
            assert finding.location.line > 0, finding
