"""Route-map clause reachability and vacuous-match rules."""

import pytest

from repro.config.loader import load_snapshot_from_texts
from repro.config.model import CommunityList, Device, PrefixList, Snapshot
from repro.lint import get_rule

ROUTE_MAPS = {
    "rm": """
hostname rm
interface Loopback0
 ip address 10.0.0.1 255.255.255.255
ip prefix-list WIDE seq 5 permit 10.0.0.0/8 le 32
ip prefix-list NARROW seq 5 permit 10.1.0.0/16 le 24
ip prefix-list DENYONLY seq 5 deny 10.0.0.0/8 le 32
ip prefix-list EMPTYBAND seq 5 permit 10.0.0.0/24 ge 30 le 28
route-map RM permit 10
 match ip address prefix-list WIDE
route-map RM permit 20
 match ip address prefix-list NARROW
route-map RM permit 30
route-map INEXACT deny 10
 match as-path AP1
route-map INEXACT permit 20
 match ip address prefix-list WIDE
router bgp 65000
 neighbor 10.9.9.9 remote-as 65009
 neighbor 10.9.9.9 route-map RM out
 neighbor 10.9.9.9 route-map INEXACT in
""",
}


@pytest.fixture(scope="module")
def snapshot():
    return load_snapshot_from_texts(ROUTE_MAPS)


@pytest.fixture(scope="module")
def clause_findings(snapshot):
    return get_rule("route-map-clause-unreachable").run(snapshot)


def _clauses_flagged(findings, map_name):
    flagged = set()
    for finding in findings:
        if f"route-map {map_name} clause" in finding.message:
            flagged.add(int(finding.message.split("clause ")[1].split()[0]))
    return flagged


class TestClauseReachability:
    def test_shadowed_clause_flagged(self, clause_findings):
        # NARROW (10.1.0.0/16 le 24) is a subset of WIDE (10.0.0.0/8
        # le 32): clause 20 can never fire.
        assert _clauses_flagged(clause_findings, "RM") == {20}

    def test_witness_points_at_shadowing_clause(self, clause_findings, snapshot):
        finding = next(
            f for f in clause_findings if "route-map RM clause 20" in f.message
        )
        assert len(finding.related) == 1
        clause10 = snapshot.device("rm").route_maps["RM"].clauses[0]
        assert finding.related[0].location.line == clause10.source_line

    def test_inexact_clause_not_subtracted(self, clause_findings):
        # INEXACT clause 10 matches on as-path, which the route-space
        # encoder cannot represent; its over-approximate space must NOT
        # be subtracted, so clause 20 stays (correctly) unflagged.
        assert _clauses_flagged(clause_findings, "INEXACT") == set()

    def test_clause_location_resolves(self, clause_findings):
        for finding in clause_findings:
            assert finding.location.file
            assert finding.location.line > 0


class TestVacuousMatch:
    @pytest.fixture(scope="class")
    def findings(self, snapshot):
        return get_rule("vacuous-match").run(snapshot)

    def test_deny_only_prefix_list(self, findings):
        assert any(
            "DENYONLY" in f.message and "permits nothing" in f.message
            for f in findings
        )

    def test_empty_length_band_line(self, findings):
        # ge 30 with le 28 is an empty band: the line can never match.
        assert any(
            "EMPTYBAND" in f.message and "can never match" in f.message
            for f in findings
        )

    def test_healthy_lists_not_flagged(self, findings):
        assert not any("WIDE" in f.message for f in findings)
        assert not any("NARROW" in f.message for f in findings)

    def test_empty_structures_programmatic(self):
        device = Device(hostname="bare")
        device.prefix_lists["NOLINES"] = PrefixList(name="NOLINES")
        device.community_lists["NOCOMM"] = CommunityList(name="NOCOMM")
        snapshot = Snapshot(devices={"bare": device})
        findings = get_rule("vacuous-match").run(snapshot)
        messages = [f.message for f in findings]
        assert any("NOLINES" in m and "no lines" in m for m in messages)
        assert any("NOCOMM" in m and "no communities" in m for m in messages)
