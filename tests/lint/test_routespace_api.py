"""The public RouteSpace set algebra: union/intersect/complement/
difference, the cross-universe guard, witnesses, and the documented
over-approximation contract's observable consequences."""

import pytest

from repro.config.model import Prefix
from repro.lint.routespace import RouteSpace, RouteSpaceUniverse


@pytest.fixture(scope="module")
def universe():
    return RouteSpaceUniverse(communities=["65000:1", "65000:2"])


def atom(universe, text):
    return universe.space(universe.prefix_atom(Prefix(text)))


class TestSetAlgebra:
    def test_union(self, universe):
        a = atom(universe, "10.0.0.0/8")
        b = atom(universe, "192.168.0.0/16")
        merged = a.union(b)
        assert merged.contains_prefix(Prefix("10.0.0.0/8"))
        assert merged.contains_prefix(Prefix("192.168.0.0/16"))
        assert not merged.contains_prefix(Prefix("172.16.0.0/12"))

    def test_intersect(self, universe):
        under = universe.space(universe.address_under(Prefix("10.0.0.0/8")))
        a = atom(universe, "10.1.0.0/16")
        assert not under.intersect(a).is_empty()
        outside = atom(universe, "192.168.0.0/16")
        assert under.intersect(outside).is_empty()

    def test_complement_and_difference(self, universe):
        a = atom(universe, "10.0.0.0/8")
        inverse = a.complement()
        assert a.intersect(inverse).is_empty()
        assert a.union(inverse).bdd == universe.full().bdd
        # difference(x) == intersect(complement(x)) for exact spaces.
        b = atom(universe, "192.168.0.0/16")
        both = a.union(b)
        assert both.difference(b).canonical() == a.canonical()
        assert (
            both.intersect(b.complement()).canonical() == a.canonical()
        )

    def test_involution(self, universe):
        a = atom(universe, "10.0.0.0/8")
        assert a.complement().complement().bdd == a.bdd

    def test_empty_and_full(self, universe):
        assert universe.empty().is_empty()
        assert not universe.full().is_empty()
        assert universe.full().complement().is_empty()


class TestUniverseGuard:
    def test_cross_universe_operands_rejected(self, universe):
        other = RouteSpaceUniverse(communities=["65000:1", "65000:2"])
        ours = atom(universe, "10.0.0.0/8")
        theirs = atom(other, "10.0.0.0/8")
        for operation in ("union", "intersect", "difference"):
            with pytest.raises(ValueError, match="different universes"):
                getattr(ours, operation)(theirs)

    def test_identity_not_equality(self, universe):
        # The guard is identity-based on purpose: equal fingerprints do
        # not make BDD node ids interchangeable between engines.
        clone = RouteSpaceUniverse(communities=["65000:1", "65000:2"])
        assert clone.fingerprint() == universe.fingerprint()
        with pytest.raises(ValueError):
            atom(universe, "10.0.0.0/8").union(atom(clone, "10.0.0.0/8"))


class TestWitnesses:
    def test_example_from_empty_is_none(self, universe):
        assert universe.empty().example() is None

    def test_example_reports_communities(self, universe):
        space = universe.space(
            universe.engine.and_(
                universe.prefix_atom(Prefix("10.1.0.0/16")),
                universe.community("65000:1"),
            )
        )
        prefix, communities = space.example()
        assert str(prefix) == "10.1.0.0/16"
        assert "65000:1" in communities

    def test_contains_prefix_is_exact_length(self, universe):
        a = atom(universe, "10.0.0.0/8")
        assert a.contains_prefix(Prefix("10.0.0.0/8"))
        # The atom pins the length: a more specific prefix under the
        # same address is a different route.
        assert not a.contains_prefix(Prefix("10.0.0.0/16"))


class TestOverApproximationContract:
    def test_operations_preserve_supersets(self, universe):
        """union/intersect of supersets are supersets: the algebra the
        soundness argument in the docstring leans on."""
        exact = atom(universe, "10.1.0.0/16")
        widened = exact.union(atom(universe, "10.2.0.0/16"))  # a superset
        other = universe.space(universe.address_under(Prefix("10.0.0.0/8")))
        assert widened.union(other).intersect(exact).canonical() == (
            exact.canonical()
        )
        assert not widened.intersect(other).is_empty()
        # Emptiness of an intersection of supersets soundly proves
        # concrete emptiness.
        disjoint = atom(universe, "192.168.0.0/16")
        assert widened.intersect(disjoint).is_empty()

    def test_canonical_comparable_across_engines(self, universe):
        clone = RouteSpaceUniverse(communities=["65000:1", "65000:2"])
        ours = atom(universe, "10.0.0.0/8").union(
            atom(universe, "192.168.0.0/16")
        )
        theirs = atom(clone, "192.168.0.0/16").union(
            atom(clone, "10.0.0.0/8")
        )
        assert ours.canonical() == theirs.canonical()
