"""SARIF 2.1.0 output shape, baseline diffing, and the CLI."""

import json

import pytest

from repro.config.loader import load_snapshot_from_texts
from repro.lint import (
    LintConfig,
    all_rules,
    compare_to_baseline,
    lint_snapshot,
    result_keys,
    to_sarif,
)
from repro.lint.__main__ import main as lint_main

MESSY = {
    "r1": """
hostname r1
! lint-disable unused-structure
interface e0
 ip address 10.0.0.1 255.255.255.0
 ip access-group MISSING in
ip access-list extended SHADOW
 permit ip any any
 deny tcp any any eq 80
""",
}


@pytest.fixture(scope="module")
def report():
    return lint_snapshot(load_snapshot_from_texts(MESSY))


@pytest.fixture(scope="module")
def sarif(report):
    return to_sarif(report.findings, all_rules())


class TestSarifShape:
    def test_log_envelope(self, sarif):
        assert sarif["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in sarif["$schema"]
        assert len(sarif["runs"]) == 1

    def test_rule_metadata(self, sarif):
        driver = sarif["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rules = driver["rules"]
        assert len(rules) == len(all_rules())
        for rule in rules:
            assert rule["id"]
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in (
                "error", "warning", "note",
            )
            assert rule["properties"]["category"]

    def test_results_reference_rules(self, sarif):
        driver = sarif["runs"][0]["tool"]["driver"]
        for result in sarif["runs"][0]["results"]:
            index = result["ruleIndex"]
            assert driver["rules"][index]["id"] == result["ruleId"]

    def test_result_locations(self, sarif):
        results = sarif["runs"][0]["results"]
        assert results
        unreachable = next(
            r for r in results if r["ruleId"] == "acl-line-unreachable"
        )
        physical = unreachable["locations"][0]["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == "r1"
        assert physical["region"]["startLine"] > 0
        # The shadowing witness rides along as a relatedLocation.
        assert unreachable["relatedLocations"]

    def test_suppressions(self, sarif):
        suppressed = [
            r
            for r in sarif["runs"][0]["results"]
            if r["ruleId"] == "unused-structure"
        ]
        assert suppressed
        for result in suppressed:
            assert result["suppressions"][0]["kind"] == "inSource"
            assert "lint-disable" in (
                result["suppressions"][0]["justification"]
            )


class TestBaseline:
    def test_suppressed_results_excluded_from_keys(self, sarif):
        keys = result_keys(sarif)
        assert keys
        assert not any(rule == "unused-structure" for rule, *_ in keys)

    def test_self_comparison_is_clean(self, sarif):
        assert compare_to_baseline(sarif, sarif) == ([], [])

    def test_drift_detected_both_directions(self, sarif, report):
        fewer = to_sarif(
            [f for f in report.findings if f.rule_id != "acl-line-unreachable"],
            all_rules(),
        )
        new, resolved = compare_to_baseline(sarif, fewer)
        assert new and not resolved
        new, resolved = compare_to_baseline(fewer, sarif)
        assert resolved and not new


class TestCli:
    def _write_snapshot(self, tmp_path):
        directory = tmp_path / "snap"
        directory.mkdir()
        for name, text in MESSY.items():
            (directory / f"{name}.cfg").write_text(text)
        return str(directory)

    def test_fail_on_threshold(self, tmp_path, capsys):
        snap = self._write_snapshot(tmp_path)
        assert lint_main(["--snapshot", snap, "--fail-on", "never"]) == 0
        assert lint_main(["--snapshot", snap, "--fail-on", "error"]) == 1
        assert (
            lint_main(
                ["--snapshot", snap, "--fail-on", "error",
                 "--rules", "mtu-mismatch"]
            )
            == 0
        )
        capsys.readouterr()

    def test_sarif_output_file(self, tmp_path, capsys):
        snap = self._write_snapshot(tmp_path)
        out = tmp_path / "out.sarif"
        assert (
            lint_main(
                ["--snapshot", snap, "--format", "sarif", "--out", str(out)]
            )
            == 0
        )
        log = json.loads(out.read_text())
        assert log["version"] == "2.1.0"
        capsys.readouterr()

    def test_baseline_drift_exit_code(self, tmp_path, capsys):
        snap = self._write_snapshot(tmp_path)
        baseline = tmp_path / "base.sarif"
        assert (
            lint_main(
                ["--snapshot", snap, "--format", "sarif",
                 "--out", str(baseline)]
            )
            == 0
        )
        # Unchanged configs: no drift.
        assert (
            lint_main(["--snapshot", snap, "--baseline", str(baseline)]) == 0
        )
        # A new finding appears: drift, exit 2.
        extra = tmp_path / "snap" / "r9.cfg"
        extra.write_text(
            "hostname r9\n"
            "interface e0\n"
            " ip address 10.0.0.1 255.255.255.0\n"
            " ip access-group ALSO_MISSING in\n"
        )
        assert (
            lint_main(["--snapshot", snap, "--baseline", str(baseline)]) == 2
        )
        capsys.readouterr()

    def test_missing_source_is_usage_error(self, capsys):
        assert lint_main([]) == 2
        capsys.readouterr()
