"""Tests for ``benchmarks/benchdiff.py`` (the bench-regression gate).

benchdiff deliberately avoids importing the repro package so it can run
standalone on JSON artifacts; the tests import it by path.
"""

import importlib.util
import json
import os

import pytest

_BENCHDIFF = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "benchmarks",
    "benchdiff.py",
)
_spec = importlib.util.spec_from_file_location("benchdiff", _BENCHDIFF)
benchdiff = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(benchdiff)


def payload(seconds, rss=10000, counters=None):
    entry = {"network": "NET1", "seconds": seconds, "peak_rss_kb": rss}
    result = {"networks": [entry]}
    if counters is not None:
        result["obs_metrics"] = {"counters": counters}
    return result


def write(tmp_path, name, data):
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return str(path)


class TestCompare:
    def test_identical_payloads_have_no_regressions(self):
        base = payload({"dataplane": 1.0})
        comparison = benchdiff.compare(base, json.loads(json.dumps(base)))
        assert comparison.regressions == []

    def test_slower_phase_beyond_threshold_gates(self):
        comparison = benchdiff.compare(
            payload({"dataplane": 1.0}),
            payload({"dataplane": 1.5}),
            threshold=0.25,
        )
        assert len(comparison.regressions) == 1
        assert "dataplane" in comparison.regressions[0]

    def test_growth_within_threshold_passes(self):
        comparison = benchdiff.compare(
            payload({"dataplane": 1.0}),
            payload({"dataplane": 1.1}),
            threshold=0.25,
        )
        assert comparison.regressions == []

    def test_sub_floor_baseline_is_noise_not_regression(self):
        comparison = benchdiff.compare(
            payload({"parse": 0.01}),
            payload({"parse": 0.04}),  # +300%, but baseline is sub-50ms
            threshold=0.25,
            min_seconds=0.05,
        )
        assert comparison.regressions == []
        verdicts = {row[5] for row in comparison.rows if row[1] == "seconds.parse"}
        assert verdicts == {"noise"}

    def test_rss_growth_gates_on_its_own_threshold(self):
        comparison = benchdiff.compare(
            payload({}, rss=10000),
            payload({}, rss=14000),
            rss_threshold=0.25,
        )
        assert any("peak_rss_kb" in r for r in comparison.regressions)

    def test_counters_are_informational_unless_strict(self):
        base = payload({}, counters={"bgp.routes_processed": 100})
        cur = payload({}, counters={"bgp.routes_processed": 400})
        assert benchdiff.compare(base, cur).regressions == []
        strict = benchdiff.compare(base, cur, strict_counters=True)
        assert any("bgp.routes_processed" in r for r in strict.regressions)


class TestMain:
    def test_exit_zero_when_clean(self, tmp_path, capsys):
        base = write(tmp_path, "base.json", payload({"dataplane": 1.0}))
        cur = write(tmp_path, "cur.json", payload({"dataplane": 1.0}))
        assert benchdiff.main([base, cur]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        base = write(tmp_path, "base.json", payload({"dataplane": 1.0}))
        cur = write(tmp_path, "cur.json", payload({"dataplane": 2.0}))
        assert benchdiff.main([base, cur]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "regression(s)" in captured.err

    def test_exit_two_on_unreadable_artifact(self, tmp_path, capsys):
        cur = write(tmp_path, "cur.json", payload({}))
        assert benchdiff.main([str(tmp_path / "missing.json"), cur]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_threshold_flag_is_honoured(self, tmp_path):
        base = write(tmp_path, "base.json", payload({"dataplane": 1.0}))
        cur = write(tmp_path, "cur.json", payload({"dataplane": 1.5}))
        assert benchdiff.main([base, cur, "--threshold", "0.6"]) == 0
        assert benchdiff.main([base, cur, "--threshold", "0.2"]) == 1
