"""Request-context propagation: scoping, wire transfer, and the
thread/process handoff contracts (:mod:`repro.obs.context`)."""

import threading
import time

import pytest

from repro import obs
from repro.obs import context
from repro.obs.context import RequestContext


@pytest.fixture(autouse=True)
def obs_clean():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestScoping:
    def test_no_context_by_default(self):
        assert context.current() is None
        assert context.current_request_id() is None

    def test_request_context_scopes_and_restores(self):
        with context.request_context(tenant="ci") as ctx:
            assert context.current() is ctx
            assert context.current_request_id() == ctx.request_id
            assert ctx.tenant == "ci"
        assert context.current() is None

    def test_nested_contexts_restore_outer(self):
        with context.request_context(request_id="req-outer") as outer:
            with context.request_context(request_id="req-inner"):
                assert context.current_request_id() == "req-inner"
            assert context.current() is outer

    def test_explicit_activate_deactivate(self):
        ctx = RequestContext(request_id="req-explicit")
        token = context.activate(ctx)
        try:
            assert context.current_request_id() == "req-explicit"
        finally:
            context.deactivate(token)
        assert context.current() is None

    def test_generated_request_ids_are_unique_and_prefixed(self):
        ids = {context.new_request_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(rid.startswith("req-") for rid in ids)

    def test_context_does_not_leak_across_threads(self):
        """contextvars are per-thread: a worker thread must be handed
        the context explicitly (the Job.ctx handoff), never inherit it
        ambiently."""
        seen = {}

        def worker():
            seen["ambient"] = context.current()
            token = context.activate(RequestContext(request_id="req-handed"))
            try:
                seen["activated"] = context.current_request_id()
            finally:
                context.deactivate(token)

        with context.request_context(request_id="req-parent"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["ambient"] is None
        assert seen["activated"] == "req-handed"


class TestDeadlines:
    def test_no_deadline_means_no_remaining(self):
        ctx = RequestContext(request_id="r")
        assert ctx.remaining_s() is None
        assert not ctx.expired

    def test_remaining_and_expired(self):
        ctx = RequestContext(request_id="r", deadline_ts=time.time() + 60)
        remaining = ctx.remaining_s()
        assert remaining is not None and 55 < remaining <= 60
        assert not ctx.expired
        past = RequestContext(request_id="r", deadline_ts=time.time() - 1)
        assert past.expired
        assert past.remaining_s() < 0

    def test_remaining_accepts_explicit_now(self):
        ctx = RequestContext(request_id="r", deadline_ts=100.0)
        assert ctx.remaining_s(now=90.0) == pytest.approx(10.0)


class TestWire:
    def test_roundtrip_full(self):
        ctx = RequestContext(
            request_id="req-abc", tenant="team-a", deadline_ts=123.5
        )
        assert context.from_wire(context.to_wire(ctx)) == ctx

    def test_roundtrip_minimal(self):
        ctx = RequestContext(request_id="req-min")
        wire = context.to_wire(ctx)
        assert wire == {"request_id": "req-min"}
        assert context.from_wire(wire) == ctx

    def test_none_stays_none(self):
        assert context.to_wire(None) is None
        assert context.from_wire(None) is None

    def test_malformed_wire_is_tolerated(self):
        # Version-skewed parents must not kill a worker.
        assert context.from_wire({}) is None
        assert context.from_wire({"tenant": "x"}) is None
        assert context.from_wire("req-raw") is None
        rebuilt = context.from_wire(
            {"request_id": "req-x", "unknown_key": 1, "tenant": None}
        )
        assert rebuilt == RequestContext(request_id="req-x")


class TestTelemetryAttribution:
    def test_flight_events_pick_up_ambient_request_id(self):
        with context.request_context(request_id="req-flight"):
            obs.flight.record("test", "inside")
        obs.flight.record("test", "outside")
        events = obs.flight.recent()
        inside = next(e for e in events if e["name"] == "inside")
        outside = next(e for e in events if e["name"] == "outside")
        assert inside["rid"] == "req-flight"
        assert "rid" not in outside

    def test_explicit_rid_overrides_ambient(self):
        with context.request_context(request_id="req-ambient"):
            obs.flight.record("test", "pinned", rid="req-pinned")
        event = obs.flight.recent()[-1]
        assert event["rid"] == "req-pinned"
