"""Coverage attribution correctness: per-question vectors, the
``attribution`` context (including its wire round-trip), the
invalidation aggregate-recompute fix, and exact attribution under
thread contention and across the ``pmap`` fork boundary."""

import threading

import pytest

from repro import obs
from repro.obs.context import RequestContext, attribution, current_question
from repro.obs.coverage import CoverageTracker
from repro.parallel import fork_available, pmap


@pytest.fixture(autouse=True)
def obs_clean():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestTrackerVectors:
    def test_touch_with_query_lands_in_vector(self):
        tracker = CoverageTracker()
        tracker.touch("interface", "r1", "Ethernet0", query="routes")
        tracker.touch("interface", "r1", "Ethernet0", query="routes")
        tracker.touch("acl_line", "r1", "ACL", 0, query="routes")
        vector = tracker.question_vector("routes")
        assert vector[("interface", "r1", "Ethernet0", None)] == 2
        assert vector[("acl_line", "r1", "ACL", 0)] == 1
        # Unattributed touches still count globally but never in vectors.
        tracker.touch("interface", "r2", "Ethernet0")
        assert ("interface", "r2", "Ethernet0", None) not in (
            tracker.question_vector("routes")
        )
        assert ("interface", "r2", "Ethernet0", None) in tracker.touched_keys()

    def test_lint_rule_labels_roll_up_under_lint(self):
        tracker = CoverageTracker()
        tracker.touch("acl_line", "r1", "ACL", 0, query="lint/rule-a")
        tracker.touch("acl_line", "r1", "ACL", 1, query="lint/rule-b")
        tracker.touch("acl_line", "r1", "ACL", 0, query="lint/rule-b")
        rollup = tracker.question_vector("lint")
        assert rollup[("acl_line", "r1", "ACL", 0)] == 2
        assert rollup[("acl_line", "r1", "ACL", 1)] == 1
        # Prefix match is on path segments: "linting" must not fold in.
        tracker.touch("acl_line", "r9", "ACL", 5, query="linting")
        assert ("acl_line", "r9", "ACL", 5) not in tracker.question_vector(
            "lint"
        )
        assert sorted(tracker.vector_labels()) == [
            "lint/rule-a", "lint/rule-b", "linting",
        ]

    def test_dump_and_merge_round_trip_vectors(self):
        tracker = CoverageTracker()
        tracker.touch("interface", "r1", "Ethernet0", query="reachability")
        tracker.touch("acl_line", "r1", "ACL", 3, query="lint/rule-a")
        merged = CoverageTracker()
        merged.merge(tracker.dump())
        merged.merge(tracker.dump())
        vector = merged.question_vector("reachability")
        assert vector[("interface", "r1", "Ethernet0", None)] == 2
        assert merged.question_vector("lint")[("acl_line", "r1", "ACL", 3)] == 2


class TestInvalidationRecomputesAggregates:
    def test_invalidate_hosts_recomputes_by_query(self):
        tracker = CoverageTracker()
        tracker.touch("interface", "r1", "Ethernet0", query="routes")
        tracker.touch("interface", "r2", "Ethernet0", query="routes")
        tracker.touch("acl_line", "r2", "ACL", 0, query="lint/rule-a")
        assert tracker.invalidate_hosts({"r2"}) == 2
        # Key-level data and kind aggregates must agree after the drop:
        # the stale-aggregate bug left by_query counting dead touches.
        assert tracker.dump()["by_query"] == {"routes": {"interface": 1}}
        assert tracker.question_vector("routes") == {
            ("interface", "r1", "Ethernet0", None): 1
        }
        assert tracker.question_vector("lint") == {}
        assert "lint/rule-a" not in tracker.vector_labels()

    def test_two_chained_invalidations_stay_consistent(self):
        """Regression: two deltas in sequence. After each invalidation
        the aggregates must describe exactly the surviving touches."""
        tracker = CoverageTracker()
        for host in ("r1", "r2", "r3"):
            tracker.touch("interface", host, "Ethernet0", query="reachability")
            tracker.touch("acl_line", host, "ACL", 0, query="reachability")
        tracker.invalidate_hosts({"r1"})
        assert tracker.dump()["by_query"]["reachability"] == {
            "interface": 2, "acl_line": 2,
        }
        tracker.invalidate_hosts({"r2"})
        assert tracker.dump()["by_query"]["reachability"] == {
            "interface": 1, "acl_line": 1,
        }
        tracker.invalidate_hosts({"r3"})
        assert tracker.dump()["by_query"] == {}
        assert tracker.touched_keys() == []

    def test_run_registry_survives_host_invalidation(self):
        tracker = CoverageTracker()
        tracker.touch("interface", "r1", "Ethernet0", query="routes")
        tracker.record_run("snap", "routes", "{}", {"question": "routes"})
        tracker.invalidate_hosts({"r1"})
        assert tracker.recorded_runs("snap") == {
            ("routes", "{}"): {"question": "routes"}
        }


class TestAttributionContext:
    def test_attribution_sets_and_restores_question(self):
        assert current_question() is None
        with attribution("routes") as ctx:
            assert current_question() == "routes"
            assert ctx.question == "routes"
            with attribution("lint/rule-a"):
                assert current_question() == "lint/rule-a"
            assert current_question() == "routes"
        assert current_question() is None

    def test_attribution_preserves_enclosing_request_context(self):
        with obs.context.request_context(request_id="req-attr") as outer:
            with attribution("reachability") as ctx:
                assert ctx.request_id == "req-attr"
                assert ctx.tenant == outer.tenant
                assert obs.context.current_request_id() == "req-attr"

    def test_wire_round_trip_carries_question(self):
        with obs.context.request_context(request_id="req-wire"):
            with attribution("traceroute"):
                wire = obs.context.to_wire(obs.context.current())
        restored = obs.context.from_wire(wire)
        assert restored is not None
        assert restored.request_id == "req-wire"
        assert restored.question == "traceroute"

    def test_question_only_wire_round_trips_without_request_id(self):
        with attribution("lint/rule-b"):
            wire = obs.context.to_wire(obs.context.current())
        restored = obs.context.from_wire(wire)
        assert restored is not None
        assert restored.request_id == ""
        assert restored.question == "lint/rule-b"
        assert obs.context.from_wire({}) is None

    def test_touch_uses_question_over_span_name(self):
        obs.enable_metrics()
        with obs.span("phase.simulate"):
            obs.touch("interface", "r1", "Ethernet0")
            with attribution("reachability"):
                obs.touch("interface", "r1", "Ethernet1")
        tracker = obs.coverage()
        vector = tracker.question_vector("reachability")
        assert vector == {("interface", "r1", "Ethernet1", None): 1}
        assert ("interface", "r1", "Ethernet0", None) not in vector


class TestThreadAttributionStress:
    THREADS = 8
    ITERATIONS = 400

    def test_two_questions_do_not_bleed_across_threads(self):
        obs.enable_metrics()
        barrier = threading.Barrier(self.THREADS)

        def hammer(thread_index):
            question = "qa" if thread_index % 2 == 0 else "qb"
            with attribution(question):
                barrier.wait()
                for i in range(self.ITERATIONS):
                    # Same structures from every thread: attribution,
                    # not key-space, is what must keep them apart.
                    obs.touch("interface", "r1", f"Ethernet{i % 4}")

        threads = [
            threading.Thread(target=hammer, args=(t,))
            for t in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        expected = (self.THREADS // 2) * self.ITERATIONS
        tracker = obs.coverage()
        assert sum(tracker.question_vector("qa").values()) == expected
        assert sum(tracker.question_vector("qb").values()) == expected
        assert sorted(tracker.vector_labels()) == ["qa", "qb"]
        # Global totals agree with the per-question split.
        dump = tracker.dump()
        assert sum(dump["touched"].values()) == 2 * expected


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
class TestPmapAttributionStress:
    ITEMS = 24

    @staticmethod
    def _work(item):
        obs.touch("interface", f"host{item}", "Ethernet0")
        obs.touch("acl_line", f"host{item}", "ACL", item)
        return item

    def test_worker_touches_come_back_attributed(self):
        obs.enable_metrics()
        with attribution("reachability"):
            results = pmap(self._work, list(range(self.ITEMS)), jobs=2,
                           min_items=2)
        assert results == list(range(self.ITEMS))
        vector = obs.coverage().question_vector("reachability")
        assert sum(vector.values()) == 2 * self.ITEMS
        assert {key[1] for key in vector} == {
            f"host{i}" for i in range(self.ITEMS)
        }

    def test_sequential_pmap_questions_stay_separate(self):
        obs.enable_metrics()
        with attribution("qa"):
            pmap(self._work, list(range(self.ITEMS)), jobs=2, min_items=2)
        with attribution("qb"):
            pmap(self._work, list(range(self.ITEMS)), jobs=2, min_items=2)
        tracker = obs.coverage()
        qa = tracker.question_vector("qa")
        qb = tracker.question_vector("qb")
        assert sum(qa.values()) == 2 * self.ITEMS
        assert qa == qb  # same work, so identical footprints...
        assert sorted(tracker.vector_labels()) == ["qa", "qb"]  # ...apart
