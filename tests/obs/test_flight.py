"""Flight recorder: always-on ring semantics, postmortem bundles, and
the disk-dump format (:mod:`repro.obs.flight`)."""

import json

import pytest

from repro import obs
from repro.obs.flight import MAX_BUNDLES, FlightRecorder


@pytest.fixture(autouse=True)
def obs_clean():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestRing:
    def test_records_with_obs_fully_disabled(self):
        assert not obs.enabled() and not obs.metrics_enabled()
        obs.flight.record("job", "started", job_id="j-1")
        events = obs.flight.recent()
        assert len(events) == 1
        assert events[0]["kind"] == "job"
        assert events[0]["name"] == "started"
        assert events[0]["job_id"] == "j-1"
        assert events[0]["ts"] > 0

    def test_ring_is_bounded_and_counts_drops(self):
        recorder = FlightRecorder(limit=4)
        for i in range(10):
            recorder.record("tick", str(i))
        events = recorder.recent()
        assert len(events) == 4
        assert [e["name"] for e in events] == ["6", "7", "8", "9"]
        assert recorder.stats()["dropped"] == 6
        assert recorder.stats()["capacity"] == 4

    def test_recent_limit(self):
        recorder = FlightRecorder(limit=16)
        for i in range(8):
            recorder.record("tick", str(i))
        assert [e["name"] for e in recorder.recent(3)] == ["5", "6", "7"]

    def test_sequence_numbers_increase(self):
        recorder = FlightRecorder(limit=16)
        for i in range(5):
            recorder.record("tick", str(i))
        seqs = [e["seq"] for e in recorder.recent()]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 5

    def test_enabled_escape_hatch_suppresses_everything(self):
        recorder = FlightRecorder(limit=16)
        recorder.enabled = False
        recorder.record("tick", "dropped")
        recorder.extend([{"kind": "tick", "name": "dropped-too"}])
        assert recorder.recent() == []
        recorder.enabled = True
        recorder.record("tick", "kept")
        assert len(recorder.recent()) == 1

    def test_extend_folds_worker_events_and_skips_junk(self):
        recorder = FlightRecorder(limit=16)
        recorder.extend(
            [{"kind": "phase", "name": "parse", "rid": "req-w"}, "junk", None]
        )
        events = recorder.recent()
        assert len(events) == 1
        assert events[0]["rid"] == "req-w"

    def test_reset_clears_ring_bundles_and_counters(self):
        recorder = FlightRecorder(limit=4)
        for i in range(8):
            recorder.record("tick", str(i))
        recorder.snapshot_bundle("test")
        recorder.reset()
        assert recorder.recent() == []
        assert recorder.bundles() == []
        assert recorder.stats() == {
            "events": 0, "capacity": 4, "dropped": 0, "bundles": 0,
        }


class TestBundles:
    def test_bundle_freezes_ring_with_reason_and_extras(self):
        recorder = FlightRecorder(limit=16)
        recorder.record("job", "started", job_id="j-9")
        bundle = recorder.snapshot_bundle(
            "job_error", job_id="j-9", error="boom"
        )
        assert bundle["reason"] == "job_error"
        assert bundle["error"] == "boom"
        assert [e["name"] for e in bundle["events"]] == ["started"]
        # The retained copy is the same bundle.
        assert recorder.bundles()[-1]["reason"] == "job_error"

    def test_bundle_keeps_events_after_ring_rolls_past_them(self):
        recorder = FlightRecorder(limit=2)
        recorder.record("job", "victim")
        bundle = recorder.snapshot_bundle("deadline_expired")
        for i in range(5):
            recorder.record("noise", str(i))
        assert [e["name"] for e in bundle["events"]] == ["victim"]
        assert "victim" not in [e["name"] for e in recorder.recent()]

    def test_bundles_are_bounded(self):
        recorder = FlightRecorder(limit=4)
        for i in range(MAX_BUNDLES + 5):
            recorder.snapshot_bundle(f"reason-{i}")
        retained = recorder.bundles()
        assert len(retained) == MAX_BUNDLES
        assert retained[0]["reason"] == "reason-5"

    def test_bundle_carries_ambient_request_id(self):
        recorder = FlightRecorder(limit=4)
        with obs.context.request_context(request_id="req-bundle"):
            bundle = recorder.snapshot_bundle("sigterm")
        assert bundle["rid"] == "req-bundle"


class TestDump:
    def test_dump_shape(self):
        recorder = FlightRecorder(limit=8)
        recorder.record("tick", "a")
        recorder.snapshot_bundle("drain")
        dump = recorder.dump()
        assert dump["schema"] == "repro-flightrecorder/v1"
        assert dump["stats"]["events"] == 1
        assert len(dump["events"]) == 1
        assert len(dump["bundles"]) == 1

    def test_dump_to_writes_json(self, tmp_path):
        recorder = FlightRecorder(limit=8)
        recorder.record("tick", "a")
        path = tmp_path / "flight.json"
        recorder.dump_to(str(path))
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == "repro-flightrecorder/v1"
        assert loaded["events"][0]["name"] == "a"

    def test_dump_to_swallows_unwritable_path(self):
        FlightRecorder(limit=2).dump_to("/nonexistent-dir/flight.json")

    def test_dump_path_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FLIGHT_DUMP", raising=False)
        assert obs.flight.dump_path_from_env() is None
        monkeypatch.setenv("REPRO_FLIGHT_DUMP", "/tmp/fr.json")
        assert obs.flight.dump_path_from_env() == "/tmp/fr.json"

    def test_ring_size_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_EVENTS", "7")
        assert FlightRecorder().stats()["capacity"] == 7
        monkeypatch.setenv("REPRO_FLIGHT_EVENTS", "not-a-number")
        assert (
            FlightRecorder().stats()["capacity"]
            == obs.flight.DEFAULT_RING_EVENTS
        )
