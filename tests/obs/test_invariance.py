"""Instrumentation must never change analysis results.

The contract: tracing on, tracing off, or tracing pointed at a damaged
file all produce byte-identical pipeline outputs (pickled FIBs), and a
broken sink degrades silently instead of raising.
"""

import pytest

from repro import obs
from repro.config.loader import load_snapshot_from_texts
from repro.dataplane.fib import compute_fibs
from repro.routing.engine import compute_dataplane

CONFIGS = {
    "edge.cfg": """
hostname edge
interface eth0
 ip address 10.0.0.1 255.255.255.0
 ip access-group EDGE_IN in
interface eth1
 ip address 10.0.12.1 255.255.255.0
ip route 10.0.2.0 255.255.255.0 10.0.12.2
ip access-list extended EDGE_IN
 deny tcp any any eq 23
 permit ip any any
router ospf 1
 network 10.0.12.0 0.0.0.255 area 0
""",
    "core.cfg": """
hostname core
interface eth0
 ip address 10.0.12.2 255.255.255.0
interface eth1
 ip address 10.0.2.1 255.255.255.0
router ospf 1
 network 10.0.12.0 0.0.0.255 area 0
 network 10.0.2.0 0.0.0.255 area 0
""",
}


@pytest.fixture(autouse=True)
def obs_clean():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def fib_description() -> bytes:
    """Deterministic byte serialization of the pipeline's FIBs."""
    snapshot = load_snapshot_from_texts(CONFIGS)
    dataplane = compute_dataplane(snapshot)
    fibs = compute_fibs(dataplane)
    lines = []
    for hostname in sorted(fibs):
        lines.append(hostname)
        for prefix, entries in fibs[hostname].entries():
            for rendered in sorted(entry.describe() for entry in entries):
                lines.append(f"  {prefix}: {rendered}")
    return "\n".join(lines).encode()


class TestTracingInvariance:
    def test_fibs_identical_tracing_on_vs_off(self, tmp_path):
        baseline = fib_description()
        obs.enable(str(tmp_path / "trace.jsonl"))
        traced = fib_description()
        obs.flush()
        obs.disable()
        untraced_again = fib_description()
        assert baseline == traced == untraced_again

    def test_trace_file_to_unwritable_path_degrades_silently(self, tmp_path):
        baseline = fib_description()
        # Point the sink at a path inside a *file* (open() fails inside
        # enable -> must raise there, not corrupt analysis) — instead
        # simulate a sink dying mid-run: enable, then close the file
        # behind obs's back so every write errors.
        trace = tmp_path / "trace.jsonl"
        obs.enable(str(trace))
        from repro.obs import trace as trace_mod

        trace_mod._STATE.sink.close()  # sink now raises ValueError on write
        damaged = fib_description()
        assert damaged == baseline
        obs.disable()

    def test_corrupt_preexisting_trace_file_is_appended_not_parsed(self, tmp_path):
        # A half-written file from a crashed run must not affect a new
        # traced run: we only ever append.
        trace = tmp_path / "trace.jsonl"
        trace.write_text('{"type": "span", "name": "torn"\nGARBAGE\n')
        baseline = fib_description()
        obs.enable(str(trace))
        traced = fib_description()
        obs.flush()
        obs.disable()
        assert traced == baseline
        content = trace.read_text().splitlines()
        assert content[0].startswith('{"type": "span", "name": "torn"')
        assert content[1] == "GARBAGE"
        assert len(content) > 2  # new events appended after the damage

    def test_session_trace_kwarg_does_not_change_answers(self, tmp_path):
        from repro.core.session import Session

        plain = Session.from_texts(CONFIGS)
        plain_answer = plain.reachability()
        plain_success = plain_answer.success_set()

        traced = Session(
            load_snapshot_from_texts(CONFIGS),
            trace=str(tmp_path / "trace.jsonl"),
        )
        traced_answer = traced.reachability()
        # BDD ids are engine-relative; compare via each engine's own
        # model count over the full success set.
        plain_count = plain.encoder.engine.sat_count(plain_success)
        traced_count = traced.encoder.engine.sat_count(
            traced_answer.success_set()
        )
        assert plain_count == traced_count
        obs.disable()
