"""Concurrency-correctness tests for the metrics registry: exact
totals under thread contention, defined gauge merge semantics, and
exact totals across the ``pmap`` fork boundary (including the flight
events and request ids shipped back from workers)."""

import threading

import pytest

from repro import obs
from repro.obs.metrics import Metrics
from repro.parallel import fork_available, pmap


@pytest.fixture(autouse=True)
def obs_clean():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestThreadStress:
    THREADS = 8
    ITERATIONS = 500

    def test_counters_and_histograms_exact_under_contention(self):
        obs.enable_metrics()
        barrier = threading.Barrier(self.THREADS)

        def hammer(thread_index):
            barrier.wait()
            for i in range(self.ITERATIONS):
                obs.add("stress.incs")
                obs.observe("stress.values", float(i))
                obs.observe_bucket(
                    "stress.seconds", i / 1000.0,
                    worker=str(thread_index % 2),
                )

        threads = [
            threading.Thread(target=hammer, args=(t,))
            for t in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        expected = self.THREADS * self.ITERATIONS
        metrics = obs.metrics()
        assert metrics.counter("stress.incs") == expected
        assert metrics.histogram("stress.values").count == expected
        families = metrics.bucket_families()["stress.seconds"]
        assert sum(h.count for h in families.values()) == expected
        # Each label set saw exactly half the threads' observations.
        for histogram in families.values():
            assert histogram.count == expected // 2


class TestGaugeMergeModes:
    def test_declared_last_write_wins(self):
        metrics = Metrics()
        metrics.declare_gauge("queue.depth", merge="last")
        metrics.gauge("queue.depth", 9)
        metrics.merge({"gauges": {"queue.depth": 2}}, worker=True)
        assert metrics.gauge_value("queue.depth") == 2

    def test_declared_max_keeps_high_water_mark(self):
        metrics = Metrics()
        metrics.declare_gauge("rss.peak", merge="max")
        metrics.gauge("rss.peak", 9)
        metrics.merge({"gauges": {"rss.peak": 2}}, worker=False)
        assert metrics.gauge_value("rss.peak") == 9
        metrics.merge({"gauges": {"rss.peak": 30}}, worker=False)
        assert metrics.gauge_value("rss.peak") == 30

    def test_worker_merge_defaults_undeclared_gauges_to_max(self):
        """Worker dumps arrive in nondeterministic completion order, so
        the undeclared default must be order-independent."""
        metrics = Metrics()
        dumps = [{"gauges": {"pmap.jobs": v}} for v in (3, 7, 5)]
        metrics_reversed = Metrics()
        for dump in dumps:
            metrics.merge(dump, worker=True)
        for dump in reversed(dumps):
            metrics_reversed.merge(dump, worker=True)
        assert metrics.gauge_value("pmap.jobs") == 7
        assert metrics.gauge_value("pmap.jobs") == metrics_reversed.gauge_value(
            "pmap.jobs"
        )

    def test_replay_merge_defaults_undeclared_gauges_to_last(self):
        # Trace replays are ordered streams; byte-compatibility keeps
        # last-write-wins there.
        metrics = Metrics()
        for value in (3, 7, 5):
            metrics.merge({"gauges": {"pmap.jobs": value}}, worker=False)
        assert metrics.gauge_value("pmap.jobs") == 5

    def test_invalid_merge_mode_rejected(self):
        with pytest.raises(ValueError):
            Metrics().declare_gauge("x", merge="average")

    def test_counters_and_buckets_merge_additively(self):
        metrics = Metrics()
        metrics.observe_bucket("phase.seconds", 0.1, phase="parse")
        dump = metrics.dump()
        merged = Metrics()
        merged.merge(dump, worker=True)
        merged.merge(dump, worker=True)
        histogram = merged.bucket_histogram("phase.seconds", phase="parse")
        assert histogram.count == 2
        assert histogram.total == pytest.approx(0.2)


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
class TestPmapStress:
    ITEMS = 24

    def _run_pmap(self):
        def work(item):
            obs.add("stress.pmap_items")
            obs.observe_bucket("stress.pmap_seconds", item / 1000.0)
            obs.gauge("stress.pmap_max_item", item)
            obs.flight.record("stress", "item", index=item)
            return item * 2

        return pmap(work, list(range(self.ITEMS)), jobs=2, min_items=2)

    def test_pmap_totals_exact_and_attributed(self):
        obs.enable_metrics()
        with obs.context.request_context(request_id="req-pmap-stress"):
            results = self._run_pmap()
        assert results == [i * 2 for i in range(self.ITEMS)]
        metrics = obs.metrics()
        assert metrics.counter("stress.pmap_items") == self.ITEMS
        histogram = metrics.bucket_histogram("stress.pmap_seconds")
        assert histogram is not None and histogram.count == self.ITEMS
        # Undeclared gauge ships back with max semantics: the overall
        # max item survives regardless of chunk completion order.
        assert metrics.gauge_value("stress.pmap_max_item") == self.ITEMS - 1
        # Worker flight events came back with the originating rid.
        worker_events = [
            e for e in obs.flight.recent() if e.get("kind") == "stress"
        ]
        assert len(worker_events) == self.ITEMS
        assert {e["rid"] for e in worker_events} == {"req-pmap-stress"}
        assert {e["index"] for e in worker_events} == set(range(self.ITEMS))

    def test_threads_hammering_while_pmap_runs_stay_exact(self):
        obs.enable_metrics()
        stop = threading.Event()
        counts = []

        def hammer():
            local = 0
            while not stop.is_set():
                obs.add("stress.thread_incs")
                local += 1
            counts.append(local)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            results = self._run_pmap()
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert len(results) == self.ITEMS
        metrics = obs.metrics()
        assert metrics.counter("stress.pmap_items") == self.ITEMS
        assert metrics.counter("stress.thread_incs") == sum(counts)
        assert sum(counts) > 0
