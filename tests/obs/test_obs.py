"""Core obs subsystem tests: spans, metrics, coverage, and the
zero-cost-when-disabled guarantee."""

import json
import threading

import pytest

from repro import obs
from repro.config.loader import load_snapshot_from_texts
from repro.obs.coverage import CoverageTracker, coverage_report
from repro.obs.metrics import Metrics
from repro.obs.trace import _NULL_SPAN


@pytest.fixture(autouse=True)
def obs_clean():
    """Every test starts and ends with obs off and empty."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestSpans:
    def test_nested_spans_record_parentage(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        spans = [e for e in obs.events() if e["type"] == "span"]
        assert [s["name"] for s in spans] == ["inner", "outer"]
        inner, outer = spans
        assert inner["parent"] == outer["id"]
        assert inner["depth"] == 1 and outer["depth"] == 0
        assert inner["wall_s"] >= 0.0 and inner["cpu_s"] >= 0.0

    def test_start_events_precede_close_events(self):
        obs.enable()
        with obs.span("phase"):
            pass
        types = [e["type"] for e in obs.events()]
        assert types == ["start", "span"]

    def test_span_attrs_serialized_sorted(self):
        obs.enable()
        with obs.span("parse", zebra=1, alpha="x"):
            pass
        event = [e for e in obs.events() if e["type"] == "span"][0]
        assert list(event["attrs"]) == ["alpha", "zebra"]

    def test_exception_marks_span(self):
        obs.enable()
        with pytest.raises(ValueError):
            with obs.span("boom"):
                raise ValueError("nope")
        event = [e for e in obs.events() if e["type"] == "span"][0]
        assert event["error"] == "ValueError"

    def test_unclosed_span_listed_in_flush(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        obs.enable(str(trace))
        span = obs.span("leaky")
        span.__enter__()
        obs.flush()
        flush_events = [
            json.loads(line)
            for line in trace.read_text().splitlines()
            if json.loads(line)["type"] == "flush"
        ]
        assert flush_events[-1]["unclosed"] == ["leaky"]
        span.__exit__(None, None, None)

    def test_jsonl_trace_is_valid_line_by_line(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        obs.enable(str(trace))
        with obs.span("a", n=1):
            obs.add("k")
        obs.flush()
        lines = trace.read_text().splitlines()
        assert lines
        for line in lines:
            event = json.loads(line)
            assert isinstance(event, dict) and "type" in event


class TestDisabledPath:
    def test_span_factory_returns_shared_null_span(self):
        assert obs.span("anything") is _NULL_SPAN
        assert obs.span("other", attr=1) is _NULL_SPAN

    def test_helpers_record_nothing_when_disabled(self):
        obs.add("counter")
        obs.gauge("gauge", 5)
        obs.observe("hist", 1.0)
        obs.touch("interface", "r1", "eth0")
        dump = obs.metrics_dump()
        assert dump["counters"] == {}
        assert dump["gauges"] == {}
        assert dump["histograms"] == {}
        assert obs.coverage().dump()["touched"] == {}
        assert obs.events() == []

    def test_obs_span_still_times_when_disabled(self):
        with obs.Span("bench") as span:
            sum(range(100))
        assert span.wall_s >= 0.0
        assert obs.events() == []


class TestMetrics:
    def test_counters_gauges_histograms(self):
        metrics = Metrics()
        metrics.inc("a")
        metrics.inc("a", 4)
        metrics.gauge("g", 2.5)
        metrics.observe("h", 1.0)
        metrics.observe("h", 3.0)
        assert metrics.counter("a") == 5
        assert metrics.gauge_value("g") == 2.5
        hist = metrics.histogram("h")
        assert hist.count == 2 and hist.min == 1.0 and hist.max == 3.0
        assert hist.mean == 2.0

    def test_merge_adds_counters_and_histograms(self):
        a, b = Metrics(), Metrics()
        a.inc("c", 2)
        a.observe("h", 1.0)
        a.gauge("g", 1)
        b.inc("c", 3)
        b.observe("h", 5.0)
        b.gauge("g", 9)
        a.merge(b.dump())
        assert a.counter("c") == 5
        assert a.histogram("h").count == 2
        assert a.histogram("h").max == 5.0
        assert a.gauge_value("g") == 9  # gauges: last writer wins

    def test_dump_roundtrips_through_json(self):
        metrics = Metrics()
        metrics.inc("x")
        metrics.observe("y", 0.5)
        restored = Metrics()
        restored.merge(json.loads(json.dumps(metrics.dump())))
        assert restored.counter("x") == 1
        assert restored.histogram("y").count == 1

    def test_thread_safety_of_counters(self):
        obs.enable()

        def bump():
            for _ in range(1000):
                obs.add("threads")

        workers = [threading.Thread(target=bump) for _ in range(4)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert obs.metrics().counter("threads") == 4000


class TestCoverage:
    CONFIGS = {
        "r1.cfg": """
hostname r1
interface eth0
 ip address 10.0.0.1 255.255.255.0
 ip access-group FILTER in
interface eth1
 ip address 10.1.0.1 255.255.255.0
ip access-list extended FILTER
 deny tcp any any eq 23
 permit ip any any
route-map RM permit 10
 match ip address prefix-list PL
""",
    }

    def test_touch_and_report(self):
        snapshot = load_snapshot_from_texts(self.CONFIGS)
        tracker = CoverageTracker()
        tracker.touch("interface", "r1", "eth0", query="q1")
        tracker.touch("acl_line", "r1", "FILTER", 0, query="q1")
        report = coverage_report(tracker, snapshot)
        kinds = report.kinds
        assert kinds["interface"].touched == 1
        assert kinds["interface"].total == 2
        assert kinds["acl_line"].touched == 1
        assert kinds["acl_line"].total == 2
        assert kinds["route_map_clause"].total == 1
        assert "interface" in report.describe()

    def test_merge_unions_touches(self):
        a, b = CoverageTracker(), CoverageTracker()
        a.touch("interface", "r1", "eth0")
        b.touch("interface", "r1", "eth1", query="q")
        a.merge(b.dump())
        assert len(a.touched_keys()) == 2

    def test_session_coverage_report_counts_totals(self):
        from repro.core.session import Session

        session = Session.from_texts(self.CONFIGS)
        report = session.coverage_report()
        assert report.kinds["interface"].total == 2
        # obs disabled: nothing touched.
        assert all(k.touched == 0 for k in report.kinds.values())


class TestSessionIntegration:
    def test_parse_warnings_is_property_with_attribution(self):
        from repro.core.session import Session

        configs = {
            "r1.cfg": "hostname r1\nfrobnicate widget\n",
        }
        session = Session.from_texts(configs)
        warnings = session.parse_warnings
        assert isinstance(warnings, list)
        assert warnings, "unparsed line should produce a warning"
        assert warnings[0].source_file == "r1.cfg"
        assert "r1.cfg" in warnings[0].describe()

    def test_parse_counters_emitted(self):
        obs.enable()
        load_snapshot_from_texts(
            {"r1.cfg": "hostname r1\n", "r2.cfg": "hostname r2\n"}
        )
        assert obs.metrics().counter("parse.files") == 2
        assert obs.metrics().counter("parse.lines.ciscoish") >= 2
