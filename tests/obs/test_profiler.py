"""Sampling profiler: lifecycle, report shape, rendering, and env
gating (:mod:`repro.obs.profiler`)."""

import threading
import time

import pytest

from repro.obs import profiler
from repro.obs.profiler import SamplingProfiler, hz_from_env, render_report


@pytest.fixture(autouse=True)
def no_global_profiler():
    profiler.stop()
    yield
    profiler.stop()


def spin_until(predicate, timeout=5.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


def busy_work(stop_event):
    total = 0
    while not stop_event.is_set():
        total += sum(range(200))
    return total


class TestSamplingProfiler:
    def test_rejects_non_positive_rate(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)
        with pytest.raises(ValueError):
            SamplingProfiler(hz=-5)

    def test_samples_a_busy_thread(self):
        stop = threading.Event()
        worker = threading.Thread(target=busy_work, args=(stop,), daemon=True)
        worker.start()
        sampler = SamplingProfiler(hz=200).start()
        try:
            assert spin_until(lambda: sampler.samples >= 10)
        finally:
            sampler.stop()
            stop.set()
            worker.join()
        report = sampler.report()
        assert report["schema"] == "repro-profile/v1"
        assert report["hz"] == 200
        assert report["samples"] >= 10
        assert report["duration_s"] > 0
        frames = " ".join(row["frame"] for row in report["cumulative"])
        assert "busy_work" in frames
        for row in report["self"]:
            assert 0.0 <= row["fraction"] <= 1.0
            assert row["count"] >= 1

    def test_start_is_idempotent_and_stop_halts_sampling(self):
        sampler = SamplingProfiler(hz=100)
        assert sampler.start() is sampler
        assert sampler.start() is sampler
        assert sampler.running
        sampler.stop()
        assert not sampler.running
        samples_after_stop = sampler.samples
        time.sleep(0.1)
        assert sampler.samples == samples_after_stop

    def test_empty_report_renders(self):
        report = SamplingProfiler(hz=10).report()
        text = render_report(report)
        assert "(no samples)" in text
        assert "10" in text

    def test_render_report_lists_frames(self):
        report = {
            "hz": 50, "samples": 100, "duration_s": 2.0,
            "self": [{"frame": "hot_loop (x.py:3)", "count": 80,
                      "fraction": 0.8}],
            "cumulative": [{"frame": "main (x.py:1)", "count": 100,
                            "fraction": 1.0}],
        }
        text = render_report(report)
        assert "hot_loop" in text and "main" in text
        assert "80.0%" in text


class TestGlobalInstance:
    def test_active_none_until_started(self):
        assert profiler.active() is None
        started = profiler.start(hz=100)
        assert profiler.active() is started
        profiler.stop()
        assert profiler.active() is None

    def test_start_reuses_running_instance(self):
        first = profiler.start(hz=100)
        assert profiler.start(hz=100) is first

    def test_hz_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE_HZ", raising=False)
        assert hz_from_env() == 0.0
        monkeypatch.setenv("REPRO_PROFILE_HZ", "50")
        assert hz_from_env() == 50.0
        monkeypatch.setenv("REPRO_PROFILE_HZ", "-3")
        assert hz_from_env() == 0.0
        monkeypatch.setenv("REPRO_PROFILE_HZ", "lots")
        assert hz_from_env() == 0.0

    def test_maybe_start_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE_HZ", raising=False)
        assert profiler.maybe_start_from_env() is None
        monkeypatch.setenv("REPRO_PROFILE_HZ", "100")
        started = profiler.maybe_start_from_env()
        assert started is not None and started.running
