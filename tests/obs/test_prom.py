"""Prometheus text exposition: rendering and the strict validator
(:mod:`repro.obs.prom`)."""

import pytest

from repro.obs.metrics import Metrics
from repro.obs.prom import (
    ExpositionError,
    parse_exposition,
    render_exposition,
    sanitize_label,
    sanitize_name,
)


def render_and_parse(metrics, **kwargs):
    text = render_exposition(metrics, **kwargs)
    return text, parse_exposition(text)


class TestSanitization:
    def test_dotted_names_and_prefix(self):
        assert sanitize_name("service.job.seconds") == "repro_service_job_seconds"

    def test_invalid_chars_replaced(self):
        assert sanitize_name("a-b c!") == "repro_a_b_c_"
        assert sanitize_label("le-gal?") == "le_gal_"

    def test_leading_digit_label_gets_underscore(self):
        assert sanitize_label("9lives").startswith("_")


class TestRendering:
    def test_counters_get_total_suffix(self):
        metrics = Metrics()
        metrics.inc("bgp.routes_processed", 42)
        text, families = render_and_parse(metrics)
        family = families["repro_bgp_routes_processed_total"]
        assert family["type"] == "counter"
        assert family["samples"] == [
            ("repro_bgp_routes_processed_total", {}, 42.0)
        ]

    def test_gauges_render_plain(self):
        metrics = Metrics()
        metrics.gauge("pmap.jobs", 8)
        _, families = render_and_parse(metrics)
        assert families["repro_pmap_jobs"]["type"] == "gauge"

    def test_summary_histograms_export_sum_and_count(self):
        metrics = Metrics()
        metrics.observe("pmap.chunk_seconds", 0.5)
        metrics.observe("pmap.chunk_seconds", 1.5)
        _, families = render_and_parse(metrics)
        family = families["repro_pmap_chunk_seconds"]
        assert family["type"] == "summary"
        samples = {name: value for name, _, value in family["samples"]}
        assert samples["repro_pmap_chunk_seconds_sum"] == 2.0
        assert samples["repro_pmap_chunk_seconds_count"] == 2.0

    def test_bucket_histograms_export_cumulative_series(self):
        metrics = Metrics()
        for seconds in (0.002, 0.002, 0.2, 99.0):
            metrics.observe_bucket(
                "service.request.seconds", seconds,
                question="routes", disposition="ok",
            )
        text, families = render_and_parse(metrics)
        family = families["repro_service_request_seconds"]
        assert family["type"] == "histogram"
        buckets = [
            (labels["le"], value)
            for name, labels, value in family["samples"]
            if name.endswith("_bucket")
        ]
        # Cumulative and capped by +Inf == _count.
        values = [v for _, v in buckets]
        assert values == sorted(values)
        assert buckets[-1] == ("+Inf", 4.0)
        count = next(
            value for name, _, value in family["samples"]
            if name.endswith("_count")
        )
        assert count == 4.0
        assert 'question="routes"' in text
        assert 'disposition="ok"' in text

    def test_label_values_escaped(self):
        metrics = Metrics()
        metrics.observe_bucket(
            "phase.seconds", 0.1, phase='we"ird\\phase'
        )
        text, families = render_and_parse(metrics)
        assert r'phase="we\"ird\\phase"' in text
        sample_labels = families["repro_phase_seconds"]["samples"][0][1]
        assert sample_labels["phase"] == r"we\"ird\\phase"

    def test_extra_counters_and_gauges(self):
        metrics = Metrics()
        _, families = render_and_parse(
            metrics,
            extra_counters={"service.queue.completed": 9},
            extra_gauges={"service.queue.depth": 2},
        )
        assert families["repro_service_queue_completed_total"]["samples"][0][2] == 9.0
        assert families["repro_service_queue_depth"]["samples"][0][2] == 2.0

    def test_name_collision_across_kinds_disambiguates(self):
        # A counter and a gauge sanitizing to the same family name must
        # not produce a duplicate family (the validator would throw).
        metrics = Metrics()
        metrics.inc("service.depth")
        _, families = render_and_parse(
            metrics, extra_gauges={"service_depth": 3}
        )
        # Both survive under distinct names, and parsing succeeded.
        kinds = {
            name: family["type"] for name, family in families.items()
            if "depth" in name
        }
        assert "counter" in kinds.values() and "gauge" in kinds.values()

    def test_every_family_has_help_and_type(self):
        metrics = Metrics()
        metrics.inc("made.up.counter")
        metrics.gauge("made.up.gauge", 1.0)
        text, families = render_and_parse(metrics)
        for family in families.values():
            assert family["help"]
            assert family["type"]


class TestValidator:
    def test_duplicate_type_rejected(self):
        text = (
            "# HELP repro_x x.\n# TYPE repro_x counter\n"
            "# TYPE repro_x counter\nrepro_x 1\n"
        )
        with pytest.raises(ExpositionError, match="duplicate TYPE"):
            parse_exposition(text)

    def test_missing_help_rejected(self):
        text = "# TYPE repro_x counter\nrepro_x 1\n"
        with pytest.raises(ExpositionError, match="missing HELP"):
            parse_exposition(text)

    def test_sample_without_type_rejected(self):
        with pytest.raises(ExpositionError, match="no preceding TYPE"):
            parse_exposition("repro_orphan 1\n")

    def test_malformed_value_rejected(self):
        text = "# HELP repro_x x.\n# TYPE repro_x counter\nrepro_x banana\n"
        with pytest.raises(ExpositionError, match="bad sample value"):
            parse_exposition(text)

    def test_non_monotone_buckets_rejected(self):
        text = (
            "# HELP repro_h h.\n# TYPE repro_h histogram\n"
            'repro_h_bucket{le="0.1"} 5\n'
            'repro_h_bucket{le="1"} 3\n'
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_sum 1\nrepro_h_count 5\n"
        )
        with pytest.raises(ExpositionError, match="not monotone"):
            parse_exposition(text)

    def test_missing_inf_bucket_rejected(self):
        text = (
            "# HELP repro_h h.\n# TYPE repro_h histogram\n"
            'repro_h_bucket{le="0.1"} 5\n'
            "repro_h_sum 1\nrepro_h_count 5\n"
        )
        with pytest.raises(ExpositionError, match=r"missing \+Inf"):
            parse_exposition(text)

    def test_inf_bucket_must_equal_count(self):
        text = (
            "# HELP repro_h h.\n# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_sum 1\nrepro_h_count 7\n"
        )
        with pytest.raises(ExpositionError, match="!= *_count|_count"):
            parse_exposition(text)

    def test_empty_registry_renders_valid_empty_exposition(self):
        text = render_exposition(Metrics())
        assert parse_exposition(text) == {}
