"""Tests for the ``python -m repro.obs.report`` trace renderer."""

import json
import subprocess
import sys

import pytest

from repro import obs
from repro.obs.report import TraceReport, main


@pytest.fixture(autouse=True)
def obs_clean():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def write_trace(path):
    """A small but complete trace: nested spans, metrics, coverage."""
    obs.enable(str(path))
    with obs.span("parse", files=2):
        obs.add("parse.files", 2)
    with obs.span("dataplane"):
        with obs.span("dataplane.bgp"):
            obs.observe("dataplane.bgp.iteration_delta_routes", 7.0)
    obs.gauge("bdd.nodes", 123)
    obs.touch("interface", "r1", "eth0")
    obs.flush()
    obs.disable()


class TestTraceReport:
    def test_span_tree_paths_and_aggregation(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        write_trace(trace)
        report = TraceReport.from_file(str(trace))
        paths = [row[0] for row in report.span_tree()]
        assert "parse" in paths
        assert "dataplane/dataplane.bgp" in paths
        assert report.unclosed() == []

    def test_render_contains_all_sections(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        write_trace(trace)
        rendered = TraceReport.from_file(str(trace)).render()
        assert "span tree" in rendered
        assert "parse.files" in rendered
        assert "bdd.nodes" in rendered
        assert "dataplane.bgp.iteration_delta_routes" in rendered
        assert "interface" in rendered
        assert "0 corrupt" in rendered

    def test_corrupt_and_halfwritten_lines_are_skipped(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        write_trace(trace)
        with open(trace, "a") as handle:
            handle.write("this is not json\n")
            handle.write('{"type": "span", "name": "torn", "wall_s"\n')
            handle.write("[1, 2, 3]\n")
        report = TraceReport.from_file(str(trace))
        assert report.corrupt_lines == 3
        assert report.unclosed() == []
        assert "3 corrupt" in report.render()

    def test_missing_file_degrades_to_empty_report(self, tmp_path, capsys):
        report = TraceReport.from_file(str(tmp_path / "nope.jsonl"))
        assert report.total_lines == 0
        assert "(no spans)" in report.render()

    def test_spans_merge_across_pids(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        events = [
            {"type": "span", "name": "work", "id": 1, "parent": 0,
             "depth": 0, "pid": 100, "wall_s": 1.0, "cpu_s": 1.0},
            {"type": "span", "name": "work", "id": 1, "parent": 0,
             "depth": 0, "pid": 200, "wall_s": 2.0, "cpu_s": 2.0},
        ]
        trace.write_text("".join(json.dumps(e) + "\n" for e in events))
        report = TraceReport.from_file(str(trace))
        rows = report.span_tree()
        assert rows == [("work", 2, 3.0, 3.0)]


class TestCli:
    def test_main_renders_and_exits_zero(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        write_trace(trace)
        assert main([str(trace)]) == 0
        assert "span tree" in capsys.readouterr().out

    def test_strict_fails_on_unclosed_span(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        obs.enable(str(trace))
        leaky = obs.span("leaky")
        leaky.__enter__()
        obs.flush()
        leaky.__exit__(None, None, None)
        # Truncate after the flush so the close event is not in the file.
        lines = [
            line
            for line in trace.read_text().splitlines()
            if json.loads(line).get("type") != "span"
        ]
        trace.write_text("".join(line + "\n" for line in lines))
        obs.disable()
        assert main([str(trace), "--strict"]) == 1
        assert "UNCLOSED: leaky" in capsys.readouterr().out

    def test_strict_passes_on_clean_trace(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        write_trace(trace)
        assert main([str(trace), "--strict"]) == 0

    def test_span_events_carry_timestamps(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        write_trace(trace)
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        spanlike = [e for e in events if e["type"] in ("start", "span")]
        assert spanlike and all("ts" in e for e in spanlike)

    def test_strict_fails_on_close_before_start(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        events = [
            {"type": "start", "name": "warp", "id": 1, "parent": 0,
             "depth": 0, "pid": 100, "ts": 2000.0},
            {"type": "span", "name": "warp", "id": 1, "parent": 0,
             "depth": 0, "pid": 100, "wall_s": 0.5, "cpu_s": 0.5,
             "ts": 1999.0},
        ]
        trace.write_text("".join(json.dumps(e) + "\n" for e in events))
        report = TraceReport.from_file(str(trace))
        assert len(report.time_regressions()) == 1
        assert "warp" in report.time_regressions()[0]
        assert main([str(trace), "--strict"]) == 1
        captured = capsys.readouterr()
        assert "TIME REGRESSION" in captured.out
        assert "STRICT" in captured.err

    def test_strict_passes_when_close_after_start(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        events = [
            {"type": "start", "name": "fine", "id": 1, "parent": 0,
             "depth": 0, "pid": 100, "ts": 1000.0},
            {"type": "span", "name": "fine", "id": 1, "parent": 0,
             "depth": 0, "pid": 100, "wall_s": 0.5, "cpu_s": 0.5,
             "ts": 1000.5},
        ]
        trace.write_text("".join(json.dumps(e) + "\n" for e in events))
        report = TraceReport.from_file(str(trace))
        assert report.time_regressions() == []
        assert main([str(trace), "--strict"]) == 0

    def test_module_entrypoint_runs(self, tmp_path):
        import os

        trace = tmp_path / "trace.jsonl"
        write_trace(trace)
        repo_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(repo_root, "src")
        result = subprocess.run(
            [sys.executable, "-m", "repro.obs.report", str(trace)],
            capture_output=True,
            text=True,
            env=env,
            cwd=repo_root,
        )
        assert result.returncode == 0
        assert "span tree" in result.stdout


class TestCoverageSection:
    def write_attributed_trace(self, path):
        obs.enable(str(path))
        with obs.context.attribution("reachability"):
            obs.touch("interface", "r1", "eth0")
            obs.touch("interface", "r1", "eth1")
        with obs.context.attribution("lint/rule-a"):
            obs.touch("acl_line", "r1", "ACL", 0)
        with obs.context.attribution("lint/rule-b"):
            obs.touch("acl_line", "r1", "ACL", 0)
        obs.flush()
        obs.disable()

    def test_text_render_shows_per_question_attribution(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        self.write_attributed_trace(trace)
        assert main([str(trace)]) == 0
        out = capsys.readouterr().out
        assert "per-question attribution" in out
        assert "reachability: interface=2" in out
        # lint/<rule> labels roll up, shared structures counted once.
        assert "lint: acl_line=1" in out

    def test_json_flag_emits_coverage_section(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        self.write_attributed_trace(trace)
        assert main([str(trace), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-obs-report/v1"
        coverage = doc["coverage"]
        assert coverage["touched_by_kind"] == {"acl_line": 1, "interface": 2}
        assert coverage["questions"]["reachability"] == {"interface": 2}
        assert coverage["questions"]["lint"] == {"acl_line": 1}
        assert coverage["by_query"]["lint/rule-a"] == {"acl_line": 1}
        assert doc["events"]["corrupt"] == 0
