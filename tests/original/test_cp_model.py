"""Tests for the original Datalog control-plane model, cross-validated
against the imperative engine on NET1-class networks (the Figure 3
methodology)."""

import pytest

from repro.config.loader import load_snapshot_from_texts
from repro.dataplane.fib import FibActionType, compute_fibs
from repro.original.cp_model import compute_dataplane_datalog
from repro.routing.engine import compute_dataplane
from repro.synth.special import net1

OSPF_TRIANGLE = {
    "a": """
hostname a
interface lan0
 ip address 172.16.1.1 255.255.255.0
 ip ospf area 0
 ip ospf passive
interface e0
 ip address 10.0.0.1 255.255.255.252
 ip ospf area 0
 ip ospf cost 10
interface e1
 ip address 10.0.0.5 255.255.255.252
 ip ospf area 0
 ip ospf cost 100
router ospf 1
""",
    "b": """
hostname b
interface lan0
 ip address 172.16.2.1 255.255.255.0
 ip ospf area 0
 ip ospf passive
interface e0
 ip address 10.0.0.2 255.255.255.252
 ip ospf area 0
 ip ospf cost 10
interface e1
 ip address 10.0.0.9 255.255.255.252
 ip ospf area 0
 ip ospf cost 10
router ospf 1
""",
    "c": """
hostname c
interface lan0
 ip address 172.16.3.1 255.255.255.0
 ip ospf area 0
 ip ospf passive
interface e0
 ip address 10.0.0.6 255.255.255.252
 ip ospf area 0
 ip ospf cost 100
interface e1
 ip address 10.0.0.10 255.255.255.252
 ip ospf area 0
 ip ospf cost 10
router ospf 1
""",
}


class TestDatalogModel:
    def test_ospf_prefers_cheap_path(self):
        """a -> c's LAN should go via b (10+10) not the direct 100 link."""
        snapshot = load_snapshot_from_texts(OSPF_TRIANGLE)
        result = compute_dataplane_datalog(snapshot)
        from repro.hdr.ip import Prefix

        target = Prefix("172.16.3.0/24")
        next_hops = {m for n, p, m in result.forwards if n == "a" and p == target}
        assert next_hops == {"b"}

    def test_static_and_null_routes(self):
        configs = {
            "a": """
hostname a
interface e0
 ip address 10.0.0.1 255.255.255.252
ip route 192.168.0.0 255.255.0.0 10.0.0.2
ip route 172.31.0.0 255.255.0.0 Null0
""",
            "b": """
hostname b
interface e0
 ip address 10.0.0.2 255.255.255.252
""",
        }
        snapshot = load_snapshot_from_texts(configs)
        result = compute_dataplane_datalog(snapshot)
        from repro.hdr.ip import Prefix

        assert ("a", Prefix("192.168.0.0/16"), "b") in result.forwards
        assert ("a", Prefix("172.31.0.0/16")) in result.drops

    def test_retains_suboptimal_intermediates(self):
        """Lesson 1: the Datalog model derives and keeps routes for many
        cost values, not just the best ones."""
        snapshot = load_snapshot_from_texts(net1(num_spurs=3))
        result = compute_dataplane_datalog(snapshot)
        ospf_routes = result.engine.facts("OspfRoute")
        best_routes = result.engine.facts("BestOspf")
        assert len(ospf_routes) > len(best_routes)
        assert result.total_facts > len(best_routes) * 2


class TestAgreementWithImperativeEngine:
    @pytest.mark.parametrize("spurs", [2, 3, 4])
    def test_forwarding_next_hops_match(self, spurs):
        """On NET1-class networks, the Datalog model and the imperative
        engine must produce the same next-hop relation — this is how we
        know the Figure 3 speedup compares equal work."""
        snapshot = load_snapshot_from_texts(net1(num_spurs=spurs))
        datalog = compute_dataplane_datalog(snapshot)
        imperative = compute_dataplane(snapshot)
        fibs = compute_fibs(imperative)
        # Imperative (node, prefix, next_hop_node) relation.
        ip_owner = {}
        for hostname in snapshot.hostnames():
            for _n, address, _l in snapshot.device(hostname).interface_ips():
                ip_owner[address] = hostname
        imperative_forwards = set()
        for hostname, fib in fibs.items():
            for prefix, entries in fib.entries():
                for entry in entries:
                    if entry.action is not FibActionType.FORWARD:
                        continue
                    if entry.arp_ip is None:
                        continue  # connected: datalog model omits these
                    neighbor = ip_owner.get(entry.arp_ip)
                    if neighbor:
                        imperative_forwards.add((hostname, prefix, neighbor))
        assert datalog.forwards == imperative_forwards
