"""Tests for the difference-of-cubes representation and the NoD-style
verifier, including cross-validation against the BDD engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.loader import load_snapshot_from_texts
from repro.config.model import Acl, AclLine, Action
from repro.dataplane.fib import compute_fibs
from repro.hdr import fields as f
from repro.hdr.ip import Ip, Prefix
from repro.hdr.packet import Packet
from repro.original.cubes import (
    FULL_CUBE,
    Cube,
    CubeSet,
    DiffCube,
    acl_permit_cubes,
    field_cube,
    pack_packet,
    prefix_cube,
)
from repro.original.nod import CubeVerifier
from repro.routing.engine import compute_dataplane
from repro.synth.special import net1


class TestCube:
    def test_full_cube_matches_everything(self):
        assert FULL_CUBE.matches(pack_packet(Packet(dst_ip=Ip("1.2.3.4"))))

    def test_field_cube(self):
        cube = field_cube(f.IP_PROTOCOL, f.PROTO_TCP)
        assert cube.matches(pack_packet(Packet(ip_protocol=f.PROTO_TCP)))
        assert not cube.matches(pack_packet(Packet(ip_protocol=f.PROTO_UDP)))

    def test_prefix_cube(self):
        cube = prefix_cube(f.DST_IP, Prefix("10.0.0.0/8"))
        assert cube.matches(pack_packet(Packet(dst_ip=Ip("10.1.2.3"))))
        assert not cube.matches(pack_packet(Packet(dst_ip=Ip("11.0.0.1"))))

    def test_intersect_conflicting_is_none(self):
        a = field_cube(f.IP_PROTOCOL, 6)
        b = field_cube(f.IP_PROTOCOL, 17)
        assert a.intersect(b) is None

    def test_intersect_combines(self):
        a = prefix_cube(f.DST_IP, Prefix("10.0.0.0/8"))
        b = field_cube(f.DST_PORT, 80)
        both = a.intersect(b)
        assert both.matches(pack_packet(Packet(dst_ip=Ip("10.1.1.1"), dst_port=80)))
        assert not both.matches(pack_packet(Packet(dst_ip=Ip("10.1.1.1"), dst_port=81)))

    def test_contains_cube(self):
        outer = prefix_cube(f.DST_IP, Prefix("10.0.0.0/8"))
        inner = prefix_cube(f.DST_IP, Prefix("10.5.0.0/16"))
        assert outer.contains_cube(inner)
        assert not inner.contains_cube(outer)


class TestCubeSet:
    def test_empty_and_full(self):
        assert CubeSet.empty().is_empty()
        assert not CubeSet.full().is_empty()

    def test_subtract_to_empty(self):
        full = CubeSet.full()
        assert full.subtract_cube(FULL_CUBE).is_empty()

    def test_diff_cube_emptiness_via_split(self):
        base = prefix_cube(f.DST_IP, Prefix("10.0.0.0/8"))
        low, high = Prefix("10.0.0.0/9"), Prefix("10.128.0.0/9")
        term = DiffCube(
            base, (prefix_cube(f.DST_IP, low), prefix_cube(f.DST_IP, high))
        )
        assert term.is_empty()
        partial = DiffCube(base, (prefix_cube(f.DST_IP, low),))
        assert not partial.is_empty()

    def test_sample_avoids_subtractions(self):
        base = prefix_cube(f.DST_IP, Prefix("10.0.0.0/8"))
        minus = prefix_cube(f.DST_IP, Prefix("10.0.0.0/9"))
        cube_set = CubeSet([DiffCube(base, (minus,))])
        packet = cube_set.sample_packet()
        assert Prefix("10.128.0.0/9").contains_ip(packet.dst_ip)

    def test_sample_of_empty_is_none(self):
        assert CubeSet.empty().sample_packet() is None

    def test_intersect_and_contains(self):
        tens = CubeSet.from_cube(prefix_cube(f.DST_IP, Prefix("10.0.0.0/8")))
        web = CubeSet.from_cube(field_cube(f.DST_PORT, 80))
        both = tens.intersect(web)
        assert both.contains_packet(Packet(dst_ip=Ip("10.1.1.1"), dst_port=80))
        assert not both.contains_packet(Packet(dst_ip=Ip("10.1.1.1"), dst_port=22))

    @given(
        st.integers(0, 0xFFFFFFFF), st.integers(0, 16),
        st.integers(0, 0xFFFFFFFF), st.integers(0, 16),
        st.integers(0, 0xFFFFFFFF),
    )
    @settings(max_examples=100, deadline=None)
    def test_subtract_agrees_with_membership(self, net_a, len_a, net_b, len_b, probe):
        a = CubeSet.from_cube(prefix_cube(f.DST_IP, Prefix(net_a, len_a)))
        b = CubeSet.from_cube(prefix_cube(f.DST_IP, Prefix(net_b, len_b)))
        diff = a.subtract(b)
        packet = Packet(dst_ip=Ip(probe))
        expected = a.contains_packet(packet) and not b.contains_packet(packet)
        assert diff.contains_packet(packet) == expected


class TestAclCubes:
    def test_acl_cube_agrees_with_concrete(self):
        from repro.dataplane.acl import evaluate_acl

        acl = Acl(
            name="t",
            lines=[
                AclLine(action=Action.DENY, src=Prefix("10.9.0.0/16")),
                AclLine(
                    action=Action.PERMIT, protocol=f.PROTO_TCP,
                    dst_ports=((80, 80),),
                ),
            ],
        )
        cubes = acl_permit_cubes(acl)
        for packet in (
            Packet(src_ip=Ip("10.9.1.1"), dst_port=80),
            Packet(src_ip=Ip("10.8.1.1"), dst_port=80),
            Packet(src_ip=Ip("10.8.1.1"), dst_port=22),
            Packet(src_ip=Ip("10.8.1.1"), dst_port=80, ip_protocol=f.PROTO_UDP),
        ):
            assert cubes.contains_packet(packet) == evaluate_acl(acl, packet).permitted


class TestCubeVerifier:
    @pytest.fixture(scope="class")
    def prepared(self):
        snapshot = load_snapshot_from_texts(net1(num_spurs=3))
        dataplane = compute_dataplane(snapshot)
        fibs = compute_fibs(dataplane)
        return dataplane, fibs

    def test_reachability_splits_success_failure(self, prepared):
        dataplane, fibs = prepared
        verifier = CubeVerifier(dataplane, fibs)
        hostname = dataplane.snapshot.hostnames()[0]
        iface = next(iter(dataplane.snapshot.device(hostname).interfaces))
        success, failure = verifier.reachability(hostname, iface, CubeSet.full())
        assert not success.is_empty()

    def test_multipath_matches_bdd_engine(self, prepared):
        from repro.reachability.queries import NetworkAnalyzer

        dataplane, fibs = prepared
        cube_violations = CubeVerifier(dataplane, fibs).multipath_consistency()
        bdd_violations = NetworkAnalyzer(dataplane, fibs=fibs).multipath_consistency()
        cube_sources = {v.source for v in cube_violations}
        bdd_sources = {(v.source[1], v.source[2]) for v in bdd_violations}
        assert cube_sources == bdd_sources

    def test_violation_examples_are_real(self, prepared):
        """Sampled counterexamples must reproduce under traceroute: both
        a successful and a failing path exist."""
        from repro.reachability.graph import Disposition
        from repro.traceroute.engine import TracerouteEngine

        dataplane, fibs = prepared
        verifier = CubeVerifier(dataplane, fibs)
        violations = verifier.multipath_consistency()
        assert violations
        tracer = TracerouteEngine(dataplane, fibs)
        violation = violations[0]
        packet = violation.example
        assert packet is not None
        traces = tracer.trace(packet, violation.source[0], violation.source[1])
        dispositions = {t.disposition for t in traces}
        success = {
            Disposition.DELIVERED, Disposition.ACCEPTED, Disposition.EXITS_NETWORK
        }
        assert dispositions & success
        assert dispositions - success
