"""Tests for the Datalog engine (the LogicBlox stand-in)."""

import pytest

from repro.original.datalog import (
    DatalogEngine,
    DatalogError,
    Rule,
    Var,
    add,
    atom,
    le,
    lt,
    ne,
)

X, Y, Z, C, C2 = Var("X"), Var("Y"), Var("Z"), Var("C"), Var("C2")


class TestBasics:
    def test_facts(self):
        engine = DatalogEngine()
        engine.add_fact("edge", "a", "b")
        assert engine.facts("edge") == {("a", "b")}
        assert engine.facts("missing") == set()

    def test_duplicate_fact_counted_once(self):
        engine = DatalogEngine()
        engine.add_fact("n", 1)
        engine.add_fact("n", 1)
        assert engine.total_facts() == 1

    def test_transitive_closure(self):
        engine = DatalogEngine()
        for a, b in [("a", "b"), ("b", "c"), ("c", "d")]:
            engine.add_fact("edge", a, b)
        engine.add_rule(Rule(head=atom("path", X, Y), body=[atom("edge", X, Y)]))
        engine.add_rule(
            Rule(
                head=atom("path", X, Z),
                body=[atom("edge", X, Y), atom("path", Y, Z)],
            )
        )
        engine.run()
        assert ("a", "d") in engine.facts("path")
        assert len(engine.facts("path")) == 6

    def test_cyclic_closure_terminates(self):
        engine = DatalogEngine()
        for a, b in [("a", "b"), ("b", "a")]:
            engine.add_fact("edge", a, b)
        engine.add_rule(Rule(head=atom("path", X, Y), body=[atom("edge", X, Y)]))
        engine.add_rule(
            Rule(
                head=atom("path", X, Z),
                body=[atom("edge", X, Y), atom("path", Y, Z)],
            )
        )
        engine.run()
        assert ("a", "a") in engine.facts("path")


class TestBuiltins:
    def test_arithmetic_with_bound(self):
        engine = DatalogEngine()
        engine.add_fact("cost", "a", 1)
        engine.add_fact("step", 1)
        engine.add_rule(
            Rule(
                head=atom("cost", "a", C2),
                body=[atom("cost", "a", C), atom("step", X)],
                builtins=[add(C, X, C2), le(C2, 5)],
            )
        )
        engine.run()
        assert engine.facts("cost") == {("a", c) for c in range(1, 6)}

    def test_comparison_filters(self):
        engine = DatalogEngine()
        engine.add_fact("n", 1)
        engine.add_fact("n", 5)
        engine.add_rule(
            Rule(head=atom("small", X), body=[atom("n", X)], builtins=[lt(X, 3)])
        )
        engine.add_rule(
            Rule(head=atom("notone", X), body=[atom("n", X)], builtins=[ne(X, 1)])
        )
        engine.run()
        assert engine.facts("small") == {(1,)}
        assert engine.facts("notone") == {(5,)}

    def test_unbound_comparison_raises(self):
        engine = DatalogEngine()
        engine.add_fact("n", 1)
        engine.add_rule(
            Rule(head=atom("bad", X), body=[atom("n", X)], builtins=[lt(X, Y)])
        )
        with pytest.raises(DatalogError):
            engine.run()


class TestNegation:
    def test_stratified_min_selection(self):
        """The best-route idiom: Best = Cost minus those with a better
        alternative."""
        engine = DatalogEngine()
        for dest, cost in [("d", 10), ("d", 5), ("d", 7), ("e", 3)]:
            engine.add_fact("cost", dest, cost)
        engine.add_rule(
            Rule(
                head=atom("better", X, C),
                body=[atom("cost", X, C), atom("cost", X, C2)],
                builtins=[lt(C2, C)],
            )
        )
        engine.add_rule(
            Rule(
                head=atom("best", X, C),
                body=[atom("cost", X, C)],
                negated=[atom("better", X, C)],
            )
        )
        engine.run()
        assert engine.facts("best") == {("d", 5), ("e", 3)}

    def test_negation_cycle_rejected(self):
        engine = DatalogEngine()
        engine.add_fact("seed", 1)
        engine.add_rule(
            Rule(head=atom("p", X), body=[atom("seed", X)], negated=[atom("q", X)])
        )
        engine.add_rule(
            Rule(head=atom("q", X), body=[atom("seed", X)], negated=[atom("p", X)])
        )
        with pytest.raises(DatalogError):
            engine.run()

    def test_unbound_negated_var_raises(self):
        engine = DatalogEngine()
        engine.add_fact("seed", 1)
        engine.add_rule(
            Rule(head=atom("p", X), body=[atom("seed", X)], negated=[atom("q", Y)])
        )
        with pytest.raises(DatalogError):
            engine.run()

    def test_unbound_head_var_raises(self):
        engine = DatalogEngine()
        engine.add_fact("seed", 1)
        engine.add_rule(Rule(head=atom("p", X, Y), body=[atom("seed", X)]))
        with pytest.raises(DatalogError):
            engine.run()


class TestLessonOneProperties:
    def test_intermediate_facts_are_retained(self):
        """The engine keeps sub-optimal cost facts — the Lesson 1 memory
        pathology."""
        engine = DatalogEngine()
        engine.add_fact("cost", "d", 10)
        engine.add_fact("cost", "d", 5)
        engine.add_rule(
            Rule(
                head=atom("better", X, C),
                body=[atom("cost", X, C), atom("cost", X, C2)],
                builtins=[lt(C2, C)],
            )
        )
        engine.add_rule(
            Rule(
                head=atom("best", X, C),
                body=[atom("cost", X, C)],
                negated=[atom("better", X, C)],
            )
        )
        engine.run()
        # Both cost facts remain even though only one is best.
        assert len(engine.facts("cost")) == 2
        assert engine.total_facts() >= 4
