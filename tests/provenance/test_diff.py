"""First-divergence diffing and the imperative-vs-Datalog fidelity check.

Unit-level coverage of :func:`first_divergence` plus the end-to-end
direction: :func:`validate_imperative_against_datalog` passes on NET1
(where both engines agree) and, on a network deliberately outside the
Datalog model's feature set (a static route whose next hop must be
resolved recursively through OSPF), produces a mismatch whose report
carries both provenance trees and a located first divergence.
"""

import pytest

from repro import obs
from repro.config.loader import load_snapshot_from_texts
from repro.fidelity.differential import validate_imperative_against_datalog
from repro.provenance import record as prov
from repro.provenance.diff import (
    Divergence,
    first_divergence,
    render_divergence_report,
)
from repro.provenance.model import DerivationNode, DerivationTree
from repro.synth.special import net1


@pytest.fixture(autouse=True)
def clean():
    prov.disable()
    obs.disable()
    obs.reset()
    yield
    prov.disable()
    obs.disable()
    obs.reset()


def tree(root: DerivationNode) -> DerivationTree:
    return DerivationTree(node="n", prefix="10.0.0.0/24", root=root, events=())


def node(label: str, *children: DerivationNode) -> DerivationNode:
    made = DerivationNode(label=label, kind="test")
    for child in children:
        made.children.append(child)
    return made


class TestFirstDivergence:
    def test_identical_trees_have_no_divergence(self):
        left = tree(node("root", node("a", node("b"))))
        right = tree(node("root", node("a", node("b"))))
        assert first_divergence(left, right) is None

    def test_differing_root_labels_alone_are_not_a_divergence(self):
        # Roots name the engines ("imperative fib: ..." vs "datalog
        # Forward: ...") and always differ textually.
        left = tree(node("imperative engine", node("a")))
        right = tree(node("datalog engine", node("a")))
        assert first_divergence(left, right) is None

    def test_differing_child_is_located(self):
        left = tree(node("root", node("a", node("via r2"))))
        right = tree(node("root", node("a", node("via r3"))))
        divergence = first_divergence(left, right)
        assert divergence is not None
        assert divergence.left == "via r2"
        assert divergence.right == "via r3"
        assert divergence.path[-1] == "a"

    def test_extra_child_reports_absent_side(self):
        left = tree(node("root", node("a"), node("b")))
        right = tree(node("root", node("a")))
        divergence = first_divergence(left, right)
        assert divergence is not None
        assert divergence.left == "b"
        assert divergence.right is None

    def test_missing_child_reports_other_absent_side(self):
        left = tree(node("root", node("a")))
        right = tree(node("root", node("a"), node("b")))
        divergence = first_divergence(left, right)
        assert divergence is not None
        assert divergence.left is None
        assert divergence.right == "b"

    def test_render_report_contains_both_trees_and_location(self):
        left = tree(node("root", node("a", node("via r2"))))
        right = tree(node("root", node("a", node("via r3"))))
        divergence = first_divergence(left, right)
        report = render_divergence_report(left, right, divergence)
        assert "first divergence at" in report
        assert "-- left tree --" in report
        assert "-- right tree --" in report
        assert "via r2" in report and "via r3" in report

    def test_describe_handles_absent_sides(self):
        divergence = Divergence(path=("root",), left="x", right=None)
        assert "(absent)" in divergence.describe()


class TestImperativeVsDatalog:
    def test_net1_engines_agree(self):
        snapshot = load_snapshot_from_texts(net1(num_spurs=3))
        report = validate_imperative_against_datalog(snapshot)
        assert report.passed
        assert report.checks > 0
        assert report.mismatches == []
        assert "agree" in report.describe()

    def test_bgp_route_forces_located_mismatch(self):
        # r1 learns 192.168.50.0/24 from r2 over eBGP. The imperative
        # engine supports BGP and forwards; the original Datalog model
        # predates BGP support entirely, so it derives no Forward tuple
        # for that prefix. The disagreement must surface as a mismatch
        # carrying both derivation trees and a located first divergence.
        configs = {
            "r1.cfg": """
hostname r1
interface eth0
 ip address 10.0.12.1 255.255.255.0
router bgp 65001
 bgp router-id 1.1.1.1
 neighbor 10.0.12.2 remote-as 65002
""",
            "r2.cfg": """
hostname r2
interface eth0
 ip address 10.0.12.2 255.255.255.0
interface eth1
 ip address 192.168.50.1 255.255.255.0
router bgp 65002
 bgp router-id 2.2.2.2
 neighbor 10.0.12.1 remote-as 65001
 network 192.168.50.0 mask 255.255.255.0
""",
        }
        snapshot = load_snapshot_from_texts(configs)
        report = validate_imperative_against_datalog(snapshot)
        assert not report.passed
        targets = [
            m
            for m in report.mismatches
            if m.node == "r1" and m.prefix == "192.168.50.0/24"
        ]
        assert targets, report.describe()
        mismatch = targets[0]
        assert mismatch.imperative_next_hops
        assert not mismatch.datalog_next_hops
        assert not mismatch.imperative_tree.empty
        assert mismatch.divergence is not None
        described = mismatch.describe()
        assert "first divergence" in described
        assert "-- left tree --" in described and "-- right tree --" in described
        assert "first divergence" in report.describe()

    def test_validation_leaves_recording_disabled(self):
        snapshot = load_snapshot_from_texts(net1(num_spurs=2))
        validate_imperative_against_datalog(snapshot)
        assert not prov.enabled()
        assert prov.recorder() is None
