"""Derivation trees from ``Session.explain_route`` / ``explain_flow``.

Covers the acceptance bar: non-empty trees on two different synthetic
networks (an OSPF lab and the 3-node static-route traceroute lab), flow
explanations whose hop/ACL sequence matches the traceroute engine's
actual path, and suppressed-alternative reporting.
"""

import pytest

from repro import obs
from repro.core.session import Session
from repro.hdr.ip import Ip
from repro.hdr.packet import Packet
from repro.provenance import Flow
from repro.provenance import record as prov

OSPF_LAB = {
    "r1.cfg": """
hostname r1
interface eth0
 ip address 10.0.12.1 255.255.255.0
interface lo0
 ip address 1.1.1.1 255.255.255.255
router ospf 1
 network 10.0.12.0 0.0.0.255 area 0
 network 1.1.1.1 0.0.0.0 area 0
""",
    "r2.cfg": """
hostname r2
interface eth0
 ip address 10.0.12.2 255.255.255.0
interface lo0
 ip address 2.2.2.2 255.255.255.255
router ospf 1
 network 10.0.12.0 0.0.0.255 area 0
 network 2.2.2.2 0.0.0.0 area 0
""",
}

# The 3-node lab from tests/traceroute/test_lab3.py: edge -> core -> leaf
# with a telnet-denying egress ACL on core.
LAB3 = {
    "edge.cfg": """
hostname edge
interface eth0
 ip address 10.0.1.1 255.255.255.0
interface eth1
 ip address 10.0.12.1 255.255.255.0
ip route 10.0.2.0 255.255.255.0 10.0.12.2
ip route 10.0.23.0 255.255.255.0 10.0.12.2
""",
    "core.cfg": """
hostname core
interface eth0
 ip address 10.0.12.2 255.255.255.0
interface eth1
 ip address 10.0.23.1 255.255.255.0
 ip access-group CORE_OUT out
ip route 10.0.1.0 255.255.255.0 10.0.12.1
ip route 10.0.2.0 255.255.255.0 10.0.23.2
ip access-list extended CORE_OUT
 deny tcp any any eq 23
 permit ip any any
""",
    "leaf.cfg": """
hostname leaf
interface eth0
 ip address 10.0.23.2 255.255.255.0
interface eth1
 ip address 10.0.2.1 255.255.255.0
ip route 10.0.1.0 255.255.255.0 10.0.23.1
""",
}


@pytest.fixture(autouse=True)
def clean():
    prov.disable()
    obs.disable()
    obs.reset()
    yield
    prov.disable()
    obs.disable()
    obs.reset()


class TestExplainRoute:
    def test_ospf_route_tree_is_nonempty_and_attributed(self):
        session = Session.from_texts(OSPF_LAB)
        tree = session.explain_route("r1", "2.2.2.2/32")
        assert not tree.empty
        rendered = tree.render()
        assert "fib: 2.2.2.2/32" in rendered
        assert "[ospf] installed" in rendered
        assert "[main-rib] best" in rendered
        assert "neighbor 10.0.12.2" in rendered

    def test_static_route_tree_is_nonempty_on_lab3(self):
        session = Session.from_texts(LAB3)
        tree = session.explain_route("edge", "10.0.2.0/24")
        assert not tree.empty
        rendered = tree.render()
        assert "static" in rendered
        assert "[fib] resolved" in rendered

    def test_unknown_prefix_explains_absence(self):
        session = Session.from_texts(LAB3)
        tree = session.explain_route("edge", "203.0.113.0/24")
        assert "no route and no recorded derivation" in tree.render()

    def test_repeated_explains_reuse_one_recording(self):
        session = Session.from_texts(OSPF_LAB)
        first = session.explain_route("r1", "2.2.2.2/32")
        recorder, _dp, _fibs = session._recorded_derivation()
        second = session.explain_route("r2", "1.1.1.1/32")
        assert session._recorded_derivation()[0] is recorder
        assert not first.empty and not second.empty


class TestExplainFlow:
    def test_flow_path_matches_traceroute_engine(self):
        session = Session.from_texts(LAB3)
        packet = Packet(
            src_ip=Ip("10.0.1.5"), dst_ip=Ip("10.0.2.9"), dst_port=443
        )
        flow = Flow(
            packet=packet, ingress_node="edge", ingress_interface="eth0"
        )
        explanation = session.explain_flow(flow)
        traces = session.traceroute(packet, "edge", "eth0")
        assert not explanation.empty
        assert len(explanation.paths) == len(traces)
        for path, trace in zip(explanation.paths, traces):
            assert path.disposition == trace.disposition.value
            assert path.hop_nodes() == trace.path_nodes()
        assert explanation.paths[0].hop_nodes() == ["edge", "core", "leaf"]

    def test_denied_flow_carries_per_line_acl_walk(self):
        session = Session.from_texts(LAB3)
        packet = Packet(
            src_ip=Ip("10.0.1.5"), dst_ip=Ip("10.0.2.9"), dst_port=23
        )
        explanation = session.explain_flow(
            Flow(packet=packet, ingress_node="edge", ingress_interface="eth0")
        )
        assert explanation.paths[0].disposition == "denied-out"
        assert explanation.paths[0].hop_nodes() == ["edge", "core"]
        acl_steps = [
            step
            for path in explanation.paths
            for hop in path.hops
            for step in hop.steps
            if step.kind == "acl"
        ]
        assert acl_steps, "denied flow must show the ACL decision"
        # The ordered line walk: line 0 matched and denied telnet.
        deny_step = next(s for s in acl_steps if "CORE_OUT" in s.detail)
        assert deny_step.lines
        assert any("matched -> deny" in line for line in deny_step.lines)

    def test_permitted_flow_shows_skipped_lines(self):
        session = Session.from_texts(LAB3)
        packet = Packet(
            src_ip=Ip("10.0.1.5"), dst_ip=Ip("10.0.2.9"), dst_port=443
        )
        explanation = session.explain_flow(
            Flow(packet=packet, ingress_node="edge", ingress_interface="eth0")
        )
        acl_steps = [
            step
            for path in explanation.paths
            for hop in path.hops
            for step in hop.steps
            if step.kind == "acl"
        ]
        deny_then_permit = next(s for s in acl_steps if "CORE_OUT" in s.detail)
        # line 0 (deny telnet) evaluated and skipped, line 1 matched.
        assert any("line 0" in line and "no match" in line
                   for line in deny_then_permit.lines)
        assert any("matched -> permit" in line
                   for line in deny_then_permit.lines)

    def test_plain_traceroute_has_no_line_detail(self):
        session = Session.from_texts(LAB3)
        packet = Packet(
            src_ip=Ip("10.0.1.5"), dst_ip=Ip("10.0.2.9"), dst_port=23
        )
        traces = session.traceroute(packet, "edge", "eth0")
        for trace in traces:
            for hop in trace.hops:
                for step in hop.steps:
                    assert step.lines == ()

    def test_analyzer_explain_example_matches_session_explain_flow(self):
        session = Session.from_texts(LAB3)
        packet = Packet(
            src_ip=Ip("10.0.1.5"), dst_ip=Ip("10.0.2.9"), dst_port=443
        )
        via_analyzer = session.analyzer.explain_example(packet, "edge", "eth0")
        via_session = session.explain_flow(
            Flow(packet=packet, ingress_node="edge", ingress_interface="eth0")
        )
        assert via_analyzer.render() == via_session.render()


class TestSuppressedAlternatives:
    def test_losing_protocol_appears_as_suppressed(self):
        # Same prefix from OSPF and from a static route: static wins on
        # admin distance, OSPF shows up as the suppressed alternative.
        configs = {
            "r1.cfg": """
hostname r1
interface eth0
 ip address 10.0.12.1 255.255.255.0
ip route 10.0.2.0 255.255.255.0 10.0.12.2
router ospf 1
 network 10.0.12.0 0.0.0.255 area 0
""",
            "r2.cfg": """
hostname r2
interface eth0
 ip address 10.0.12.2 255.255.255.0
interface eth1
 ip address 10.0.2.1 255.255.255.0
router ospf 1
 network 10.0.12.0 0.0.0.255 area 0
 network 10.0.2.0 0.0.0.255 area 0
""",
        }
        session = Session.from_texts(configs)
        tree = session.explain_route("r1", "10.0.2.0/24")
        rendered = tree.render()
        assert "suppressed alternatives" in rendered
        assert "lost best selection" in rendered
        assert tree.suppressions()
