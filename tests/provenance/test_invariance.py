"""Provenance recording must never change analysis results.

Mirror of ``tests/obs/test_invariance.py`` for the provenance layer:
recording on, recording off, or an explain call in between all produce
byte-identical pipeline outputs (serialized FIBs) and identical query
answers. Recording is also required to restore the previous recorder on
exit — including across exceptions and nesting.
"""

import pytest

from repro import obs
from repro.config.loader import load_snapshot_from_texts
from repro.dataplane.fib import compute_fibs
from repro.provenance import record as prov
from repro.routing.engine import compute_dataplane

CONFIGS = {
    "edge.cfg": """
hostname edge
interface eth0
 ip address 10.0.0.1 255.255.255.0
 ip access-group EDGE_IN in
interface eth1
 ip address 10.0.12.1 255.255.255.0
ip route 10.0.2.0 255.255.255.0 10.0.12.2
ip access-list extended EDGE_IN
 deny tcp any any eq 23
 permit ip any any
router ospf 1
 network 10.0.12.0 0.0.0.255 area 0
""",
    "core.cfg": """
hostname core
interface eth0
 ip address 10.0.12.2 255.255.255.0
interface eth1
 ip address 10.0.2.1 255.255.255.0
router ospf 1
 network 10.0.12.0 0.0.0.255 area 0
 network 10.0.2.0 0.0.0.255 area 0
""",
}


@pytest.fixture(autouse=True)
def prov_clean():
    prov.disable()
    obs.disable()
    obs.reset()
    yield
    prov.disable()
    obs.disable()
    obs.reset()


def fib_description() -> bytes:
    """Deterministic byte serialization of the pipeline's FIBs."""
    snapshot = load_snapshot_from_texts(CONFIGS)
    dataplane = compute_dataplane(snapshot)
    fibs = compute_fibs(dataplane)
    lines = []
    for hostname in sorted(fibs):
        lines.append(hostname)
        for prefix, entries in fibs[hostname].entries():
            for rendered in sorted(entry.describe() for entry in entries):
                lines.append(f"  {prefix}: {rendered}")
    return "\n".join(lines).encode()


class TestRecordingInvariance:
    def test_fibs_identical_recording_on_vs_off(self):
        baseline = fib_description()
        with prov.recording() as recorder:
            recorded = fib_description()
        unrecorded_again = fib_description()
        assert baseline == recorded == unrecorded_again
        assert len(recorder) > 0  # the recording did capture derivations

    def test_recording_restores_previous_state_on_exception(self):
        assert not prov.enabled()
        with pytest.raises(RuntimeError):
            with prov.recording():
                assert prov.enabled()
                raise RuntimeError("boom")
        assert not prov.enabled()
        assert prov.recorder() is None

    def test_nested_recordings_compose(self):
        with prov.recording() as outer:
            prov.route_event("a", "10.0.0.0/24", "static", "installed", "x")
            with prov.recording() as inner:
                prov.route_event("b", "10.0.0.0/24", "static", "installed", "y")
            # Inner recording must not leak into the outer one, and the
            # outer recorder must be live again after the inner exits.
            prov.route_event("a", "10.0.1.0/24", "static", "installed", "z")
        assert [e.node for e in outer.events] == ["a", "a"]
        assert [e.node for e in inner.events] == ["b"]

    def test_query_answers_identical_with_and_without_explain(self):
        from repro.core.session import Session

        plain = Session.from_texts(CONFIGS)
        plain_count = plain.encoder.engine.sat_count(
            plain.reachability().success_set()
        )

        explained = Session.from_texts(CONFIGS)
        tree = explained.explain_route("edge", "10.0.2.0/24")
        assert not tree.empty
        explained_count = explained.encoder.engine.sat_count(
            explained.reachability().success_set()
        )
        assert plain_count == explained_count
        assert not prov.enabled()  # explain left recording off

    def test_recording_emits_obs_counters_when_tracing(self, tmp_path):
        obs.enable(str(tmp_path / "trace.jsonl"))
        with prov.recording():
            prov.route_event("a", "10.0.0.0/24", "static", "installed", "x")
        counters = obs.metrics_dump()["counters"]
        assert counters.get("provenance.recordings") == 1
        assert counters.get("provenance.route_events") == 1

    def test_disabled_recording_records_nothing(self):
        assert not prov.enabled()
        prov.route_event("a", "10.0.0.0/24", "static", "installed", "x")
        assert prov.recorder() is None
