"""Uncovered-stanza risk reporting and witness-packet generation: the
blind-spot report surfaces a genuinely unexercised ACL line on a
registry network, and the synthesized witness, when traced, exercises
exactly that line (asserted via the provenance step lines)."""

import pytest

from repro import obs
from repro.core.session import Session
from repro.hdr.ip import Ip
from repro.hdr.packet import Packet
from repro.obs.context import attribution
from repro.provenance import Flow
from repro.questions import coverage as qcov
from repro.synth.networks import NETWORKS

SHADOWED = """
hostname shade
interface Ethernet0
 ip address 10.0.0.1 255.255.255.0
 ip access-group BLOCKY in
!
ip access-list extended BLOCKY
 deny ip any any
 permit tcp any any eq 80
!
"""


@pytest.fixture(autouse=True)
def obs_clean():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def net1_session():
    spec = next(spec for spec in NETWORKS if spec.name == "NET1")
    return Session.from_texts(spec.generate(1))


def packet_from_witness(witness):
    raw = witness["packet"]
    return Packet(
        src_ip=Ip(raw["src_ip"]),
        dst_ip=Ip(raw["dst_ip"]),
        ip_protocol=raw["ip_protocol"],
        src_port=raw["src_port"],
        dst_port=raw["dst_port"],
    )


class TestUncoveredReport:
    def test_reachability_leaves_acl_lines_uncovered(self):
        """The acceptance path: reachability exercises every interface
        on NET1 but no ACL line, so the blind-spot report must surface
        SPUR_FILTER's lines with file:line provenance, risk-ranked
        ahead of interfaces."""
        obs.enable_metrics()
        session = net1_session()
        with attribution("reachability"):
            session.reachability()
        report = qcov.uncovered_stanzas(obs.coverage(), session.snapshot)
        assert report.touched["interface"] == report.totals["interface"] > 0
        assert report.touched["acl_line"] == 0
        acl_stanzas = [s for s in report.stanzas if s.kind == "acl_line"]
        assert {(s.hostname, s.name, s.index) for s in acl_stanzas} == {
            ("net1-core0", "SPUR_FILTER", 0),
            ("net1-core0", "SPUR_FILTER", 1),
        }
        for stanza in acl_stanzas:
            assert stanza.source_file and stanza.source_line > 0
        # Risk order: ACL lines lead the ranked list.
        assert report.stanzas[0].kind == "acl_line"
        doc = report.to_json()
        assert doc["uncovered_total"] == len(report.stanzas)
        assert any(
            s["kind"] == "acl_line" and "source" in s for s in doc["stanzas"]
        )

    def test_lint_covers_the_acl_lines(self):
        obs.enable_metrics()
        session = net1_session()
        session.lint()
        report = qcov.uncovered_stanzas(obs.coverage(), session.snapshot)
        assert report.touched["acl_line"] == report.totals["acl_line"] == 2
        matrix = qcov.attribution_matrix(obs.coverage(), session.snapshot)
        assert matrix["lint"]["acl_line"]["ratio"] == 1.0


class TestWitnessGeneration:
    def test_witness_traced_exercises_exact_line(self):
        """Each reachable uncovered ACL line gets a concrete probe;
        tracing the probe from the suggested injection point must walk
        the ACL and match exactly the witnessed line."""
        obs.enable_metrics()
        session = net1_session()
        with attribution("reachability"):
            session.reachability()
        report = qcov.uncovered_stanzas(
            obs.coverage(), session.snapshot, witnesses=8
        )
        witnessed = [
            s for s in report.stanzas
            if s.kind == "acl_line" and s.witness is not None
        ]
        assert witnessed, "reachable uncovered ACL lines must get witnesses"
        for stanza in witnessed:
            assert stanza.reachable is True
            inject = stanza.witness["inject"]
            assert inject["node"] == stanza.hostname
            device = session.snapshot.device(stanza.hostname)
            packet = packet_from_witness(stanza.witness)
            if inject["direction"] == "in":
                ingress = inject["interface"]
            else:
                ingress = next(
                    name for name in sorted(device.interfaces)
                    if name != inject["interface"]
                    and device.interfaces[name].prefix is not None
                    and not name.startswith("Loopback")
                )
            explanation = session.explain_flow(Flow(
                packet=packet,
                ingress_node=stanza.hostname,
                ingress_interface=ingress,
            ))
            expected = f"line {stanza.index} ["
            matched = [
                line
                for path in explanation.paths
                for hop in path.hops
                for step in hop.steps
                if step.kind == "acl" and stanza.name in step.detail
                for line in step.lines
                if line.startswith(expected) and "matched" in line
            ]
            assert matched, (
                f"witness for {stanza.label} did not exercise line "
                f"{stanza.index}: {explanation.paths}"
            )

    def test_shadowed_line_yields_no_witness(self):
        session = Session.from_texts({"shade": SHADOWED})
        device = session.snapshot.device("shade")
        assert qcov.witness_for_acl_line(device, "BLOCKY", 1) is None
        witness = qcov.witness_for_acl_line(device, "BLOCKY", 0)
        assert witness is not None
        assert witness["inject"]["direction"] == "in"

    def test_witness_budget_is_respected(self):
        obs.enable_metrics()
        session = net1_session()  # nothing run: everything uncovered
        report = qcov.uncovered_stanzas(
            obs.coverage(), session.snapshot, witnesses=1
        )
        witnessed = [s for s in report.stanzas if s.witness is not None]
        assert len(witnessed) == 1


class TestCoverageGate:
    def test_gate_battery_measures_net1(self):
        obs.enable_metrics()
        spec = next(spec for spec in NETWORKS if spec.name == "NET1")
        measured = qcov.gate_battery(spec, scale=1)
        assert measured["reachability"]["interface"][0] > 0
        touched, total = measured["lint"]["acl_line"]
        assert touched == total == 2

    def test_gate_diff_exact_match_and_drift(self):
        baseline = {
            "schema": qcov.BASELINE_SCHEMA,
            "networks": {
                "NET1": {"lint": {"acl_line": [2, 2]}},
            },
        }
        assert qcov.gate_diff(baseline, {
            "NET1": {"lint": {"acl_line": [2, 2]}},
        }) == []
        drift = qcov.gate_diff(baseline, {
            "NET1": {"lint": {"acl_line": [1, 2]}},
            "NET9": {"lint": {"acl_line": [0, 0]}},
        })
        messages = [entry["message"] for entry in drift]
        assert any("baseline [2, 2] != current [1, 2]" in m for m in messages)
        assert any("NET9" in m and "missing from baseline" in m
                   for m in messages)
        sarif = qcov.gate_sarif(drift)
        assert sarif["version"] == "2.1.0"
        results = sarif["runs"][0]["results"]
        assert len(results) == len(drift)
        assert all(r["ruleId"] == "coverage-drift" for r in results)
