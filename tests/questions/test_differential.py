"""Tests for the snapshot-comparison (differential) questions."""

import pytest

from repro import Session
from repro.hdr import fields as f
from repro.hdr.headerspace import PacketEncoder
from repro.questions.differential import compare_reachability, compare_routes
from repro.reachability.queries import NetworkAnalyzer

BEFORE = {
    "r1": """
hostname r1
interface e0
 ip address 10.0.0.1 255.255.255.0
interface lan
 ip address 172.16.1.1 255.255.255.0
ip route 172.16.2.0 255.255.255.0 10.0.0.2
""",
    "r2": """
hostname r2
interface e0
 ip address 10.0.0.2 255.255.255.0
interface lan
 ip address 172.16.2.1 255.255.255.0
ip route 172.16.1.0 255.255.255.0 10.0.0.1
""",
}


def _after_configs():
    configs = dict(BEFORE)
    # The change: r1 gains a route, r2 loses its return route.
    configs["r1"] = configs["r1"] + "ip route 192.168.0.0 255.255.0.0 10.0.0.2\n"
    configs["r2"] = configs["r2"].replace(
        "ip route 172.16.1.0 255.255.255.0 10.0.0.1\n", ""
    )
    return configs


class TestRouteDiff:
    def test_identical_snapshots_empty_diff(self):
        before = Session.from_texts(BEFORE)
        again = Session.from_texts(BEFORE)
        answer = before.route_diff(again)
        assert answer.rows == []
        assert answer.affected_nodes == []

    def test_changes_localized(self):
        before = Session.from_texts(BEFORE)
        after = Session.from_texts(_after_configs())
        answer = before.route_diff(after)
        assert answer.affected_nodes == ["r1", "r2"]
        added = {(row.node, row.description) for row in answer.added()}
        assert any("192.168.0.0/16" in d for n, d in added if n == "r1")
        removed = {(row.node, row.description) for row in answer.removed()}
        assert any("172.16.1.0/24" in d for n, d in removed if n == "r2")

    def test_compare_routes_handles_disjoint_nodes(self):
        before = Session.from_texts(BEFORE)
        extra = dict(BEFORE)
        extra["r3"] = "hostname r3\ninterface e0\n ip address 10.9.0.1 255.255.255.0\n"
        after = Session.from_texts(extra)
        answer = compare_routes(before.dataplane, after.dataplane)
        assert "r3" in answer.affected_nodes


class TestReachabilityDiff:
    def test_lost_flows_detected(self):
        encoder = PacketEncoder()
        before = Session.from_texts(BEFORE)
        after = Session.from_texts(_after_configs())
        analyzer_before = NetworkAnalyzer(before.dataplane, encoder=encoder)
        analyzer_after = NetworkAnalyzer(after.dataplane, encoder=encoder)
        space = encoder.ip_in_prefix(f.DST_IP, "172.16.1.0/24")
        answer = compare_reachability(
            analyzer_before, analyzer_after,
            sources=[("r2", "lan")], headerspace_bdd=space,
        )
        # r2 lost its route back to r1's LAN.
        assert answer.lost
        assert not answer.unchanged
        example = next(iter(answer.lost_examples.values()))
        assert example is not None

    def test_unchanged_when_same(self):
        encoder = PacketEncoder()
        before = Session.from_texts(BEFORE)
        again = Session.from_texts(BEFORE)
        a = NetworkAnalyzer(before.dataplane, encoder=encoder)
        b = NetworkAnalyzer(again.dataplane, encoder=encoder)
        answer = compare_reachability(a, b, sources=[("r1", "lan")])
        assert answer.unchanged

    def test_requires_shared_encoder(self):
        before = Session.from_texts(BEFORE)
        after = Session.from_texts(BEFORE)
        with pytest.raises(ValueError):
            compare_reachability(
                before.analyzer, after.analyzer, sources=[("r1", "lan")]
            )
