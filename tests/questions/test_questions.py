"""Tests for the Lesson 5 question layer and §4.4.1 specialized queries."""

import pytest

from repro.config.loader import load_snapshot_from_texts
from repro.config.model import Action
from repro.hdr import fields as f
from repro.hdr.headerspace import HeaderSpace
from repro.hdr.ip import Ip, Prefix
from repro.hdr.packet import Packet
from repro.questions.configuration import (
    duplicate_ips_question,
    management_plane_consistency,
    undefined_references_question,
    unused_structures_question,
)
from repro.questions.filters import search_filters, unreachable_filter_lines
from repro.questions.filters import test_filter as run_test_filter
from repro.questions.specialized import service_reachable, service_unreachable
from repro.reachability.queries import NetworkAnalyzer
from repro.routing.engine import compute_dataplane

MESSY = {
    "r1": """
hostname r1
interface e0
 ip address 10.0.0.1 255.255.255.0
 ip access-group MISSING in
interface e1
 ip address 10.0.0.1 255.255.255.0
router bgp 65001
 neighbor 10.0.0.2 remote-as 65002
 neighbor 10.0.0.2 route-map ALSO_MISSING out
ip access-list extended DEAD_ACL
 permit ip any any
ip prefix-list DEAD_PL seq 5 permit 10.0.0.0/8
ntp server 192.0.2.1
""",
    "r2": """
hostname r2
interface e0
 ip address 10.0.0.2 255.255.255.0
router bgp 65002
 neighbor 10.0.0.1 remote-as 65001
ip access-list extended SHADOWED
 permit ip 10.0.0.0 0.255.255.255 any
 deny tcp 10.5.0.0 0.0.255.255 any eq 80
 permit ip any any
ntp server 192.0.2.2
""",
}


@pytest.fixture(scope="module")
def snapshot():
    return load_snapshot_from_texts(MESSY)


class TestConfigurationQuestions:
    def test_undefined_references(self, snapshot):
        answer = undefined_references_question(snapshot)
        names = {ref.name for ref in answer.rows}
        assert names == {"MISSING", "ALSO_MISSING"}
        assert set(answer.by_node()) == {"r1"}

    def test_unused_structures(self, snapshot):
        answer = unused_structures_question(snapshot)
        names = {row.name for row in answer.rows}
        assert "DEAD_ACL" in names
        assert "DEAD_PL" in names

    def test_duplicate_ips(self, snapshot):
        answer = duplicate_ips_question(snapshot)
        assert len(answer.rows) == 1
        assert answer.rows[0].ip == Ip("10.0.0.1")
        assert {o.node for o in answer.rows[0].owners} == {"r1"}

    def test_ntp_consistency_majority(self, snapshot):
        answer = management_plane_consistency(snapshot)
        # Two different single-server configs: one becomes the majority
        # reference, the other is flagged.
        assert len(answer.rows) == 1

    def test_ntp_consistency_explicit(self, snapshot):
        answer = management_plane_consistency(
            snapshot, expected_ntp=["192.0.2.1"]
        )
        deviants = {row.hostname for row in answer.rows if row.property_name == "ntp"}
        assert deviants == {"r2"}


class TestFilterQuestions:
    def test_test_filter(self, snapshot):
        row = run_test_filter(
            snapshot, "r2", "SHADOWED",
            Packet(src_ip=Ip("10.5.1.1"), dst_port=80),
        )
        assert row.action is Action.PERMIT  # first line matches first
        assert "10.0.0.0" in row.matched_line

    def test_test_filter_unknown_raises(self, snapshot):
        with pytest.raises(KeyError):
            run_test_filter(snapshot, "r2", "NOPE", Packet())

    def test_search_filters_finds_permits(self, snapshot):
        rows = search_filters(
            snapshot, HeaderSpace.build(src="10.5.0.0/16"), Action.PERMIT
        )
        assert any(row.filter_name == "SHADOWED" for row in rows)
        for row in rows:
            assert row.example is not None

    def test_search_filters_deny_direction(self, snapshot):
        rows = search_filters(
            snapshot,
            HeaderSpace.build(src="10.5.0.0/16", protocols=[f.PROTO_TCP]),
            Action.DENY,
        )
        # DEAD_ACL permits everything; SHADOWED permits this space too
        # (the deny line is shadowed); only MISSING... not defined. So no
        # ACL can deny the space except via implicit deny = none here.
        assert all(row.filter_name not in ("DEAD_ACL",) for row in rows)

    def test_unreachable_lines(self, snapshot):
        rows = unreachable_filter_lines(snapshot)
        shadowed = [r for r in rows if r.filter_name == "SHADOWED"]
        assert len(shadowed) == 1
        assert shadowed[0].line_index == 1
        assert shadowed[0].blocking_lines == [0]


SERVICE_NET = {
    "gw": """
hostname gw
interface clients
 ip address 10.1.0.1 255.255.255.0
interface servers
 ip address 10.2.0.1 255.255.255.0
 ip access-group PROTECT out
ip access-list extended PROTECT
 permit tcp any any eq 443
 deny ip any any
""",
}


class TestSpecializedQueries:
    @pytest.fixture(scope="class")
    def analyzer(self):
        dataplane = compute_dataplane(load_snapshot_from_texts(SERVICE_NET))
        return NetworkAnalyzer(dataplane)

    def test_service_reachable_https(self, analyzer):
        answer = service_reachable(
            analyzer, "10.2.0.50", port=443,
            client_locations=[("gw", "clients")],
        )
        assert answer.reachable
        assert answer.failing_sources == []

    def test_service_unreachable_on_blocked_port(self, analyzer):
        answer = service_reachable(
            analyzer, "10.2.0.50", port=80,
            client_locations=[("gw", "clients")],
        )
        assert not answer.reachable
        source = answer.failing_sources[0]
        negative, positive, contrast = answer.examples[source]
        assert negative is not None
        assert negative.dst_port == 80

    def test_isolation_query(self, analyzer):
        answer = service_unreachable(
            analyzer, "10.2.0.50", port=22,
            from_locations=[("gw", "clients")],
        )
        assert answer.isolated

    def test_isolation_violated(self, analyzer):
        answer = service_unreachable(
            analyzer, "10.2.0.50", port=443,
            from_locations=[("gw", "clients")],
        )
        assert not answer.isolated
        assert answer.leaking_sources
        example = answer.examples[answer.leaking_sources[0]]
        assert example.dst_port == 443

    def test_scoped_defaults_suppress_spoofing(self, analyzer):
        """§4.4.2: with default scoping, sources are limited to the
        interface's own subnet, so spoofed-source 'violations' vanish."""
        scoped = analyzer.default_sources()
        for source, space in scoped.items():
            iface = source[2]
            device = analyzer.dataplane.snapshot.device(source[1])
            prefix = device.interfaces[iface].prefix
            engine = analyzer.encoder.engine
            own_src = analyzer.encoder.ip_in_prefix(f.SRC_IP, prefix)
            assert engine.implies(space, own_src)
