"""Tests for the route-policy questions."""

import pytest

from repro.config.loader import load_snapshot_from_texts
from repro.config.model import Action
from repro.hdr.ip import Ip, Prefix
from repro.questions.route_policies import (
    RoutePolicyTestResult,
    search_route_policies,
)
from repro.questions.route_policies import test_route_policy as run_policy_test
from repro.routing.policy import PolicyRoute

CONFIGS = {
    "r1": """
hostname r1
interface e0
 ip address 10.0.0.1 255.255.255.0
ip prefix-list TENS seq 5 permit 10.0.0.0/8 le 24
route-map STEER permit 10
 match ip address prefix-list TENS
 set local-preference 250
 set community 65000:1 additive
route-map STEER deny 20
route-map PREPEND permit 10
 set as-path prepend 65000
""",
}


@pytest.fixture(scope="module")
def snapshot():
    return load_snapshot_from_texts(CONFIGS)


class TestTestRoutePolicy:
    def test_permit_with_changes(self, snapshot):
        result = run_policy_test(
            snapshot, "r1", "STEER", PolicyRoute(prefix=Prefix("10.5.0.0/16"))
        )
        assert result.permitted
        changes = result.attribute_changes()
        assert changes["local_pref"] == (100, 250)
        assert "communities" in changes

    def test_deny(self, snapshot):
        result = run_policy_test(
            snapshot, "r1", "STEER", PolicyRoute(prefix=Prefix("192.168.0.0/16"))
        )
        assert not result.permitted
        assert result.output_route is None
        assert result.attribute_changes() == {}

    def test_trace_present(self, snapshot):
        result = run_policy_test(
            snapshot, "r1", "STEER", PolicyRoute(prefix=Prefix("10.5.0.0/16"))
        )
        assert any("clause 10: permit" in line for line in result.trace)

    def test_prepend_changes_as_path(self, snapshot):
        result = run_policy_test(
            snapshot, "r1", "PREPEND",
            PolicyRoute(prefix=Prefix("10.0.0.0/8"), as_path=(3356,)),
        )
        assert result.attribute_changes()["as_path"] == ((3356,), (65000, 3356))

    def test_unknown_policy_raises(self, snapshot):
        with pytest.raises(KeyError):
            run_policy_test(snapshot, "r1", "NOPE", PolicyRoute(prefix=Prefix("10.0.0.0/8")))


class TestSearchRoutePolicies:
    def test_permit_search(self, snapshot):
        rows = search_route_policies(
            snapshot,
            prefixes=[Prefix("10.1.0.0/16"), Prefix("192.168.0.0/16")],
            action=Action.PERMIT,
        )
        steer_rows = [r for r in rows if r.policy == "STEER"]
        assert [r.prefix for r in steer_rows] == [Prefix("10.1.0.0/16")]
        assert steer_rows[0].changes["local_pref"] == (100, 250)

    def test_deny_search(self, snapshot):
        rows = search_route_policies(
            snapshot, prefixes=[Prefix("192.168.0.0/16")], action=Action.DENY,
        )
        assert any(r.policy == "STEER" for r in rows)
        assert all(r.policy != "PREPEND" for r in rows)

    def test_node_filter(self, snapshot):
        rows = search_route_policies(
            snapshot, prefixes=[Prefix("10.0.0.0/8")], nodes=[]
        )
        assert rows == []
