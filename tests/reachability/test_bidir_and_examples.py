"""Tests for bidirectional reachability (sessions, §4.2.3) and example
selection (§4.4.3)."""

import pytest

from repro.bdd.engine import FALSE, TRUE
from repro.config.loader import load_snapshot_from_texts
from repro.hdr import fields as f
from repro.hdr.headerspace import HeaderSpace, PacketEncoder
from repro.hdr.ip import Ip, Prefix
from repro.hdr.packet import Packet
from repro.reachability.examples import (
    annotate_packet,
    default_preferences,
    differing_fields,
    pick_example_pair,
)
from repro.reachability.graph import src_node
from repro.reachability.queries import NetworkAnalyzer
from repro.routing.engine import compute_dataplane
from repro.synth.firewall_dc import enterprise_firewall


@pytest.fixture(scope="module")
def fw_analyzer():
    dataplane = compute_dataplane(
        load_snapshot_from_texts(enterprise_firewall(2))
    )
    return NetworkAnalyzer(dataplane)


class TestBidirectional:
    def test_permitted_roundtrip(self, fw_analyzer):
        encoder = fw_analyzer.encoder
        outbound = HeaderSpace.build(
            src="172.16.0.0/12", dst="198.18.0.0/15",
            protocols=[f.PROTO_TCP], dst_ports=[(443, 443)],
        ).to_bdd(encoder)
        delivered, roundtrip = fw_analyzer.bidirectional_reachability(
            {src_node("inside0", "Vlan10"): outbound},
            return_sources=[("fw0", "Ethernet0")],
        )
        assert delivered != FALSE
        assert roundtrip != FALSE
        # Round-trip flows are reported in pre-NAT (inside) coordinates.
        engine = encoder.engine
        inside_src = encoder.ip_in_prefix(f.SRC_IP, "172.16.0.0/12")
        assert engine.implies(roundtrip, inside_src)

    def test_denied_forward_means_no_roundtrip(self, fw_analyzer):
        encoder = fw_analyzer.encoder
        telnet = HeaderSpace.build(
            src="172.16.0.0/12", dst="198.18.0.0/15",
            protocols=[f.PROTO_TCP], dst_ports=[(23, 23)],
        ).to_bdd(encoder)
        delivered, roundtrip = fw_analyzer.bidirectional_reachability(
            {src_node("inside0", "Vlan10"): telnet},
            return_sources=[("fw0", "Ethernet0")],
        )
        assert delivered == FALSE
        assert roundtrip == FALSE

    def test_unsolicited_return_blocked_without_session(self, fw_analyzer):
        """Traffic arriving from outside that matches *no* session must
        still be stopped by the zone policy (no inbound policy exists)."""
        encoder = fw_analyzer.encoder
        inbound = HeaderSpace.build(
            src="198.18.0.0/15", dst="172.28.0.0/24",
            protocols=[f.PROTO_TCP], dst_ports=[(443, 443)],
        ).to_bdd(encoder)
        answer = fw_analyzer.reachability(
            {src_node("fw0", "Ethernet0"): inbound}
        )
        assert answer.success_set() == FALSE

    def test_graph_restored_after_bidirectional(self, fw_analyzer):
        edges_before = fw_analyzer.graph.num_edges()
        outbound = HeaderSpace.build(src="172.16.0.0/12").to_bdd(
            fw_analyzer.encoder
        )
        fw_analyzer.bidirectional_reachability(
            {src_node("inside0", "Vlan10"): outbound},
            return_sources=[("fw0", "Ethernet0")],
        )
        assert fw_analyzer.graph.num_edges() == edges_before


class TestExampleSelection:
    @pytest.fixture(scope="class")
    def enc(self):
        return PacketEncoder()

    def test_preferences_pick_likely_packets(self, enc):
        pkt = enc.example_packet(TRUE, default_preferences(enc))
        assert pkt.ip_protocol == f.PROTO_TCP
        assert pkt.dst_port in (80, 443, 22, 53)
        assert pkt.src_port >= 49152
        assert not pkt.tcp_flag(f.TCP_ACK)

    def test_preferences_with_prefix_context(self, enc):
        prefs = default_preferences(
            enc, src_prefix=Prefix("10.1.0.0/16"), dst_prefix=Prefix("10.2.0.0/16")
        )
        pkt = enc.example_packet(TRUE, prefs)
        assert Prefix("10.1.0.0/16").contains_ip(pkt.src_ip)
        assert Prefix("10.2.0.0/16").contains_ip(pkt.dst_ip)

    def test_avoids_bogus_addresses(self, enc):
        pkt = enc.example_packet(TRUE, default_preferences(enc))
        assert not Prefix("0.0.0.0/8").contains_ip(pkt.src_ip)
        assert not Prefix("224.0.0.0/4").contains_ip(pkt.dst_ip)

    def test_example_pair_contrast(self, enc):
        engine = enc.engine
        # Violating set: port 80 traffic; satisfying: port 22 traffic,
        # same everything else available.
        violating = engine.and_(enc.tcp(), enc.field_eq(f.DST_PORT, 80))
        satisfying = engine.and_(enc.tcp(), enc.field_eq(f.DST_PORT, 22))
        negative, positive = pick_example_pair(enc, violating, satisfying)
        assert negative.dst_port == 80
        assert positive.dst_port == 22
        contrast = differing_fields(negative, positive)
        assert "dst_port" in contrast
        # The anchoring keeps unrelated fields identical.
        assert "dst_ip" not in contrast
        assert "src_ip" not in contrast

    def test_example_pair_empty_satisfying(self, enc):
        negative, positive = pick_example_pair(
            enc, enc.tcp(), FALSE
        )
        assert negative is not None
        assert positive is None

    def test_differing_fields_identical(self):
        a = Packet(dst_port=80)
        assert differing_fields(a, a) == []


class TestAnnotation:
    def test_annotate_packet_collects_context(self, fw_analyzer):
        packet = Packet(
            src_ip=Ip("172.28.0.10"), dst_ip=Ip("198.18.0.1"), dst_port=443,
        )
        annotation = annotate_packet(fw_analyzer, packet, "inside0", "Vlan10")
        assert annotation.disposition == "exits-network"
        assert annotation.hops
        assert any("fib" in hop or "matched" in hop for hop in annotation.hops)
