"""Tests for graph compression, loop detection, and propagation units."""

import pytest

from repro.bdd.engine import FALSE, TRUE, BddEngine
from repro.config.loader import load_snapshot_from_texts
from repro.hdr.headerspace import PacketEncoder
from repro.reachability.bddreach import backward_reachability, forward_reachability
from repro.reachability.compress import compress_graph, _compose
from repro.reachability.graph import (
    Compose,
    Constraint,
    ForwardingGraph,
    Identity,
)
from repro.reachability.queries import NetworkAnalyzer
from repro.routing.engine import compute_dataplane

LOOP_NET = {
    "a": """
hostname a
interface i0
 ip address 10.0.0.1 255.255.255.0
interface host
 ip address 172.16.0.1 255.255.255.0
ip route 192.168.0.0 255.255.0.0 10.0.0.2
""",
    "b": """
hostname b
interface i0
 ip address 10.0.0.2 255.255.255.0
ip route 192.168.0.0 255.255.0.0 10.0.0.1
""",
}


class TestPropagationUnits:
    def _tiny_graph(self):
        encoder = PacketEncoder()
        graph = ForwardingGraph(encoder)
        engine = encoder.engine
        constraint = encoder.ip_in_prefix("dst_ip", "10.0.0.0/8")
        graph.add_edge(("src", "a", "i0"), ("mid", "a"), Identity(engine))
        graph.add_edge(
            ("mid", "a"), ("sink", "b", "i0"),
            Constraint(engine, constraint, "tens only"),
        )
        return encoder, graph, constraint

    def test_forward_respects_constraints(self):
        encoder, graph, constraint = self._tiny_graph()
        reach = forward_reachability(graph, {("src", "a", "i0"): TRUE})
        assert reach[("sink", "b", "i0")] == constraint

    def test_forward_from_empty_source(self):
        encoder, graph, _ = self._tiny_graph()
        reach = forward_reachability(graph, {("src", "a", "i0"): FALSE})
        assert ("sink", "b", "i0") not in reach

    def test_backward_is_preimage(self):
        encoder, graph, constraint = self._tiny_graph()
        reach = backward_reachability(graph, {("sink", "b", "i0"): TRUE})
        assert reach[("src", "a", "i0")] == constraint

    def test_cycle_terminates(self):
        encoder = PacketEncoder()
        engine = encoder.engine
        graph = ForwardingGraph(encoder)
        graph.add_edge(("fwd", "a"), ("fwd", "b"), Identity(engine))
        graph.add_edge(("fwd", "b"), ("fwd", "a"), Identity(engine))
        reach = forward_reachability(graph, {("fwd", "a"): TRUE})
        assert reach[("fwd", "b")] == TRUE


class TestCompose:
    def test_constraint_fusion(self):
        engine = BddEngine(8)
        a = Constraint(engine, engine.var(0), "a")
        b = Constraint(engine, engine.var(1), "b")
        fused = _compose(engine, a, b)
        assert isinstance(fused, Constraint)
        assert fused.label == engine.and_(engine.var(0), engine.var(1))

    def test_identity_elimination(self):
        engine = BddEngine(8)
        a = Constraint(engine, engine.var(0), "a")
        assert _compose(engine, Identity(engine), a) is a
        assert _compose(engine, a, Identity(engine)) is a

    def test_compose_forward_backward(self):
        engine = BddEngine(8)
        chain = Compose(
            [Constraint(engine, engine.var(0), ""), Constraint(engine, engine.var(1), "")]
        )
        result = chain.forward(TRUE)
        assert result == engine.and_(engine.var(0), engine.var(1))
        assert chain.backward(TRUE) == result
        assert ";" in chain.describe()


class TestCompression:
    def test_stats_and_invariance(self):
        dataplane = compute_dataplane(load_snapshot_from_texts(LOOP_NET))
        raw = NetworkAnalyzer(dataplane, compress=False)
        compressed = NetworkAnalyzer(
            dataplane, compress=True, encoder=raw.encoder, fibs=raw.fibs
        )
        stats = compressed.compression
        assert stats.nodes_before >= stats.nodes_after
        assert stats.edges_before >= stats.edges_after
        # Same answers from both graphs.
        for source in raw.graph.source_nodes():
            a = raw.reachability({source: TRUE})
            b = compressed.reachability({source: TRUE})
            assert a.success_set() == b.success_set()
            assert a.failure_set() == b.failure_set()

    def test_sources_and_sinks_survive(self):
        dataplane = compute_dataplane(load_snapshot_from_texts(LOOP_NET))
        analyzer = NetworkAnalyzer(dataplane, compress=True)
        kinds = {node[0] for node in analyzer.graph.nodes}
        assert "src" in kinds and "disp" in kinds


class TestLoopDetection:
    def test_static_loop_found(self):
        dataplane = compute_dataplane(load_snapshot_from_texts(LOOP_NET))
        analyzer = NetworkAnalyzer(dataplane)
        violations = analyzer.detect_loops()
        assert violations
        violation = violations[0]
        assert violation.example is not None
        from repro.hdr.ip import Prefix

        assert Prefix("192.168.0.0/16").contains_ip(violation.example.dst_ip)
        loop_nodes = {n[1] for n in violation.cycle if len(n) > 1}
        assert {"a", "b"} <= loop_nodes

    def test_no_loops_on_clean_network(self):
        from repro.synth.special import net1

        dataplane = compute_dataplane(load_snapshot_from_texts(net1(3)))
        analyzer = NetworkAnalyzer(dataplane)
        assert analyzer.detect_loops() == []

    def test_traceroute_agrees_with_loop(self):
        from repro.hdr.ip import Ip
        from repro.reachability.graph import Disposition
        from repro.traceroute.engine import TracerouteEngine

        dataplane = compute_dataplane(load_snapshot_from_texts(LOOP_NET))
        analyzer = NetworkAnalyzer(dataplane)
        violation = analyzer.detect_loops()[0]
        tracer = TracerouteEngine(dataplane, analyzer.fibs)
        traces = tracer.trace(violation.example, "a", "host")
        assert any(t.disposition is Disposition.LOOP for t in traces)
