"""The network of Figure 2 of the paper: three routers, per-device FIBs,
an outbound ACL on R1.i3 that allows only ssh traffic — used to validate
dataflow-graph construction and the propagation example of §4.2.1."""

import pytest

from repro.config.loader import load_snapshot_from_texts
from repro.hdr import fields as f
from repro.hdr.headerspace import HeaderSpace
from repro.hdr.ip import Ip, Prefix
from repro.reachability.graph import Disposition, src_node
from repro.reachability.queries import NetworkAnalyzer
from repro.routing.engine import compute_dataplane

# P1 = 10.0.1.0/24 (hosts behind R1.i0), P2 = 10.0.2.0/24 (behind R2.i0),
# P3 = 10.0.3.0/24 (behind R3.i0). R1 also has a direct link i3 to R3
# with an outbound ACL allowing only ssh (tcp/22).
CONFIGS = {
    "r1": """
hostname r1
interface i0
 ip address 10.0.1.1 255.255.255.0
interface i1
 ip address 10.0.12.1 255.255.255.0
interface i3
 ip address 10.0.13.1 255.255.255.0
 ip access-group SSH_ONLY out
ip route 10.0.2.0 255.255.255.0 10.0.12.2
ip route 10.0.3.0 255.255.255.0 10.0.13.3
ip route 10.0.3.0 255.255.255.0 10.0.12.2
ip access-list extended SSH_ONLY
 permit tcp any any eq 22
""",
    "r2": """
hostname r2
interface i0
 ip address 10.0.2.1 255.255.255.0
interface i1
 ip address 10.0.12.2 255.255.255.0
interface i2
 ip address 10.0.23.2 255.255.255.0
ip route 10.0.1.0 255.255.255.0 10.0.12.1
ip route 10.0.3.0 255.255.255.0 10.0.23.3
""",
    "r3": """
hostname r3
interface i0
 ip address 10.0.3.1 255.255.255.0
interface i2
 ip address 10.0.23.3 255.255.255.0
interface i3
 ip address 10.0.13.3 255.255.255.0
ip route 10.0.1.0 255.255.255.0 10.0.13.1
ip route 10.0.2.0 255.255.255.0 10.0.23.2
""",
}


@pytest.fixture(scope="module")
def analyzer():
    dataplane = compute_dataplane(load_snapshot_from_texts(CONFIGS))
    assert dataplane.converged
    return NetworkAnalyzer(dataplane)


class TestGraphStructure:
    def test_has_fib_nodes_per_device(self, analyzer):
        fwd_nodes = [n for n in analyzer.graph.nodes if n[0] == "fwd"]
        assert {n[1] for n in fwd_nodes} == {"r1", "r2", "r3"}

    def test_source_and_sink_nodes_per_interface(self, analyzer):
        sources = analyzer.graph.source_nodes()
        assert src_node("r1", "i0") in sources
        assert src_node("r3", "i0") in sources

    def test_compression_removed_simple_nodes(self, analyzer):
        assert analyzer.compression.nodes_removed > 0
        assert analyzer.compression.nodes_after < analyzer.compression.nodes_before


class TestPropagation:
    """The worked example of §4.2.1: all TCP packets entering at R1.i0
    that can leave via R3.i0."""

    def test_tcp_packets_reach_p3_hosts(self, analyzer):
        enc = analyzer.encoder
        engine = enc.engine
        tcp = enc.tcp()
        answer = analyzer.reachability({src_node("r1", "i0"): tcp})
        delivered_r3 = answer.by_sink.get(("sink", "r3", "i0"), 0)
        assert delivered_r3 != 0
        # Everything delivered at R3.i0 is destined to P3 host space.
        p3 = enc.ip_in_prefix(f.DST_IP, Prefix("10.0.3.0/24"))
        assert engine.implies(delivered_r3, p3)
        # Both the direct (ssh-only) path and the r2 path deliver;
        # non-ssh traffic must have gone via r2.
        non_ssh = engine.diff(
            delivered_r3, enc.field_eq(f.DST_PORT, 22)
        )
        assert non_ssh != 0

    def test_ssh_only_acl_blocks_direct_path(self, analyzer):
        """Traffic on the direct R1->R3 link is ssh-only."""
        enc = analyzer.encoder
        engine = enc.engine
        tcp = enc.tcp()
        answer = analyzer.reachability({src_node("r1", "i0"): tcp})
        # The denied-out disposition at r1 captures non-ssh traffic that
        # tried the direct link.
        denied = answer.by_sink.get(("disp", "r1", "denied-out"), 0)
        assert denied != 0
        ssh = enc.field_eq(f.DST_PORT, 22)
        assert engine.and_(denied, ssh) == 0  # ssh is never denied there

    def test_multipath_consistency_flags_p3_inconsistency(self, analyzer):
        """P3-destined non-ssh traffic from R1 is dropped on the direct
        path but delivered via R2 — exactly the flow multipath
        consistency should flag."""
        violations = analyzer.multipath_consistency(
            sources={src_node("r1", "i0"): analyzer.encoder.tcp()}
        )
        assert violations
        violation = violations[0]
        assert violation.example is not None
        assert Prefix("10.0.3.0/24").contains_ip(violation.example.dst_ip)
        assert violation.example.dst_port != 22
        assert Disposition.DELIVERED in violation.success_dispositions
        assert Disposition.DENIED_OUT in violation.failure_dispositions

    def test_accepted_at_router(self, analyzer):
        enc = analyzer.encoder
        answer = analyzer.reachability(
            {src_node("r1", "i0"): enc.ip_eq(f.DST_IP, "10.0.12.2")}
        )
        accepted = answer.by_disposition.get(Disposition.ACCEPTED, 0)
        assert accepted != 0

    def test_no_route_disposition(self, analyzer):
        enc = analyzer.encoder
        answer = analyzer.reachability(
            {src_node("r1", "i0"): enc.ip_eq(f.DST_IP, "192.0.2.1")}
        )
        assert answer.by_disposition.get(Disposition.NO_ROUTE, 0) != 0
        assert answer.success_set() == 0


class TestBackwardReachability:
    def test_destination_reachability_matches_forward(self, analyzer):
        """Backward propagation from R3.i0 must agree with forward
        propagation source by source."""
        enc = analyzer.encoder
        engine = enc.engine
        back = analyzer.destination_reachability("r3", "i0")
        start = src_node("r1", "i0")
        assert start in back
        # Validate: every packet in the backward answer, propagated
        # forward, is delivered at r3.i0 or accepted at r3.
        forward = analyzer.reachability({start: back[start]})
        delivered = engine.or_(
            forward.by_sink.get(("sink", "r3", "i0"), 0),
            forward.by_disposition.get(Disposition.ACCEPTED, 0),
        )
        assert delivered != 0
        # And the backward set is exactly the forward-deliverable set.
        all_tcp = analyzer.reachability({start: 1})
        fwd_delivered = engine.or_(
            all_tcp.by_sink.get(("sink", "r3", "i0"), 0),
            # accepted at r3 only (backward targets accept at r3 too)
            all_tcp.reach.get(("disp", "r3", "accepted"), 0),
        )
        assert back[start] == fwd_delivered


class TestWaypoint:
    def test_waypoint_split(self, analyzer):
        enc = analyzer.encoder
        engine = enc.engine
        through, bypass = analyzer.waypoint_reachability(
            {src_node("r1", "i0"): enc.tcp()}, waypoint_hostname="r2"
        )
        # Traffic to P2/P3 via r2 traverses the waypoint; ssh to P3 can
        # bypass via the direct link.
        p3 = enc.ip_in_prefix(f.DST_IP, Prefix("10.0.3.0/24"))
        ssh = enc.field_eq(f.DST_PORT, 22)
        assert engine.and_(bypass, engine.and_(p3, ssh)) != 0
        non_ssh_p3 = engine.and_(through, engine.diff(p3, ssh))
        assert non_ssh_p3 != 0

    def test_waypoint_restores_graph(self, analyzer):
        edges_before = analyzer.graph.num_edges()
        analyzer.waypoint_reachability(
            {src_node("r1", "i0"): analyzer.encoder.tcp()}, "r2"
        )
        assert analyzer.graph.num_edges() == edges_before
