"""Unit tests for the BGP RIB decision process and logical clocks."""

import pytest

from repro.config.model import BgpNeighbor
from repro.hdr.ip import Ip, Prefix
from repro.routing.bgp import (
    BgpRib,
    BgpSession,
    accepts_route,
    export_route,
    local_route,
)
from repro.routing.route import (
    AD_IBGP,
    BgpAttributes,
    BgpRoute,
    Origin,
    reset_interning,
)

PREFIX = Prefix("8.0.0.0/8")


@pytest.fixture(autouse=True)
def fresh_pools():
    reset_interning()
    yield
    reset_interning()


def _route(peer, as_path=(100,), local_pref=100, med=0, origin=Origin.IGP,
           weight=0, from_ibgp=False, next_hop="10.0.0.9"):
    return BgpRoute(
        prefix=PREFIX,
        next_hop_ip=Ip(next_hop),
        attributes=BgpAttributes.make(
            as_path=as_path,
            local_pref=local_pref,
            med=med,
            origin=origin,
            weight=weight,
            from_ibgp=from_ibgp,
            admin_distance=AD_IBGP if from_ibgp else 20,
        ),
        received_from=Ip(peer),
    )


class TestDecisionProcess:
    def _rib(self, **kwargs):
        return BgpRib(local_as=65000, **kwargs)

    def test_local_pref_wins(self):
        rib = self._rib()
        rib.put(_route("10.0.0.1", local_pref=100), 1)
        rib.put(_route("10.0.0.2", local_pref=200), 2)
        assert rib.best_routes(PREFIX)[0].received_from == Ip("10.0.0.2")

    def test_weight_beats_local_pref(self):
        rib = self._rib()
        rib.put(_route("10.0.0.1", weight=100, local_pref=50), 1)
        rib.put(_route("10.0.0.2", local_pref=500), 2)
        assert rib.best_routes(PREFIX)[0].received_from == Ip("10.0.0.1")

    def test_shorter_as_path_wins(self):
        rib = self._rib()
        rib.put(_route("10.0.0.1", as_path=(100, 200)), 1)
        rib.put(_route("10.0.0.2", as_path=(300,)), 2)
        assert rib.best_routes(PREFIX)[0].received_from == Ip("10.0.0.2")

    def test_origin_preference(self):
        rib = self._rib()
        rib.put(_route("10.0.0.1", origin=Origin.INCOMPLETE), 1)
        rib.put(_route("10.0.0.2", origin=Origin.IGP), 2)
        assert rib.best_routes(PREFIX)[0].received_from == Ip("10.0.0.2")

    def test_lower_med_wins(self):
        rib = self._rib()
        rib.put(_route("10.0.0.1", med=50), 1)
        rib.put(_route("10.0.0.2", med=10), 2)
        assert rib.best_routes(PREFIX)[0].received_from == Ip("10.0.0.2")

    def test_ebgp_beats_ibgp(self):
        rib = self._rib()
        rib.put(_route("10.0.0.1", from_ibgp=True), 1)
        rib.put(_route("10.0.0.2", from_ibgp=False), 2)
        assert rib.best_routes(PREFIX)[0].received_from == Ip("10.0.0.2")

    def test_igp_cost_breaks_tie(self):
        costs = {Ip("10.0.0.8"): 5, Ip("10.0.0.9"): 50}
        rib = BgpRib(local_as=65000, igp_cost=lambda ip: costs.get(ip))
        rib.put(_route("10.0.0.1", next_hop="10.0.0.9"), 1)
        rib.put(_route("10.0.0.2", next_hop="10.0.0.8"), 2)
        assert rib.best_routes(PREFIX)[0].received_from == Ip("10.0.0.2")

    def test_unresolvable_next_hop_excluded(self):
        rib = BgpRib(local_as=65000, igp_cost=lambda ip: None)
        rib.put(_route("10.0.0.1"), 1)
        assert rib.best_routes(PREFIX) == []

    def test_logical_clock_prefers_incumbent(self):
        rib = self._rib(use_clocks=True)
        rib.put(_route("10.0.0.9"), clock=1)
        rib.put(_route("10.0.0.1"), clock=2)  # equally good, lower address
        # With clocks, the older route stays best despite the tie-break
        # address preferring 10.0.0.1.
        assert rib.best_routes(PREFIX)[0].received_from == Ip("10.0.0.9")

    def test_without_clocks_newest_wins(self):
        rib = self._rib(use_clocks=False)
        rib.put(_route("10.0.0.9"), clock=1)
        rib.put(_route("10.0.0.1"), clock=2)
        assert rib.best_routes(PREFIX)[0].received_from == Ip("10.0.0.1")

    def test_identical_readvertisement_keeps_clock(self):
        rib = self._rib(use_clocks=True)
        rib.put(_route("10.0.0.9"), clock=1)
        assert not rib.put(_route("10.0.0.9"), clock=5)  # no change
        rib.put(_route("10.0.0.1"), clock=3)
        assert rib.best_routes(PREFIX)[0].received_from == Ip("10.0.0.9")

    def test_multipath_keeps_equal_routes(self):
        rib = BgpRib(local_as=65000, multipath=4)
        rib.put(_route("10.0.0.1"), 1)
        rib.put(_route("10.0.0.2"), 2)
        assert len(rib.best_routes(PREFIX)) == 2

    def test_multipath_respects_limit(self):
        rib = BgpRib(local_as=65000, multipath=2)
        for i in range(1, 5):
            rib.put(_route(f"10.0.0.{i}"), i)
        assert len(rib.best_routes(PREFIX)) == 2

    def test_withdraw(self):
        rib = self._rib()
        rib.put(_route("10.0.0.1"), 1)
        assert rib.withdraw(PREFIX, Ip("10.0.0.1"))
        assert rib.best_routes(PREFIX) == []
        assert not rib.withdraw(PREFIX, Ip("10.0.0.1"))

    def test_delta_tracks_changes(self):
        rib = self._rib()
        rib.put(_route("10.0.0.1"), 1)
        delta = rib.take_delta()
        assert len(delta.added) == 1
        rib.put(_route("10.0.0.2", local_pref=500), 2)
        delta = rib.take_delta()
        assert len(delta.added) == 1 and len(delta.removed) == 1


def _session(is_ibgp=False, next_hop_self=False, rr_client=False,
             send_community=False):
    neighbor = BgpNeighbor(
        peer_ip=Ip("10.0.0.2"),
        remote_as=65000 if is_ibgp else 65002,
        next_hop_self=next_hop_self,
        route_reflector_client=rr_client,
        send_community=send_community,
    )
    return BgpSession(
        local_node="r1",
        remote_node="r2",
        local_ip=Ip("10.0.0.1"),
        remote_ip=Ip("10.0.0.2"),
        local_as=65000,
        remote_as=neighbor.remote_as,
        neighbor=neighbor,
        is_ibgp=is_ibgp,
    )


class TestExport:
    def test_ebgp_prepends_as_and_sets_next_hop(self):
        route = _route("10.9.9.9", as_path=(100,))
        advert = export_route(_session(is_ibgp=False), route)
        assert advert.attributes.as_path == (65000, 100)
        assert advert.next_hop_ip == Ip("10.0.0.1")
        assert advert.attributes.local_pref == 100

    def test_ebgp_strips_communities_without_send_community(self):
        route = BgpRoute(
            prefix=PREFIX,
            next_hop_ip=Ip("10.0.0.9"),
            attributes=BgpAttributes.make(communities=("65000:1",)),
            received_from=Ip("10.9.9.9"),
        )
        advert = export_route(_session(is_ibgp=False), route)
        assert advert.attributes.communities == ()
        advert = export_route(_session(is_ibgp=False, send_community=True), route)
        assert advert.attributes.communities == ("65000:1",)

    def test_ibgp_does_not_prepend(self):
        route = _route("10.9.9.9", as_path=(100,))
        advert = export_route(_session(is_ibgp=True), route)
        assert advert.attributes.as_path == (100,)
        assert advert.attributes.from_ibgp

    def test_ibgp_learned_not_reflected_to_non_client(self):
        route = _route("10.9.9.9", from_ibgp=True)
        assert export_route(_session(is_ibgp=True), route) is None

    def test_ibgp_learned_reflected_to_client(self):
        route = _route("10.9.9.9", from_ibgp=True)
        advert = export_route(_session(is_ibgp=True, rr_client=True), route)
        assert advert is not None
        assert advert.attributes.originator_id == Ip("10.9.9.9")

    def test_next_hop_self(self):
        route = _route("10.9.9.9")
        advert = export_route(_session(is_ibgp=True, next_hop_self=True), route)
        assert advert.next_hop_ip == Ip("10.0.0.1")

    def test_ibgp_preserves_next_hop_by_default(self):
        route = _route("10.9.9.9", next_hop="172.16.0.1")
        advert = export_route(_session(is_ibgp=True), route)
        assert advert.next_hop_ip == Ip("172.16.0.1")


class TestLoopPrevention:
    def test_as_path_loop_rejected(self):
        session = _session(is_ibgp=False)
        route = _route("10.0.0.2", as_path=(65002, 65000))
        # Receiver view: local_as 65000 sees its own AS in the path.
        receiver = BgpSession(
            local_node="r2", remote_node="r1",
            local_ip=Ip("10.0.0.2"), remote_ip=Ip("10.0.0.1"),
            local_as=65000, remote_as=65002,
            neighbor=session.neighbor, is_ibgp=False,
        )
        accepted, reason = accepts_route(receiver, route)
        assert not accepted and reason == "as-path loop"

    def test_originator_loop_rejected(self):
        session = _session(is_ibgp=True)
        route = BgpRoute(
            prefix=PREFIX,
            next_hop_ip=Ip("10.0.0.9"),
            attributes=BgpAttributes.make(
                from_ibgp=True, originator_id=Ip("10.0.0.1")
            ),
            received_from=Ip("10.0.0.2"),
        )
        receiver = BgpSession(
            local_node="r1", remote_node="r2",
            local_ip=Ip("10.0.0.1"), remote_ip=Ip("10.0.0.2"),
            local_as=65000, remote_as=65000,
            neighbor=session.neighbor, is_ibgp=True,
        )
        accepted, reason = accepts_route(receiver, route)
        assert not accepted and reason == "originator-id loop"


class TestLocalRoute:
    def test_network_statement_route(self):
        route = local_route(PREFIX, Ip("1.1.1.1"), 65000)
        assert route.attributes.weight == 32768
        assert route.attributes.as_path == ()
        assert route.received_from is None

    def test_redistributed_route_origin(self):
        from repro.config.model import Protocol

        route = local_route(
            PREFIX, Ip("1.1.1.1"), 65000, source_protocol=Protocol.STATIC
        )
        assert route.attributes.origin is Origin.INCOMPLETE
