"""Determinism regression: the computed FIBs must be byte-identical
regardless of worker count and of Python's per-process hash seed.

The audit behind this test removed hash-seed-dependent iteration from
``routing/engine.py`` (RIB delta sets) and ``reachability/graph.py``
(ARP space wiring). Each case below runs the full parse → data plane →
FIB pipeline in a fresh interpreter with a different ``PYTHONHASHSEED``
and ``REPRO_JOBS``, and compares a canonical byte digest of every FIB —
the digest preserves the engine's own emission order, so any
nondeterministic iteration reintroduced upstream changes it.
"""

import os
import subprocess
import sys

import pytest

_DIGEST_SCRIPT = """
import hashlib
from repro.config.loader import load_snapshot_from_texts
from repro.dataplane.fib import compute_fibs
from repro.routing.engine import ConvergenceSettings, compute_dataplane
from repro.synth.special import net1
from repro.synth.wan import wan

digest = hashlib.sha256()
for configs in (net1(4), wan(2, 3, 1)):
    snapshot = load_snapshot_from_texts(configs)
    dataplane = compute_dataplane(snapshot, ConvergenceSettings())
    for hostname, fib in sorted(compute_fibs(dataplane).items()):
        digest.update(hostname.encode())
        for prefix, entries in fib.entries():
            digest.update(str(prefix).encode())
            for entry in entries:
                digest.update(entry.describe().encode())
print(digest.hexdigest())
"""


def _fib_digest(jobs: str, hash_seed: str) -> str:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_JOBS"] = jobs
    env["PYTHONHASHSEED"] = hash_seed
    result = subprocess.run(
        [sys.executable, "-c", _DIGEST_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout.strip()


@pytest.mark.slow
def test_fibs_identical_across_jobs_and_hash_seeds():
    serial = _fib_digest(jobs="1", hash_seed="0")
    parallel = _fib_digest(jobs="4", hash_seed="1")
    assert serial == parallel
    # A third seed guards against two seeds happening to agree.
    assert _fib_digest(jobs="4", hash_seed="2") == serial
