"""Edge-case coverage for the data-plane engine: shutdown interfaces,
eBGP multihop, prefix-list bands, and route preference corners."""

import pytest

from repro.config.loader import load_snapshot_from_texts
from repro.config.model import Action, PrefixList, PrefixListLine
from repro.hdr.ip import Ip, Prefix
from repro.routing.engine import ConvergenceSettings, compute_dataplane


class TestInterfaceState:
    def test_shutdown_interface_produces_no_routes_or_edges(self):
        configs = {
            "r1": """
hostname r1
interface up0
 ip address 10.0.0.1 255.255.255.0
interface down0
 ip address 10.1.0.1 255.255.255.0
 shutdown
""",
            "r2": """
hostname r2
interface e0
 ip address 10.1.0.2 255.255.255.0
""",
        }
        dataplane = compute_dataplane(load_snapshot_from_texts(configs))
        assert dataplane.main_rib("r1").longest_match(Ip("10.1.0.5")) is None
        assert dataplane.topology.neighbors("r1") == []

    def test_interface_without_address_ignored(self):
        configs = {
            "r1": """
hostname r1
interface bare
 description no address here
interface e0
 ip address 10.0.0.1 255.255.255.0
"""
        }
        dataplane = compute_dataplane(load_snapshot_from_texts(configs))
        assert len(dataplane.main_rib("r1")) == 1


class TestEbgpMultihop:
    CONFIGS = {
        "r1": """
hostname r1
interface Loopback0
 ip address 1.1.1.1 255.255.255.255
interface e0
 ip address 10.0.0.1 255.255.255.252
router bgp 65001
 bgp router-id 1.1.1.1
 neighbor 2.2.2.2 remote-as 65002
 neighbor 2.2.2.2 ebgp-multihop
 neighbor 2.2.2.2 update-source Loopback0
 network 1.1.1.1 mask 255.255.255.255
ip route 2.2.2.2 255.255.255.255 10.0.0.2
""",
        "r2": """
hostname r2
interface Loopback0
 ip address 2.2.2.2 255.255.255.255
interface e0
 ip address 10.0.0.2 255.255.255.252
router bgp 65002
 bgp router-id 2.2.2.2
 neighbor 1.1.1.1 remote-as 65001
 neighbor 1.1.1.1 ebgp-multihop
 neighbor 1.1.1.1 update-source Loopback0
ip route 1.1.1.1 255.255.255.255 10.0.0.1
""",
    }

    def test_loopback_ebgp_establishes_with_multihop(self):
        dataplane = compute_dataplane(load_snapshot_from_texts(self.CONFIGS))
        assert all(s.established for s in dataplane.sessions), [
            (s.local_node, s.failure_reason) for s in dataplane.sessions
        ]
        match = dataplane.main_rib("r2").longest_match(Ip("1.1.1.1"))
        assert match is not None

    def test_without_multihop_session_fails(self):
        configs = {
            name: text.replace(" neighbor 2.2.2.2 ebgp-multihop\n", "")
                      .replace(" neighbor 1.1.1.1 ebgp-multihop\n", "")
            for name, text in self.CONFIGS.items()
        }
        dataplane = compute_dataplane(load_snapshot_from_texts(configs))
        failed = [s for s in dataplane.sessions if not s.established]
        assert failed
        assert all("not directly connected" in s.failure_reason for s in failed)


class TestPrefixListBands:
    def test_exact_match_without_ge_le(self):
        plist = PrefixList(
            name="p",
            lines=[PrefixListLine(Action.PERMIT, Prefix("10.0.0.0/8"))],
        )
        assert plist.permits(Prefix("10.0.0.0/8"))
        assert not plist.permits(Prefix("10.1.0.0/16"))

    def test_le_band(self):
        plist = PrefixList(
            name="p",
            lines=[PrefixListLine(Action.PERMIT, Prefix("10.0.0.0/8"), le=16)],
        )
        assert plist.permits(Prefix("10.0.0.0/8"))
        assert plist.permits(Prefix("10.1.0.0/16"))
        assert not plist.permits(Prefix("10.1.1.0/24"))

    def test_ge_band_defaults_le_32(self):
        plist = PrefixList(
            name="p",
            lines=[PrefixListLine(Action.PERMIT, Prefix("10.0.0.0/8"), ge=24)],
        )
        assert plist.permits(Prefix("10.1.1.0/24"))
        assert plist.permits(Prefix("10.1.1.1/32"))
        assert not plist.permits(Prefix("10.1.0.0/16"))

    def test_deny_line_short_circuits(self):
        plist = PrefixList(
            name="p",
            lines=[
                PrefixListLine(Action.DENY, Prefix("10.9.0.0/16")),
                PrefixListLine(Action.PERMIT, Prefix("10.0.0.0/8"), le=32),
            ],
        )
        assert not plist.permits(Prefix("10.9.0.0/16"))
        assert plist.permits(Prefix("10.8.0.0/16"))


class TestGeneratorRouteCorrectness:
    def test_wan_edge_prefers_primary_core(self):
        """Edges dual-home with costs 10 (primary) and 20 (secondary);
        best paths must use the primary uplink."""
        from repro.synth.wan import wan

        dataplane = compute_dataplane(load_snapshot_from_texts(wan(4, 4, 1)))
        # wedge0's primary is wcore0: its loopback route should cost 11.
        match = dataplane.main_rib("wedge0").longest_match(Ip("192.168.0.1"))
        assert match is not None
        assert match[1][0].cost == 11

    def test_campus_inter_area_routing(self):
        """Access routers in leaf areas reach other blocks through the
        area-0 distribution/core hierarchy."""
        from repro.synth.campus import campus

        dataplane = compute_dataplane(
            load_snapshot_from_texts(campus(2, 1))
        )
        # access0-0's user subnet is 172.16.0.0/24; access1-0's is
        # 172.17.0.0/24. The inter-block route must exist and be
        # inter-area or intra-area via the hierarchy.
        match = dataplane.main_rib("access0-0").longest_match(Ip("172.17.0.5"))
        assert match is not None
        assert match[1][0].protocol.value in ("ospf", "ospfIA")

    def test_campus_external_default_route(self):
        """The redistributed static default (type-2 external) reaches
        the access layer."""
        from repro.synth.campus import campus

        dataplane = compute_dataplane(load_snapshot_from_texts(campus(2, 1)))
        match = dataplane.main_rib("access1-0").longest_match(Ip("8.8.8.8"))
        assert match is not None
        prefix, routes = match
        assert prefix == Prefix("0.0.0.0/0")
        assert routes[0].protocol.value == "ospfE2"


class TestOscillationReporting:
    def test_max_iterations_reports_nonconvergence(self):
        """Even if no state repeats within the budget, hitting the
        iteration cap must not report convergence."""
        from repro.synth.special import figure1b

        dataplane = compute_dataplane(
            load_snapshot_from_texts(figure1b()),
            ConvergenceSettings(schedule="lockstep", max_iterations=2),
        )
        assert not dataplane.converged
