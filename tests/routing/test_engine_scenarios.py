"""End-to-end control-plane scenarios through the data-plane engine,
including the paper's Figure 1 convergence patterns."""

import pytest

from repro.config.loader import load_snapshot_from_texts
from repro.dataplane.fib import FibActionType, compute_fibs
from repro.hdr.ip import Ip, Prefix
from repro.routing.engine import ConvergenceSettings, compute_dataplane

OSPF_CHAIN = {
    "r1": """
hostname r1
interface Loopback0
 ip address 1.1.1.1 255.255.255.255
 ip ospf area 0
interface Ethernet0
 ip address 10.0.12.1 255.255.255.0
 ip ospf area 0
 ip ospf cost 10
router ospf 1
 router-id 1.1.1.1
""",
    "r2": """
hostname r2
interface Loopback0
 ip address 2.2.2.2 255.255.255.255
 ip ospf area 0
interface Ethernet0
 ip address 10.0.12.2 255.255.255.0
 ip ospf area 0
 ip ospf cost 10
interface Ethernet1
 ip address 10.0.23.2 255.255.255.0
 ip ospf area 0
 ip ospf cost 10
router ospf 1
 router-id 2.2.2.2
""",
    "r3": """
hostname r3
interface Loopback0
 ip address 3.3.3.3 255.255.255.255
 ip ospf area 0
interface Ethernet1
 ip address 10.0.23.3 255.255.255.0
 ip ospf area 0
 ip ospf cost 10
router ospf 1
 router-id 3.3.3.3
""",
}


class TestOspfChain:
    @pytest.fixture(scope="class")
    def dataplane(self):
        return compute_dataplane(load_snapshot_from_texts(OSPF_CHAIN))

    def test_converges(self, dataplane):
        assert dataplane.converged

    def test_remote_loopback_route(self, dataplane):
        match = dataplane.main_rib("r1").longest_match(Ip("3.3.3.3"))
        assert match is not None
        prefix, routes = match
        assert prefix == Prefix("3.3.3.3/32")
        assert routes[0].cost == 21  # 10 + 10 + loopback stub cost 1
        assert routes[0].next_hop_ip == Ip("10.0.12.2")

    def test_transit_prefix_route(self, dataplane):
        match = dataplane.main_rib("r1").longest_match(Ip("10.0.23.5"))
        assert match[1][0].cost == 20

    def test_fib_resolution(self, dataplane):
        fibs = compute_fibs(dataplane)
        entries = fibs["r1"].lookup(Ip("3.3.3.3"))
        assert len(entries) == 1
        assert entries[0].action is FibActionType.FORWARD
        assert entries[0].out_interface == "Ethernet0"
        assert entries[0].arp_ip == Ip("10.0.12.2")

    def test_no_route_is_empty_lookup(self, dataplane):
        fibs = compute_fibs(dataplane)
        assert fibs["r1"].lookup(Ip("192.0.2.1")) == []


EBGP_PAIR = {
    "r1": """
hostname r1
interface Ethernet0
 ip address 10.0.12.1 255.255.255.0
interface Loopback0
 ip address 1.1.1.1 255.255.255.255
router bgp 65001
 bgp router-id 1.1.1.1
 neighbor 10.0.12.2 remote-as 65002
 network 1.1.1.1 mask 255.255.255.255
""",
    "r2": """
hostname r2
interface Ethernet0
 ip address 10.0.12.2 255.255.255.0
router bgp 65002
 bgp router-id 2.2.2.2
 neighbor 10.0.12.1 remote-as 65001
""",
}


class TestEbgpPair:
    @pytest.fixture(scope="class")
    def dataplane(self):
        return compute_dataplane(load_snapshot_from_texts(EBGP_PAIR))

    def test_sessions_established(self, dataplane):
        assert all(s.established for s in dataplane.sessions)

    def test_route_propagates_with_as_path(self, dataplane):
        match = dataplane.main_rib("r2").longest_match(Ip("1.1.1.1"))
        assert match is not None
        route = match[1][0]
        assert route.as_path == (65001,)
        assert route.next_hop_ip == Ip("10.0.12.1")

    def test_session_compat_no_issues(self, dataplane):
        assert dataplane.session_issues == []


class TestSessionFailures:
    def test_as_mismatch_is_issue(self):
        configs = dict(EBGP_PAIR)
        configs["r2"] = configs["r2"].replace("remote-as 65001", "remote-as 65009")
        dataplane = compute_dataplane(load_snapshot_from_texts(configs))
        assert any("does not match" in i.issue or "expects AS" in i.issue
                   for i in dataplane.session_issues)
        assert not any(s.established for s in dataplane.sessions)

    def test_missing_reciprocal_config(self):
        configs = dict(EBGP_PAIR)
        configs["r2"] = """
hostname r2
interface Ethernet0
 ip address 10.0.12.2 255.255.255.0
router bgp 65002
 bgp router-id 2.2.2.2
"""
        dataplane = compute_dataplane(load_snapshot_from_texts(configs))
        assert any("no reciprocal" in i.issue for i in dataplane.session_issues)

    def test_unknown_peer_ip(self):
        configs = dict(EBGP_PAIR)
        configs["r1"] = configs["r1"].replace("10.0.12.2 remote-as", "10.0.99.2 remote-as")
        dataplane = compute_dataplane(load_snapshot_from_texts(configs))
        assert any("not present in snapshot" in i.issue
                   for i in dataplane.session_issues)

    def test_acl_blocking_bgp_prevents_session(self):
        """§4.1.1: session establishment depends on TCP viability, which
        ACLs can break."""
        configs = dict(EBGP_PAIR)
        configs["r2"] = """
hostname r2
interface Ethernet0
 ip address 10.0.12.2 255.255.255.0
 ip access-group NO_BGP in
router bgp 65002
 bgp router-id 2.2.2.2
 neighbor 10.0.12.1 remote-as 65001
ip access-list extended NO_BGP
 deny tcp any any eq bgp
 permit ip any any
"""
        dataplane = compute_dataplane(load_snapshot_from_texts(configs))
        failed = [s for s in dataplane.sessions if not s.established]
        assert failed
        assert any("blocks TCP/179" in s.failure_reason for s in failed)
        # No routes should have propagated.
        assert dataplane.main_rib("r2").longest_match(Ip("1.1.1.1")) is None


def _figure1b_configs():
    """The border-router re-advertisement loop of Figure 1b."""
    ext1 = """
hostname ext1
interface Ethernet0
 ip address 10.1.0.2 255.255.255.0
router bgp 100
 bgp router-id 9.9.9.1
 neighbor 10.1.0.1 remote-as 65000
 network 10.0.0.0 mask 255.0.0.0
ip route 10.0.0.0 255.0.0.0 Null0
"""
    ext2 = (
        ext1.replace("ext1", "ext2").replace("10.1.0", "10.2.0")
        .replace("bgp 100", "bgp 200").replace("9.9.9.1", "9.9.9.2")
    )
    r1 = """
hostname r1
interface Ethernet0
 ip address 10.1.0.1 255.255.255.0
interface Ethernet1
 ip address 10.12.0.1 255.255.255.0
router bgp 65000
 bgp router-id 1.1.1.1
 neighbor 10.1.0.2 remote-as 100
 neighbor 10.12.0.2 remote-as 65000
 neighbor 10.12.0.2 next-hop-self
 neighbor 10.12.0.2 route-map IBGP_IN in
route-map IBGP_IN permit 10
 set local-preference 200
"""
    r2 = (
        r1.replace("r1", "r2").replace("10.1.0", "10.2.0")
        .replace("10.12.0.1 255", "10.12.0.2 255")
        .replace("neighbor 10.12.0.2", "neighbor 10.12.0.1")
        .replace("remote-as 100", "remote-as 200")
        .replace("1.1.1.1", "2.2.2.2")
    )
    return {"ext1": ext1, "ext2": ext2, "r1": r1, "r2": r2}


class TestFigure1Convergence:
    def test_lockstep_oscillates(self):
        snapshot = load_snapshot_from_texts(_figure1b_configs())
        dataplane = compute_dataplane(
            snapshot, ConvergenceSettings(schedule="lockstep", max_iterations=50)
        )
        assert not dataplane.converged
        assert Prefix("10.0.0.0/8") in dataplane.oscillating_prefixes

    def test_colored_schedule_converges(self):
        snapshot = load_snapshot_from_texts(_figure1b_configs())
        dataplane = compute_dataplane(
            snapshot, ConvergenceSettings(schedule="colored", max_iterations=50)
        )
        assert dataplane.converged

    def test_colored_result_deterministic(self):
        results = []
        for _ in range(3):
            snapshot = load_snapshot_from_texts(_figure1b_configs())
            dataplane = compute_dataplane(
                snapshot, ConvergenceSettings(schedule="colored")
            )
            routes = tuple(
                route.describe()
                for node in sorted(dataplane.nodes)
                for route in dataplane.main_rib(node).routes()
            )
            results.append(routes)
        assert results[0] == results[1] == results[2]


IBGP_WITH_IGP = {
    "r1": """
hostname r1
interface Loopback0
 ip address 1.1.1.1 255.255.255.255
 ip ospf area 0
interface Ethernet0
 ip address 10.0.12.1 255.255.255.0
 ip ospf area 0
 ip ospf cost 10
interface Ethernet1
 ip address 203.0.113.1 255.255.255.0
router ospf 1
 router-id 1.1.1.1
router bgp 65000
 bgp router-id 1.1.1.1
 neighbor 2.2.2.2 remote-as 65000
 neighbor 2.2.2.2 update-source Loopback0
 neighbor 2.2.2.2 next-hop-self
 neighbor 203.0.113.2 remote-as 65100
""",
    "r2": """
hostname r2
interface Loopback0
 ip address 2.2.2.2 255.255.255.255
 ip ospf area 0
interface Ethernet0
 ip address 10.0.12.2 255.255.255.0
 ip ospf area 0
 ip ospf cost 10
router ospf 1
 router-id 2.2.2.2
router bgp 65000
 bgp router-id 2.2.2.2
 neighbor 1.1.1.1 remote-as 65000
 neighbor 1.1.1.1 update-source Loopback0
""",
    "ext": """
hostname ext
interface Ethernet0
 ip address 203.0.113.2 255.255.255.0
router bgp 65100
 bgp router-id 9.9.9.9
 neighbor 203.0.113.1 remote-as 65000
 network 198.51.100.0 mask 255.255.255.0
ip route 198.51.100.0 255.255.255.0 Null0
""",
}


class TestIbgpOverIgp:
    """iBGP between loopbacks, reachable via OSPF — exercises session
    viability against partial data-plane state (§4.1.1)."""

    @pytest.fixture(scope="class")
    def dataplane(self):
        return compute_dataplane(load_snapshot_from_texts(IBGP_WITH_IGP))

    def test_ibgp_session_established_via_igp(self, dataplane):
        ibgp = [s for s in dataplane.sessions if s.is_ibgp]
        assert ibgp and all(s.established for s in ibgp)

    def test_external_route_reaches_r2(self, dataplane):
        match = dataplane.main_rib("r2").longest_match(Ip("198.51.100.1"))
        assert match is not None
        route = match[1][0]
        assert route.as_path == (65100,)
        # next-hop-self: r1's loopback, not the external peer.
        assert route.next_hop_ip == Ip("1.1.1.1")

    def test_fib_recursive_resolution(self, dataplane):
        fibs = compute_fibs(dataplane)
        entries = fibs["r2"].lookup(Ip("198.51.100.1"))
        assert entries
        assert entries[0].out_interface == "Ethernet0"
        assert entries[0].arp_ip == Ip("10.0.12.1")


class TestStaticRoutes:
    def test_recursive_static_resolution(self):
        configs = {
            "r1": """
hostname r1
interface Ethernet0
 ip address 10.0.0.1 255.255.255.0
ip route 192.168.0.0 255.255.0.0 10.0.0.2
ip route 172.16.0.0 255.240.0.0 192.168.1.1
"""
        }
        dataplane = compute_dataplane(load_snapshot_from_texts(configs))
        fibs = compute_fibs(dataplane)
        entries = fibs["r1"].lookup(Ip("172.16.5.5"))
        assert entries
        assert entries[0].out_interface == "Ethernet0"
        # The ARP target is the innermost recursively-resolved gateway
        # (the one on the connected segment), not the route's next hop.
        assert entries[0].arp_ip == Ip("10.0.0.2")

    def test_unresolvable_static_not_installed(self):
        configs = {
            "r1": """
hostname r1
interface Ethernet0
 ip address 10.0.0.1 255.255.255.0
ip route 192.168.0.0 255.255.0.0 172.31.0.1
"""
        }
        dataplane = compute_dataplane(load_snapshot_from_texts(configs))
        assert dataplane.main_rib("r1").longest_match(Ip("192.168.1.1")) is None

    def test_null_route_becomes_drop(self):
        configs = {
            "r1": """
hostname r1
interface Ethernet0
 ip address 10.0.0.1 255.255.255.0
ip route 192.168.0.0 255.255.0.0 Null0
"""
        }
        dataplane = compute_dataplane(load_snapshot_from_texts(configs))
        fibs = compute_fibs(dataplane)
        entries = fibs["r1"].lookup(Ip("192.168.1.1"))
        assert entries[0].action is FibActionType.DROP_NULL


class TestRedistribution:
    def test_static_into_ospf(self):
        configs = dict(OSPF_CHAIN)
        configs["r1"] = configs["r1"] + (
            "ip route 172.20.0.0 255.255.0.0 Null0\n"
            "router ospf 1\n redistribute static\n"
        )
        dataplane = compute_dataplane(load_snapshot_from_texts(configs))
        match = dataplane.main_rib("r3").longest_match(Ip("172.20.1.1"))
        assert match is not None
        route = match[1][0]
        assert route.protocol.value == "ospfE2"
        assert route.cost == 20  # default external metric

    def test_redistribution_route_map_filter(self):
        configs = dict(OSPF_CHAIN)
        configs["r1"] = configs["r1"] + (
            "ip route 172.20.0.0 255.255.0.0 Null0\n"
            "ip route 172.21.0.0 255.255.0.0 Null0\n"
            "ip prefix-list ONLY20 seq 5 permit 172.20.0.0/16\n"
            "router ospf 1\n redistribute static route-map FILTER\n"
            "route-map FILTER permit 10\n match ip address prefix-list ONLY20\n"
        )
        dataplane = compute_dataplane(load_snapshot_from_texts(configs))
        rib3 = dataplane.main_rib("r3")
        assert rib3.longest_match(Ip("172.20.1.1")) is not None
        assert rib3.longest_match(Ip("172.21.1.1")) is None
