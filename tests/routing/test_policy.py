"""Tests for route-map evaluation, including long-tail semantics knobs."""

import pytest

from repro.config.loader import parse_config_text
from repro.hdr.ip import Ip, Prefix
from repro.routing.policy import (
    PolicyRoute,
    PolicySemantics,
    apply_route_map,
)

DEVICE = """\
hostname r1
ip prefix-list TEN seq 5 permit 10.0.0.0/8 le 24
ip community-list standard GOLD permit 65000:100
ip as-path access-list FROM_100 permit ^100_
route-map POLICY permit 10
 match ip address prefix-list TEN
 set local-preference 300
 set community 65000:42 additive
route-map POLICY permit 20
 match community GOLD
 set metric 77
route-map POLICY deny 30
route-map PREPEND permit 10
 set as-path prepend 65000 65000
route-map BY_ASPATH permit 10
 match as-path FROM_100
route-map BY_TAG permit 10
 match tag 99
route-map NEXT_HOP permit 10
 set ip next-hop 192.0.2.99
route-map UNDEF_PL permit 10
 match ip address prefix-list NO_SUCH_LIST
"""


@pytest.fixture(scope="module")
def device():
    dev, _ = parse_config_text(DEVICE)
    return dev


def _route(prefix="10.1.0.0/16", **kwargs):
    return PolicyRoute(prefix=Prefix(prefix), **kwargs)


class TestMatching:
    def test_prefix_list_match_applies_sets(self, device):
        result = apply_route_map(device, "POLICY", _route())
        assert result.permitted
        assert result.route.local_pref == 300
        assert "65000:42" in result.route.communities

    def test_fallthrough_to_community_clause(self, device):
        route = _route("172.16.0.0/16", communities={"65000:100"})
        result = apply_route_map(device, "POLICY", route)
        assert result.permitted
        assert result.route.med == 77
        assert result.route.local_pref == 100  # untouched by clause 20

    def test_no_match_hits_deny_clause(self, device):
        result = apply_route_map(device, "POLICY", _route("172.16.0.0/16"))
        assert not result.permitted
        assert result.route is None

    def test_as_path_match(self, device):
        assert apply_route_map(
            device, "BY_ASPATH", _route(as_path=(100, 200))
        ).permitted
        assert not apply_route_map(
            device, "BY_ASPATH", _route(as_path=(200, 100))
        ).permitted

    def test_tag_match(self, device):
        assert apply_route_map(device, "BY_TAG", _route(tag=99)).permitted
        assert not apply_route_map(device, "BY_TAG", _route(tag=1)).permitted

    def test_original_route_not_mutated(self, device):
        route = _route()
        apply_route_map(device, "POLICY", route)
        assert route.local_pref == 100
        assert route.communities == set()


class TestSets:
    def test_as_path_prepend(self, device):
        result = apply_route_map(device, "PREPEND", _route(as_path=(3356,)))
        assert result.route.as_path == (65000, 65000, 3356)

    def test_next_hop_set(self, device):
        result = apply_route_map(device, "NEXT_HOP", _route())
        assert result.route.next_hop_ip == Ip("192.0.2.99")


class TestLongTailSemantics:
    def test_no_policy_permits_unchanged(self, device):
        route = _route()
        result = apply_route_map(device, None, route)
        assert result.permitted
        assert result.route.local_pref == route.local_pref

    def test_undefined_route_map_default_permits(self, device):
        result = apply_route_map(device, "NO_SUCH_MAP", _route())
        assert result.permitted
        assert "undefined" in result.trace[0]

    def test_undefined_route_map_deny_semantics(self, device):
        semantics = PolicySemantics(undefined_route_map_permits=False)
        result = apply_route_map(device, "NO_SUCH_MAP", _route(), semantics)
        assert not result.permitted

    def test_undefined_prefix_list_fails_match(self, device):
        # Clause matches nothing -> implicit deny at the end.
        result = apply_route_map(device, "UNDEF_PL", _route())
        assert not result.permitted

    def test_undefined_prefix_list_alternate_semantics(self, device):
        semantics = PolicySemantics(undefined_prefix_list_fails_match=False)
        result = apply_route_map(device, "UNDEF_PL", _route(), semantics)
        assert result.permitted

    def test_trace_explains_decision(self, device):
        result = apply_route_map(device, "POLICY", _route())
        assert any("clause 10: permit" in line for line in result.trace)
        assert any("set local-preference 300" in line for line in result.trace)
