"""Tests for the LPM prefix trie, including a property-based comparison
against linear-scan longest-prefix matching."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdr.ip import Ip, Prefix
from repro.routing.prefix_trie import PrefixTrie


class TestBasics:
    def test_empty(self):
        trie = PrefixTrie()
        assert len(trie) == 0
        assert trie.longest_match(Ip("1.2.3.4")) is None
        assert trie.get(Prefix("10.0.0.0/8")) == []

    def test_add_and_get(self):
        trie = PrefixTrie()
        trie.add(Prefix("10.0.0.0/8"), "a")
        trie.add(Prefix("10.0.0.0/8"), "b")
        assert trie.get(Prefix("10.0.0.0/8")) == ["a", "b"]
        assert len(trie) == 1

    def test_longest_match_picks_most_specific(self):
        trie = PrefixTrie()
        trie.add(Prefix("0.0.0.0/0"), "default")
        trie.add(Prefix("10.0.0.0/8"), "eight")
        trie.add(Prefix("10.1.0.0/16"), "sixteen")
        prefix, values = trie.longest_match(Ip("10.1.2.3"))
        assert prefix == Prefix("10.1.0.0/16")
        assert values == ["sixteen"]
        prefix, values = trie.longest_match(Ip("10.9.9.9"))
        assert prefix == Prefix("10.0.0.0/8")
        prefix, values = trie.longest_match(Ip("192.168.0.1"))
        assert prefix == Prefix("0.0.0.0/0")

    def test_host_route(self):
        trie = PrefixTrie()
        trie.add(Prefix("10.0.0.1/32"), "host")
        trie.add(Prefix("10.0.0.0/24"), "net")
        assert trie.longest_match(Ip("10.0.0.1"))[1] == ["host"]
        assert trie.longest_match(Ip("10.0.0.2"))[1] == ["net"]

    def test_remove(self):
        trie = PrefixTrie()
        trie.add(Prefix("10.0.0.0/8"), "a")
        trie.add(Prefix("10.0.0.0/8"), "b")
        assert trie.remove(Prefix("10.0.0.0/8"), "a")
        assert trie.get(Prefix("10.0.0.0/8")) == ["b"]
        assert not trie.remove(Prefix("10.0.0.0/8"), "zzz")
        assert trie.remove(Prefix("10.0.0.0/8"), "b")
        assert len(trie) == 0

    def test_remove_prefix(self):
        trie = PrefixTrie()
        trie.add(Prefix("10.0.0.0/8"), "a")
        assert trie.remove_prefix(Prefix("10.0.0.0/8"))
        assert not trie.remove_prefix(Prefix("10.0.0.0/8"))

    def test_replace(self):
        trie = PrefixTrie()
        trie.add(Prefix("10.0.0.0/8"), "a")
        trie.replace(Prefix("10.0.0.0/8"), ["x", "y"])
        assert trie.get(Prefix("10.0.0.0/8")) == ["x", "y"]
        trie.replace(Prefix("10.0.0.0/8"), [])
        assert len(trie) == 0

    def test_items_sorted(self):
        trie = PrefixTrie()
        prefixes = [Prefix("10.0.0.0/8"), Prefix("9.0.0.0/8"), Prefix("10.0.0.0/16")]
        for p in prefixes:
            trie.add(p, str(p))
        listed = [p for p, _ in trie.items()]
        assert listed == sorted(prefixes)

    def test_covering_prefixes(self):
        trie = PrefixTrie()
        trie.add(Prefix("0.0.0.0/0"), "d")
        trie.add(Prefix("10.0.0.0/8"), "a")
        trie.add(Prefix("10.1.0.0/16"), "b")
        covering = trie.covering_prefixes(Prefix("10.1.2.0/24"))
        assert covering == [
            Prefix("0.0.0.0/0"),
            Prefix("10.0.0.0/8"),
            Prefix("10.1.0.0/16"),
        ]

    def test_covered_prefixes(self):
        trie = PrefixTrie()
        trie.add(Prefix("10.0.0.0/8"), "a")
        trie.add(Prefix("10.1.0.0/16"), "b")
        trie.add(Prefix("10.1.2.0/24"), "c")
        trie.add(Prefix("11.0.0.0/8"), "other")
        covered = trie.covered_prefixes(Prefix("10.0.0.0/8"))
        assert covered == [Prefix("10.1.0.0/16"), Prefix("10.1.2.0/24")]

    def test_zero_length_prefix(self):
        trie = PrefixTrie()
        trie.add(Prefix("0.0.0.0/0"), "default")
        assert trie.longest_match(Ip("255.255.255.255"))[0] == Prefix("0.0.0.0/0")
        assert [p for p, _ in trie.items()] == [Prefix("0.0.0.0/0")]


@st.composite
def _prefix(draw):
    value = draw(st.integers(min_value=0, max_value=0xFFFFFFFF))
    length = draw(st.integers(min_value=0, max_value=32))
    return Prefix(value, length)


class TestAgainstLinearScan:
    @given(st.lists(_prefix(), min_size=1, max_size=30),
           st.integers(min_value=0, max_value=0xFFFFFFFF))
    @settings(max_examples=200)
    def test_longest_match_matches_linear(self, prefixes, probe):
        trie = PrefixTrie()
        for p in prefixes:
            trie.add(p, str(p))
        expected = None
        for p in prefixes:
            if p.contains_ip(Ip(probe)):
                if expected is None or p.length > expected.length:
                    expected = p
        result = trie.longest_match(probe)
        if expected is None:
            assert result is None
        else:
            assert result[0] == expected

    @given(st.lists(_prefix(), min_size=1, max_size=20))
    @settings(max_examples=100)
    def test_items_roundtrip(self, prefixes):
        trie = PrefixTrie()
        for p in prefixes:
            trie.add(p, "v")
        assert {p for p, _ in trie.items()} == set(prefixes)
