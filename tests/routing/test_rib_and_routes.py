"""Tests for route values, interning, RIBs, and RIB deltas."""

import pytest

from repro.hdr.ip import Ip, Prefix
from repro.routing.rib import Rib, RibDelta, main_rib_preference
from repro.routing.route import (
    AD_EBGP,
    AD_OSPF,
    BgpAttributes,
    BgpRoute,
    ConnectedRoute,
    InternPool,
    OspfRoute,
    OspfRouteType,
    StaticRouteEntry,
    estimate_route_memory,
    intern_as_path,
    intern_communities,
    interning_stats,
    reset_interning,
)


@pytest.fixture(autouse=True)
def fresh_pools():
    reset_interning()
    yield
    reset_interning()


class TestInterning:
    def test_pool_returns_canonical(self):
        pool = InternPool("test")
        a = (1, 2, 3)
        b = (1, 2, 3)
        assert pool.intern(a) is pool.intern(b)
        assert pool.unique == 1
        assert pool.requests == 2

    def test_attributes_interned(self):
        a = BgpAttributes.make(as_path=(65001,), local_pref=200)
        b = BgpAttributes.make(as_path=(65001,), local_pref=200)
        assert a is b
        c = BgpAttributes.make(as_path=(65001,), local_pref=100)
        assert a is not c

    def test_with_changes_reinterned(self):
        a = BgpAttributes.make(local_pref=100)
        b = a.with_changes(local_pref=200)
        c = BgpAttributes.make(local_pref=200)
        assert b is c

    def test_as_path_and_communities(self):
        assert intern_as_path((1, 2)) is intern_as_path((1, 2))
        # Community sets canonicalize: sorted, deduplicated.
        assert intern_communities(("b:1", "a:1", "a:1")) == ("a:1", "b:1")

    def test_stats(self):
        BgpAttributes.make(local_pref=1)
        BgpAttributes.make(local_pref=1)
        stats = interning_stats()
        assert stats["bgp-attributes"]["requests"] >= 2
        assert stats["bgp-attributes"]["unique"] >= 1

    def test_memory_estimate_shape(self):
        # Interned layout should be dramatically smaller when bundles
        # are shared 10-20x (the paper's ~50% claim at the route level).
        interned = estimate_route_memory(10000, 500, interned=True)
        flat = estimate_route_memory(10000, 500, interned=False)
        assert interned < flat
        assert flat / interned > 1.5


class TestRouteValues:
    def test_connected(self):
        route = ConnectedRoute(prefix=Prefix("10.0.1.0/24"), interface="e0")
        assert route.admin_distance == 0
        assert "connected" in route.describe()

    def test_static_null(self):
        route = StaticRouteEntry(
            prefix=Prefix("10.0.0.0/8"), next_hop_ip=None, next_hop_interface="Null0"
        )
        assert route.is_null_routed

    def test_ospf_protocols(self):
        intra = OspfRoute(Prefix("1.0.0.0/8"), 10, 0, Ip("1.1.1.1"), "e0")
        e2 = OspfRoute(
            Prefix("1.0.0.0/8"), 20, 0, Ip("1.1.1.1"), "e0",
            route_type=OspfRouteType.EXTERNAL_2,
        )
        assert intra.protocol.value == "ospf"
        assert e2.protocol.value == "ospfE2"

    def test_bgp_route_properties(self):
        route = BgpRoute(
            prefix=Prefix("8.0.0.0/8"),
            next_hop_ip=Ip("10.0.0.1"),
            attributes=BgpAttributes.make(as_path=(65001, 3356), local_pref=150),
        )
        assert route.as_path == (65001, 3356)
        assert route.local_pref == 150
        assert route.admin_distance == AD_EBGP
        assert "8.0.0.0/8" in route.describe()


class TestRibDelta:
    def test_extend_cancels(self):
        a = RibDelta(added=["r1"], removed=[])
        b = RibDelta(added=[], removed=["r1"])
        a.extend(b)
        assert a.empty

    def test_extend_accumulates(self):
        a = RibDelta(added=["r1"], removed=["r2"])
        a.extend(RibDelta(added=["r3"], removed=[]))
        assert a.added == ["r1", "r3"]

    def test_clear_returns_snapshot(self):
        delta = RibDelta(added=["r1"], removed=["r2"])
        snapshot = delta.clear()
        assert snapshot.added == ["r1"]
        assert delta.empty


class TestRib:
    def _connected(self, prefix, iface="e0"):
        return ConnectedRoute(prefix=Prefix(prefix), interface=iface)

    def _ospf(self, prefix, cost, iface="e0", nh="10.0.0.2"):
        return OspfRoute(Prefix(prefix), cost, 0, Ip(nh), iface)

    def test_admin_distance_preference(self):
        rib = Rib()
        ospf = self._ospf("10.0.0.0/24", 10)
        rib.merge(ospf)
        assert rib.best_routes(Prefix("10.0.0.0/24")) == [ospf]
        connected = self._connected("10.0.0.0/24")
        rib.merge(connected)
        assert rib.best_routes(Prefix("10.0.0.0/24")) == [connected]

    def test_metric_preference_within_protocol(self):
        rib = Rib()
        worse = self._ospf("10.0.0.0/24", 20)
        better = self._ospf("10.0.0.0/24", 10, iface="e1")
        rib.merge(worse)
        rib.merge(better)
        assert rib.best_routes(Prefix("10.0.0.0/24")) == [better]

    def test_ecmp_set(self):
        rib = Rib()
        a = self._ospf("10.0.0.0/24", 10, iface="e0", nh="10.0.1.2")
        b = self._ospf("10.0.0.0/24", 10, iface="e1", nh="10.0.2.2")
        rib.merge(a)
        rib.merge(b)
        assert set(rib.best_routes(Prefix("10.0.0.0/24"))) == {a, b}

    def test_delta_tracks_best_changes(self):
        rib = Rib()
        ospf = self._ospf("10.0.0.0/24", 10)
        rib.merge(ospf)
        delta = rib.take_delta()
        assert delta.added == [ospf]
        connected = self._connected("10.0.0.0/24")
        rib.merge(connected)
        delta = rib.take_delta()
        assert delta.added == [connected]
        assert delta.removed == [ospf]

    def test_duplicate_merge_is_noop(self):
        rib = Rib()
        route = self._connected("10.0.0.0/24")
        assert rib.merge(route)
        rib.take_delta()
        assert not rib.merge(route)
        assert rib.take_delta().empty

    def test_withdraw_restores_runner_up(self):
        rib = Rib()
        ospf = self._ospf("10.0.0.0/24", 10)
        connected = self._connected("10.0.0.0/24")
        rib.merge(ospf)
        rib.merge(connected)
        rib.take_delta()
        rib.withdraw(connected)
        assert rib.best_routes(Prefix("10.0.0.0/24")) == [ospf]
        delta = rib.take_delta()
        assert delta.added == [ospf]
        assert delta.removed == [connected]

    def test_withdraw_missing_is_noop(self):
        rib = Rib()
        assert not rib.withdraw(self._connected("10.0.0.0/24"))

    def test_longest_match_over_best(self):
        rib = Rib()
        rib.merge(self._connected("10.0.0.0/8", "e0"))
        rib.merge(self._connected("10.1.0.0/16", "e1"))
        prefix, routes = rib.longest_match(Ip("10.1.2.3"))
        assert prefix == Prefix("10.1.0.0/16")
        assert routes[0].interface == "e1"

    def test_len_counts_best_routes(self):
        rib = Rib()
        rib.merge(self._connected("10.0.0.0/24", "e0"))
        rib.merge(self._connected("10.0.1.0/24", "e1"))
        assert len(rib) == 2

    def test_main_rib_preference_keys(self):
        connected = self._connected("10.0.0.0/24")
        ospf = self._ospf("10.0.0.0/24", 5)
        assert main_rib_preference(connected) < main_rib_preference(ospf)
