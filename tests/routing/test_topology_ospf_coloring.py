"""Unit tests for L3 topology inference, OSPF computation pieces, and
graph coloring."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.loader import load_snapshot_from_texts
from repro.hdr.ip import Ip, Prefix
from repro.routing.coloring import color_classes, greedy_coloring, verify_coloring
from repro.routing.ospf import compute_ospf, interface_cost, ospf_neighbors
from repro.routing.topology import (
    InterfaceId,
    build_layer3_topology,
    duplicate_ips,
)

TOPO = {
    "a": """
hostname a
interface e0
 ip address 10.0.0.1 255.255.255.0
interface e1
 ip address 10.0.1.1 255.255.255.252
interface lonely
 ip address 172.16.0.1 255.255.255.0
""",
    "b": """
hostname b
interface e0
 ip address 10.0.0.2 255.255.255.0
interface e1
 ip address 10.0.1.2 255.255.255.252
""",
    "c": """
hostname c
interface e0
 ip address 10.0.0.3 255.255.255.0
""",
}


class TestTopology:
    @pytest.fixture(scope="class")
    def topology(self):
        return build_layer3_topology(load_snapshot_from_texts(TOPO))

    def test_lan_full_mesh(self, topology):
        # Three devices on 10.0.0.0/24 -> 6 directed edges; plus the
        # p2p a<->b -> 2 more.
        assert len(topology.edges()) == 8

    def test_neighbors(self, topology):
        assert topology.neighbors("a") == ["b", "c"]

    def test_edges_from(self, topology):
        edges = topology.edges_from(InterfaceId("a", "e1"))
        assert len(edges) == 1
        assert edges[0].head == InterfaceId("b", "e1")
        assert edges[0].head_ip == Ip("10.0.1.2")

    def test_has_remote_end(self, topology):
        assert topology.has_remote_end(InterfaceId("a", "e0"))
        assert not topology.has_remote_end(InterfaceId("a", "lonely"))

    def test_edge_reversal(self, topology):
        edge = topology.edges_from(InterfaceId("a", "e1"))[0]
        assert edge.reversed().tail == edge.head

    def test_no_duplicates(self):
        assert duplicate_ips(load_snapshot_from_texts(TOPO)) == []

    def test_duplicate_detection(self):
        configs = dict(TOPO)
        configs["d"] = """
hostname d
interface e0
 ip address 10.0.0.2 255.255.255.0
"""
        duplicates = duplicate_ips(load_snapshot_from_texts(configs))
        assert len(duplicates) == 1
        ip, owners = duplicates[0]
        assert ip == Ip("10.0.0.2")
        assert {o.node for o in owners} == {"b", "d"}


OSPF_NET = {
    "a": """
hostname a
interface e0
 ip address 10.0.0.1 255.255.255.252
 ip ospf area 0
 ip ospf cost 5
interface slow
 ip address 10.0.1.1 255.255.255.252
 ip ospf area 0
 bandwidth 10000
router ospf 1
""",
    "b": """
hostname b
interface e0
 ip address 10.0.0.2 255.255.255.252
 ip ospf area 0
 ip ospf cost 5
interface lan
 ip address 172.16.9.1 255.255.255.0
 ip ospf area 0
 ip ospf passive
router ospf 1
""",
}


class TestOspfPieces:
    def test_interface_cost_explicit(self):
        snapshot = load_snapshot_from_texts(OSPF_NET)
        assert interface_cost(snapshot.device("a"), "e0") == 5

    def test_interface_cost_from_bandwidth(self):
        snapshot = load_snapshot_from_texts(OSPF_NET)
        # 100 Mbps reference / 10 Mbps = 10.
        assert interface_cost(snapshot.device("a"), "slow") == 10

    def test_neighbors_require_both_sides(self):
        snapshot = load_snapshot_from_texts(OSPF_NET)
        topology = build_layer3_topology(snapshot)
        neighbors = ospf_neighbors(snapshot, topology)
        pairs = {(n.edge.tail.node, n.edge.head.node) for n in neighbors}
        assert pairs == {("a", "b"), ("b", "a")}

    def test_passive_interface_not_adjacent_but_advertised(self):
        snapshot = load_snapshot_from_texts(OSPF_NET)
        topology = build_layer3_topology(snapshot)
        computation = compute_ospf(snapshot, topology)
        routes_a = computation.routes["a"]
        lan = [r for r in routes_a if r.prefix == Prefix("172.16.9.0/24")]
        assert lan  # advertised via passive interface
        assert lan[0].cost == 5 + 1  # link cost + stub cost

    def test_area_mismatch_blocks_adjacency(self):
        configs = dict(OSPF_NET)
        configs["b"] = configs["b"].replace(
            " ip address 10.0.0.2 255.255.255.252\n ip ospf area 0",
            " ip address 10.0.0.2 255.255.255.252\n ip ospf area 7",
        )
        snapshot = load_snapshot_from_texts(configs)
        topology = build_layer3_topology(snapshot)
        assert ospf_neighbors(snapshot, topology) == []


class TestColoring:
    def test_simple_bipartite(self):
        colors = greedy_coloring(["a", "b"], [("a", "b")])
        assert colors["a"] != colors["b"]

    def test_classes_grouped_and_sorted(self):
        colors = greedy_coloring(["a", "b", "c"], [("a", "b"), ("b", "c")])
        classes = color_classes(colors)
        assert ["a", "c"] in classes

    def test_self_loop_ignored(self):
        colors = greedy_coloring(["a"], [("a", "a")])
        assert colors == {"a": 0}

    def test_isolated_nodes_share_color(self):
        colors = greedy_coloring(["x", "y", "z"], [])
        assert set(colors.values()) == {0}

    def test_deterministic(self):
        edges = [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")]
        first = greedy_coloring(["a", "b", "c", "d"], edges)
        second = greedy_coloring(["d", "c", "b", "a"], list(reversed(edges)))
        assert first == second

    @given(
        st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=40
        )
    )
    @settings(max_examples=100)
    def test_coloring_is_proper_property(self, int_edges):
        edges = [(f"n{a}", f"n{b}") for a, b in int_edges]
        nodes = {n for edge in edges for n in edge}
        colors = greedy_coloring(nodes, edges)
        assert verify_coloring(colors, edges)
