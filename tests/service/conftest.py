"""Shared fixtures for the service tests: an in-process server on an
ephemeral port plus a tiny JSON HTTP client."""

import json
import urllib.error
import urllib.request

import pytest

from repro.service import AnalysisService, ServiceConfig


class Client:
    """Minimal JSON client for the service API (stdlib only)."""

    def __init__(self, port: int):
        self.base = f"http://127.0.0.1:{port}"

    def request(self, method: str, path: str, body=None):
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            self.base + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=60) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def get(self, path):
        return self.request("GET", path)

    def post(self, path, body=None):
        return self.request("POST", path, body or {})

    def delete(self, path):
        return self.request("DELETE", path)


@pytest.fixture
def make_service():
    """Factory: boot an AnalysisService on an ephemeral localhost port.

    Every service is torn down (without drain) at test exit; tests that
    verify drain call stop() themselves — stop is idempotent.
    """
    services = []

    def make(**kwargs) -> "tuple[AnalysisService, Client]":
        kwargs.setdefault("port", 0)
        service = AnalysisService(ServiceConfig(**kwargs))
        service.start()
        services.append(service)
        return service, Client(service.port)

    yield make
    for service in services:
        service.stop(drain=False, timeout=10.0)
