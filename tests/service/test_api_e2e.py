"""End-to-end tests: a real server on an ephemeral localhost port,
driven over HTTP — the acceptance surface of the service subsystem.

Covers the full acceptance checklist: snapshot init + questions,
coalescing of concurrent identical requests (one underlying
computation), 429 under a full queue, structured 422 for a snapshot
that fails to converge (without killing a worker), and clean drain on
shutdown with in-flight jobs completing.
"""

import time

import pytest

from repro.service.jobs import JobStatus
from repro.synth.special import figure1b, net1


class TestSnapshots:
    def test_init_list_get_delete(self, make_service):
        _, client = make_service()
        status, record = client.post(
            "/snapshots", {"name": "lab", "configs": net1(2)}
        )
        assert status == 201
        assert record["devices"] == 4
        status, listing = client.get("/snapshots")
        assert status == 200
        assert [r["name"] for r in listing["snapshots"]] == ["lab"]
        status, one = client.get("/snapshots/lab")
        assert status == 200 and one["key"] == record["key"]
        status, body = client.delete("/snapshots/lab")
        assert status == 200
        status, body = client.get("/snapshots/lab")
        assert status == 404
        assert body["error"]["code"] == "snapshot_not_found"

    def test_conflict_and_bad_requests(self, make_service):
        _, client = make_service()
        client.post("/snapshots", {"name": "lab", "configs": net1(2)})
        status, body = client.post(
            "/snapshots", {"name": "lab", "configs": net1(2)}
        )
        assert status == 409
        assert body["error"]["code"] == "snapshot_conflict"
        status, body = client.post("/snapshots", {"name": "lab"})
        assert status == 400
        status, body = client.post("/snapshots", {"name": "no/slash",
                                                  "configs": net1(2)})
        assert status == 400

    def test_unknown_path_is_404(self, make_service):
        _, client = make_service()
        status, body = client.get("/nonsense")
        assert status == 404
        assert body["error"]["code"] == "not_found"


class TestQuestions:
    def test_routes_and_reachability_sync(self, make_service):
        _, client = make_service()
        client.post("/snapshots", {"name": "lab", "configs": net1(2)})
        status, body = client.post("/snapshots/lab/questions/routes")
        assert status == 200
        assert body["status"] == "done"
        assert body["result"]["count"] > 0
        status, body = client.post("/snapshots/lab/questions/reachability")
        assert status == 200
        assert body["result"]["success"]
        assert body["result"]["dispositions"]

    def test_lint_question(self, make_service):
        _, client = make_service()
        client.post("/snapshots", {"name": "lab", "configs": net1(2)})
        status, body = client.post("/snapshots/lab/questions/lint")
        assert status == 200
        result = body["result"]
        assert set(result) >= {"findings", "summary", "rule_seconds"}
        assert result["summary"]["total"] == len(
            [f for f in result["findings"] if not f.get("suppressed")]
        )
        # Rule filtering through lintconfig params.
        status, body = client.post(
            "/snapshots/lab/questions/lint",
            {"params": {"lintconfig": {"rules": ["duplicate-ip"]}}},
        )
        assert status == 200
        assert set(body["result"]["rule_seconds"]) == {"duplicate-ip"}
        # Malformed lintconfig becomes a structured 400.
        status, body = client.post(
            "/snapshots/lab/questions/lint",
            {"params": {"lintconfig": {"bogus": 1}}},
        )
        assert status == 400
        # Lint runs register per-rule counters on /metrics.
        status, metrics = client.get("/metrics")
        assert status == 200
        counters = metrics["obs"]["counters"]
        assert counters.get("lint.runs", 0) >= 2
        assert "lint.findings.duplicate-ip" in counters

    def test_unknown_question_and_snapshot(self, make_service):
        _, client = make_service()
        client.post("/snapshots", {"name": "lab", "configs": net1(2)})
        status, body = client.post("/snapshots/lab/questions/divination")
        assert status == 400
        assert body["error"]["code"] == "unknown_question"
        status, body = client.post("/snapshots/ghost/questions/routes")
        assert status == 404

    def test_async_submit_then_poll(self, make_service):
        _, client = make_service()
        client.post("/snapshots", {"name": "lab", "configs": net1(2)})
        status, body = client.post(
            "/snapshots/lab/questions/routes", {"wait": False}
        )
        assert status in (200, 202)  # may even finish that fast
        job_id = body["id"]
        deadline = time.time() + 30
        while time.time() < deadline:
            status, body = client.get(f"/jobs/{job_id}")
            if body["status"] == "done":
                break
            time.sleep(0.05)
        assert body["status"] == "done"
        assert body["result"]["count"] > 0

    def test_non_convergent_snapshot_returns_422(self, make_service):
        service, client = make_service()
        status, _ = client.post(
            "/snapshots",
            {"name": "osc", "configs": figure1b(),
             "settings": {"schedule": "lockstep", "max_iterations": 40}},
        )
        assert status == 201  # parsing works; divergence shows at question time
        status, body = client.post("/snapshots/osc/questions/routes")
        assert status == 422
        assert body["error"]["code"] == "analysis_failed"
        assert body["error"]["details"]["kind"] == "not_converged"
        assert "10.0.0.0/8" in body["error"]["message"]
        # The worker survived: the service still answers.
        status, health = client.get("/healthz")
        assert status == 200 and health["status"] == "ok"
        client.post("/snapshots", {"name": "lab", "configs": net1(2)})
        status, body = client.post("/snapshots/lab/questions/routes")
        assert status == 200 and body["status"] == "done"


class TestConcurrency:
    def test_coalescing_and_queue_full(self, make_service):
        # One worker + tiny queue makes scheduling deterministic: hold
        # the worker with a debug sleep, then drive the queue precisely.
        service, client = make_service(workers=1, max_queue=2, debug=True)
        client.post("/snapshots", {"name": "lab", "configs": net1(2)})

        status, blocker = client.post(
            "/snapshots/lab/questions/sleep",
            {"params": {"seconds": 1.5}, "wait": False},
        )
        assert status == 202

        # Two concurrent identical requests -> one job, one computation.
        s1, j1 = client.post("/snapshots/lab/questions/routes", {"wait": False})
        s2, j2 = client.post("/snapshots/lab/questions/routes", {"wait": False})
        assert s1 == 202 and s2 == 202
        assert j1["id"] == j2["id"]
        assert j2["coalesced_request"] is True
        assert service.queue.stats()["coalesced"] >= 1

        # Queue capacity 2: the routes job holds one slot; one more
        # distinct question fits, the next bounces with 429.
        s3, _ = client.post(
            "/snapshots/lab/questions/parse_warnings", {"wait": False}
        )
        assert s3 == 202
        s4, body = client.post(
            "/snapshots/lab/questions/duplicate_ips", {"wait": False}
        )
        assert s4 == 429
        assert body["error"]["code"] == "queue_full"

        status, metrics = client.get("/metrics")
        assert metrics["queue"]["coalesced"] >= 1
        assert metrics["queue"]["rejected"] >= 1

        # Once the blocker finishes, the coalesced job completes once.
        status, body = client.get(f"/jobs/{j1['id']}")
        deadline = time.time() + 30
        while body["status"] not in ("done", "failed") and time.time() < deadline:
            time.sleep(0.1)
            status, body = client.get(f"/jobs/{j1['id']}")
        assert body["status"] == "done"
        assert body["coalesced"] == 1

    def test_cancel_queued_job(self, make_service):
        service, client = make_service(workers=1, max_queue=4, debug=True)
        client.post("/snapshots", {"name": "lab", "configs": net1(2)})
        client.post(
            "/snapshots/lab/questions/sleep",
            {"params": {"seconds": 1.0}, "wait": False},
        )
        status, job = client.post(
            "/snapshots/lab/questions/routes", {"wait": False}
        )
        status, body = client.delete(f"/jobs/{job['id']}")
        assert status == 200 and body["cancelled"] is True
        status, body = client.get(f"/jobs/{job['id']}")
        assert body["status"] == "cancelled"


class TestObservability:
    def test_healthz_and_metrics_shapes(self, make_service):
        _, client = make_service(cache=None)
        status, health = client.get("/healthz")
        assert status == 200
        assert set(health) == {"status", "snapshots", "queue_depth",
                               "queue_oldest_age_seconds"}
        status, metrics = client.get("/metrics")
        assert status == 200
        assert {"queue", "snapshots", "obs"} <= set(metrics)
        assert {"submitted", "completed", "coalesced", "rejected",
                "depth"} <= set(metrics["queue"])

    def test_cache_stats_surface_when_cached(self, make_service, tmp_path):
        _, client = make_service(cache=str(tmp_path))
        client.post("/snapshots", {"name": "a", "configs": net1(2)})
        client.post("/snapshots", {"name": "b", "configs": net1(2)})
        status, metrics = client.get("/metrics")
        assert metrics["cache"]["hits"] >= 1

    def test_questions_endpoint(self, make_service):
        _, client = make_service()
        status, body = client.get("/questions")
        assert status == 200
        assert "routes" in body["questions"]
        assert "sleep" not in body["questions"]  # debug off by default


class TestShutdown:
    def test_stop_drains_inflight_jobs(self, make_service):
        service, client = make_service(workers=1, max_queue=8, debug=True)
        client.post("/snapshots", {"name": "lab", "configs": net1(2)})
        status, running = client.post(
            "/snapshots/lab/questions/sleep",
            {"params": {"seconds": 0.8}, "wait": False},
        )
        status, queued = client.post(
            "/snapshots/lab/questions/routes", {"wait": False}
        )
        assert service.stop(drain=True, timeout=30)
        # Both the running and the queued job completed before stop
        # returned — nothing was dropped.
        assert service.queue.get(running["id"]).status is JobStatus.DONE
        assert service.queue.get(queued["id"]).status is JobStatus.DONE
        assert not service.queue.accepting


class TestPatchSnapshot:
    def test_patch_applies_incremental_update(self, make_service):
        _, client = make_service()
        configs = net1(2)
        status, record = client.post(
            "/snapshots", {"name": "lab", "configs": configs}
        )
        assert status == 201
        target = sorted(configs)[0]
        inert = configs[target] + "ntp server 203.0.113.250\n"
        status, patched = client.request(
            "PATCH", "/snapshots/lab", {"configs": {target: inert}}
        )
        assert status == 200
        assert patched["key"] != record["key"]
        assert patched["devices"] == record["devices"]
        delta = patched["delta"]
        assert delta["changed_files"] == [target]
        assert delta["dirty_devices"] == []
        assert delta["reused_devices"] == record["devices"]
        assert delta["parse_memo_hits"] == record["devices"] - 1
        # The replaced session answers questions and GET reflects it.
        status, one = client.get("/snapshots/lab")
        assert status == 200 and one["key"] == patched["key"]
        status, job = client.post("/snapshots/lab/questions/routes", {})
        assert status == 200 and job["result"]["count"] > 0
        # Delta counters surface in /metrics.
        status, metrics = client.get("/metrics")
        assert status == 200
        assert metrics["obs"]["counters"].get("delta.runs", 0) >= 1

    def test_patch_error_shapes(self, make_service):
        _, client = make_service()
        client.post("/snapshots", {"name": "lab", "configs": net1(2)})
        status, body = client.request(
            "PATCH", "/snapshots/nope", {"configs": {"x": "hostname x\n"}}
        )
        assert status == 404
        assert body["error"]["code"] == "snapshot_not_found"
        status, body = client.request(
            "PATCH", "/snapshots/lab", {"configs": {}}
        )
        assert status == 400
        status, body = client.request("PATCH", "/snapshots/lab", {})
        assert status == 400
