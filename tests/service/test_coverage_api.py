"""End-to-end coverage API: ``GET /snapshots/{name}/coverage``, the
labeled ``repro_coverage_ratio`` Prometheus series, and the
``questions_affected`` ranking in PATCH responses."""

import json
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.obs.prom import parse_exposition
from repro.synth.special import net1


@pytest.fixture(autouse=True)
def obs_clean():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def raw_get(client, path, headers=None):
    request = urllib.request.Request(
        client.base + path, method="GET", headers=headers or {}
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


class TestCoverageEndpoint:
    def test_matrix_records_and_uncovered(self, make_service):
        _, client = make_service()
        client.post("/snapshots", {"name": "lab", "configs": net1(2)})
        client.post("/snapshots/lab/questions/reachability")
        client.post("/snapshots/lab/questions/routes")
        status, body = client.get("/snapshots/lab/coverage")
        assert status == 200
        assert body["schema"] == "repro-coverage/v1"
        assert body["name"] == "lab"
        matrix = body["questions"]
        reach = matrix["reachability"]["interface"]
        assert reach["touched"] == reach["total"] > 0
        assert reach["ratio"] == 1.0
        # The run registry saw both executions, scope-classified.
        by_question = {r["question"]: r for r in body["records"]}
        assert by_question["reachability"]["scope"] == "routing"
        assert by_question["reachability"]["touches"] > 0
        assert by_question["routes"]["scope"] == "routing"
        # Nothing exercised the ACL: its lines are the blind spot.
        uncovered = body["uncovered"]
        assert uncovered["touched"]["acl_line"] == 0
        acl = [s for s in uncovered["stanzas"] if s["kind"] == "acl_line"]
        assert len(acl) == 2 and all("source" in s for s in acl)

    def test_witnesses_query_parameter(self, make_service):
        _, client = make_service()
        client.post("/snapshots", {"name": "lab", "configs": net1(2)})
        client.post("/snapshots/lab/questions/reachability")
        status, body = client.get("/snapshots/lab/coverage?witnesses=2")
        assert status == 200
        witnessed = [
            s for s in body["uncovered"]["stanzas"] if s.get("witness")
        ]
        assert witnessed
        probe = witnessed[0]["witness"]
        assert {"packet", "inject"} <= set(probe)
        assert probe["inject"]["node"] == witnessed[0]["hostname"]
        status, _ = client.get("/snapshots/lab/coverage?witnesses=banana")
        assert status == 400

    def test_unknown_snapshot_is_404(self, make_service):
        _, client = make_service()
        status, body = client.get("/snapshots/ghost/coverage")
        assert status == 404


class TestCoverageMetrics:
    def test_ratio_gauges_and_uncovered_counter_in_scrape(self, make_service):
        _, client = make_service()
        client.post("/snapshots", {"name": "lab", "configs": net1(2)})
        client.post("/snapshots/lab/questions/reachability")
        client.post("/snapshots/lab/questions/lint")
        status, headers, raw = raw_get(
            client, "/metrics", headers={"Accept": "text/plain"}
        )
        assert status == 200
        families = parse_exposition(raw.decode())
        ratio = families["repro_coverage_ratio"]
        assert ratio["type"] == "gauge"
        by_labels = {
            (labels.get("question"), labels.get("kind")): value
            for _, labels, value in ratio["samples"]
        }
        assert by_labels[("reachability", "interface")] == 1.0
        assert by_labels[("lint", "acl_line")] == 1.0
        assert by_labels[("reachability", "acl_line")] == 0.0
        uncovered = families["repro_uncovered_stanzas_total"]
        assert uncovered["type"] == "counter"
        # lint + reachability covered interfaces and ACL lines; the
        # route-map-free network leaves nothing but the untouched kinds.
        assert all(value >= 0 for _, _, value in uncovered["samples"])


class TestPatchPrioritization:
    def test_patch_response_ranks_questions(self, make_service):
        _, client = make_service()
        configs = net1(3)
        client.post("/snapshots", {"name": "lab", "configs": configs})
        client.post("/snapshots/lab/questions/reachability")
        client.post("/snapshots/lab/questions/lint")
        client.post(
            "/snapshots/lab/questions/test_filter",
            {"params": {
                "node": "net1-core0", "filter": "SPUR_FILTER",
                "packet": {
                    "src_ip": "10.0.0.1", "dst_ip": "10.0.0.2",
                    "ip_protocol": "tcp", "src_port": 1024, "dst_port": 23,
                },
            }},
        )
        edited = configs["net1-core2"] + "ip route 203.0.113.0 255.255.255.0 Null0\n"
        status, body = client.request(
            "PATCH", "/snapshots/lab", {"configs": {"net1-core2": edited}}
        )
        assert status == 200
        delta = body["delta"]
        affected = {e["question"] for e in delta["questions_affected"]}
        skipped = {e["question"] for e in delta["questions_skipped"]}
        assert "reachability" in affected
        # Config-scoped questions pinned to the untouched net1-core0.
        assert {"test_filter", "lint"} <= skipped
        assert not affected & skipped
        for entry in delta["questions_affected"]:
            assert entry["overlap"] >= 1
