"""Unit tests for the job queue: coalescing, backpressure, timeouts,
cancellation, worker survival, and drain — all against a stub executor
so they run in milliseconds."""

import threading
import time

import pytest

from repro.core.session import NotConvergedError
from repro.service.errors import QueueFullError, ShuttingDownError
from repro.service.jobs import JobQueue, JobStatus


class Blocker:
    """Executor whose 'block' jobs hold a worker until released."""

    def __init__(self):
        self.started = threading.Event()
        self.release = threading.Event()
        self.calls = []

    def __call__(self, job):
        self.calls.append(job.id)
        if job.params.get("block"):
            self.started.set()
            assert self.release.wait(10)
        if job.params.get("raise"):
            raise RuntimeError("executor exploded")
        if job.params.get("diverge"):
            raise NotConvergedError("oscillating prefixes: 10.0.0.0/8")
        return {"question": job.question}


@pytest.fixture
def blocker():
    b = Blocker()
    yield b
    b.release.set()  # never leave a worker stuck past the test


def submit(queue, question="routes", params=None, key=None, **kwargs):
    params = params or {}
    return queue.submit(
        snapshot="snap",
        question=question,
        params=params,
        coalesce_key=key or f"{question}|{sorted(params.items())}",
        **kwargs,
    )


class TestBasics:
    def test_submit_runs_and_completes(self, blocker):
        queue = JobQueue(blocker, workers=2, max_queue=8)
        job, coalesced = submit(queue, "routes")
        assert not coalesced
        assert job.wait(5)
        assert job.status is JobStatus.DONE
        assert job.result == {"question": "routes"}
        assert job.to_json()["run_s"] >= 0
        queue.stop()

    def test_stats_and_depth(self, blocker):
        queue = JobQueue(blocker, workers=1, max_queue=8)
        job, _ = submit(queue)
        job.wait(5)
        stats = queue.stats()
        assert stats["submitted"] == 1
        assert stats["completed"] == 1
        assert stats["workers"] == 1
        queue.stop()

    def test_get_unknown_job_raises(self, blocker):
        queue = JobQueue(blocker, workers=1, max_queue=2)
        from repro.service.errors import JobNotFoundError

        with pytest.raises(JobNotFoundError):
            queue.get("job-999999")
        queue.stop()


class TestCoalescing:
    def test_identical_inflight_requests_share_one_job(self, blocker):
        queue = JobQueue(blocker, workers=1, max_queue=8)
        hold, _ = submit(queue, params={"block": True}, key="hold")
        assert blocker.started.wait(5)  # worker busy
        first, coalesced_first = submit(queue, "routes", key="same")
        second, coalesced_second = submit(queue, "routes", key="same")
        assert not coalesced_first
        assert coalesced_second
        assert second is first
        assert first.coalesced == 1
        assert queue.stats()["coalesced"] == 1
        blocker.release.set()
        assert first.wait(5)
        # Exactly one underlying computation for the two requests.
        assert blocker.calls.count(first.id) == 1
        queue.stop()

    def test_different_keys_do_not_coalesce(self, blocker):
        queue = JobQueue(blocker, workers=1, max_queue=8)
        hold, _ = submit(queue, params={"block": True}, key="hold")
        assert blocker.started.wait(5)
        a, _ = submit(queue, key="a")
        b, _ = submit(queue, key="b")
        assert a is not b
        blocker.release.set()
        assert a.wait(5) and b.wait(5)
        queue.stop()

    def test_terminal_job_does_not_absorb(self, blocker):
        queue = JobQueue(blocker, workers=1, max_queue=8)
        first, _ = submit(queue, key="k")
        assert first.wait(5)
        second, coalesced = submit(queue, key="k")
        assert not coalesced
        assert second is not first
        assert second.wait(5)
        queue.stop()


class TestBackpressure:
    def test_queue_full_raises_429_error(self, blocker):
        queue = JobQueue(blocker, workers=1, max_queue=1)
        submit(queue, params={"block": True}, key="hold")
        assert blocker.started.wait(5)
        submit(queue, key="queued")  # fills the single slot
        with pytest.raises(QueueFullError) as excinfo:
            submit(queue, key="overflow")
        assert excinfo.value.status == 429
        assert queue.stats()["rejected"] == 1
        blocker.release.set()
        queue.stop()

    def test_coalesced_request_bypasses_full_queue(self, blocker):
        # A duplicate of an in-flight job costs no queue slot.
        queue = JobQueue(blocker, workers=1, max_queue=1)
        submit(queue, params={"block": True}, key="hold")
        assert blocker.started.wait(5)
        queued, _ = submit(queue, key="queued")
        dup, coalesced = submit(queue, key="queued")
        assert coalesced and dup is queued
        blocker.release.set()
        queue.stop()


class TestCancellationAndTimeouts:
    def test_cancel_queued_job(self, blocker):
        queue = JobQueue(blocker, workers=1, max_queue=8)
        submit(queue, params={"block": True}, key="hold")
        assert blocker.started.wait(5)
        job, _ = submit(queue, key="victim")
        assert queue.cancel(job.id)
        assert job.status is JobStatus.CANCELLED
        assert job.wait(1)
        blocker.release.set()
        queue.stop()

    def test_cannot_cancel_running_job(self, blocker):
        queue = JobQueue(blocker, workers=1, max_queue=8)
        job, _ = submit(queue, params={"block": True}, key="hold")
        assert blocker.started.wait(5)
        assert not queue.cancel(job.id)
        blocker.release.set()
        queue.stop()

    def test_queued_job_times_out(self, blocker):
        queue = JobQueue(blocker, workers=1, max_queue=8)
        submit(queue, params={"block": True}, key="hold")
        assert blocker.started.wait(5)
        job, _ = submit(queue, key="late", timeout_s=0.01)
        time.sleep(0.05)
        fetched = queue.get(job.id)  # lazy expiry on read
        assert fetched.status is JobStatus.FAILED
        assert fetched.error["error"]["code"] == "job_timeout"
        assert fetched.error_status == 504
        assert queue.stats()["timeouts"] == 1
        blocker.release.set()
        # The worker must skip the expired job, not run it.
        time.sleep(0.1)
        assert job.id not in blocker.calls
        queue.stop()


class TestGracefulDegradation:
    def test_executor_exception_becomes_structured_error(self, blocker):
        queue = JobQueue(blocker, workers=1, max_queue=8)
        job, _ = submit(queue, params={"raise": True}, key="boom")
        assert job.wait(5)
        assert job.status is JobStatus.FAILED
        assert job.error["error"]["code"] == "internal_error"
        # The worker survived: a follow-up job still runs.
        ok, _ = submit(queue, key="after")
        assert ok.wait(5)
        assert ok.status is JobStatus.DONE
        queue.stop()

    def test_not_converged_maps_to_422(self, blocker):
        queue = JobQueue(blocker, workers=1, max_queue=8)
        job, _ = submit(queue, params={"diverge": True}, key="osc")
        assert job.wait(5)
        assert job.status is JobStatus.FAILED
        assert job.error_status == 422
        assert job.error["error"]["code"] == "analysis_failed"
        queue.stop()


class TestDrain:
    def test_drain_completes_outstanding_work(self, blocker):
        queue = JobQueue(blocker, workers=2, max_queue=16)
        jobs = [submit(queue, key=f"k{i}")[0] for i in range(6)]
        assert queue.drain(timeout=10)
        assert all(job.status is JobStatus.DONE for job in jobs)

    def test_drain_rejects_new_submissions(self, blocker):
        queue = JobQueue(blocker, workers=1, max_queue=8)
        assert queue.drain(timeout=5)
        with pytest.raises(ShuttingDownError):
            submit(queue, key="late")
        assert not queue.accepting
        queue.stop()

    def test_drain_waits_for_running_job(self, blocker):
        queue = JobQueue(blocker, workers=1, max_queue=8)
        job, _ = submit(queue, params={"block": True}, key="hold")
        assert blocker.started.wait(5)
        done = threading.Event()
        result = {}

        def drainer():
            result["clean"] = queue.drain(timeout=10)
            done.set()

        threading.Thread(target=drainer, daemon=True).start()
        time.sleep(0.05)
        assert not done.is_set()  # still waiting on the running job
        blocker.release.set()
        assert done.wait(5)
        assert result["clean"]
        assert job.status is JobStatus.DONE
        queue.stop()

    def test_stop_without_drain_cancels_queued(self, blocker):
        queue = JobQueue(blocker, workers=1, max_queue=8)
        submit(queue, params={"block": True}, key="hold")
        assert blocker.started.wait(5)
        queued, _ = submit(queue, key="pending")
        blocker.release.set()
        queue.stop(drain=False)
        assert queued.status in (JobStatus.CANCELLED, JobStatus.DONE)
