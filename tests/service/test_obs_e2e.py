"""End-to-end observability tests: request-id propagation from the
HTTP edge through the job queue into ``pmap`` workers, Prometheus
exposition served (and strictly validated) over the wire, readiness
semantics, SLO accounting, and deadline-expiry postmortems."""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.obs.prom import parse_exposition
from repro.parallel import fork_available, pmap
from repro.synth.special import net1


@pytest.fixture(autouse=True)
def obs_clean():
    """The obs registries are process-global; every test in this module
    starts from a blank slate (services re-enable metrics at boot)."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class RawClient:
    """JSON client that can also set headers and read raw bodies."""

    def __init__(self, port: int):
        self.base = f"http://127.0.0.1:{port}"

    def raw(self, method, path, body=None, headers=None):
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            self.base + path, data=data, method=method,
            headers={"Content-Type": "application/json", **(headers or {})},
        )
        try:
            with urllib.request.urlopen(request, timeout=60) as response:
                return response.status, dict(response.headers), response.read()
        except urllib.error.HTTPError as error:
            return error.code, dict(error.headers), error.read()

    def request(self, method, path, body=None, headers=None):
        status, resp_headers, raw = self.raw(method, path, body, headers)
        return status, resp_headers, json.loads(raw)

    def get(self, path, headers=None):
        return self.request("GET", path, headers=headers)

    def post(self, path, body=None, headers=None):
        return self.request("POST", path, body or {}, headers=headers)


@pytest.fixture
def make_raw(make_service):
    def make(**kwargs):
        service, _ = make_service(**kwargs)
        return service, RawClient(service.port)

    return make


def poll(predicate, timeout=30.0, interval=0.05):
    deadline = time.time() + timeout
    while time.time() < deadline:
        result = predicate()
        if result:
            return result
        time.sleep(interval)
    return None


class TestRequestIdPropagation:
    def test_header_rid_reaches_job_response_and_flight_ring(self, make_raw):
        _, client = make_raw()
        client.post("/snapshots", {"name": "lab", "configs": net1(2)})
        rid = "req-e2e-propagation"
        status, headers, body = client.post(
            "/snapshots/lab/questions/routes",
            headers={"X-Request-Id": rid, "X-Tenant": "ci"},
        )
        assert status == 200
        assert headers.get("X-Request-Id") == rid
        assert body["request_id"] == rid
        _, _, dump = client.get("/debug/flightrecorder")
        job_events = [
            e for e in dump["events"]
            if e.get("kind") == "job" and e.get("rid") == rid
        ]
        names = [e["name"] for e in job_events]
        assert "submitted" in names and "start" in names and "finished" in names

    def test_server_mints_rid_when_client_sends_none(self, make_raw):
        _, client = make_raw()
        client.post("/snapshots", {"name": "lab", "configs": net1(2)})
        status, headers, body = client.post(
            "/snapshots/lab/questions/routes"
        )
        assert status == 200
        rid = headers.get("X-Request-Id")
        assert rid and rid.startswith("req-")
        assert body["request_id"] == rid

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_lint_rule_events_from_pmap_workers_carry_rid(self, make_raw):
        """The full chain: HTTP handler -> queue -> worker thread ->
        pmap pool workers, one request id end to end."""
        _, client = make_raw()
        client.post("/snapshots", {"name": "lab", "configs": net1(2)})
        rid = "req-e2e-lint-workers"
        status, _, body = client.post(
            "/snapshots/lab/questions/lint", headers={"X-Request-Id": rid}
        )
        assert status == 200 and body["status"] == "done"
        _, _, dump = client.get("/debug/flightrecorder")
        rule_events = [
            e for e in dump["events"] if e.get("kind") == "lint.rule"
        ]
        assert rule_events, "lint rules should land in the flight ring"
        assert {e.get("rid") for e in rule_events} == {rid}

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_spans_metrics_and_flight_share_one_rid_across_pmap(self):
        """Acceptance shape: spans, metrics exemplars, and flight events
        emitted on both sides of the fork boundary all carry the same
        request id."""
        obs.enable()  # in-memory tracing (spans) + metrics

        def work(item):
            obs.add("e2e.items")
            obs.flight.record("e2e", "worker-item", index=item)
            return item

        with obs.context.request_context(request_id="req-e2e-shared") as ctx:
            with obs.span("e2e.request"):
                results = pmap(work, list(range(8)), jobs=2, min_items=2)
        assert results == list(range(8))
        span_events = [
            e for e in obs.events()
            if e["type"] == "span" and e["name"] in ("e2e.request", "pmap")
        ]
        assert span_events
        assert {e.get("rid") for e in span_events} == {ctx.request_id}
        assert obs.metrics().counter("e2e.items") == 8
        worker_events = [
            e for e in obs.flight.recent() if e.get("kind") == "e2e"
        ]
        assert len(worker_events) == 8
        assert {e.get("rid") for e in worker_events} == {ctx.request_id}


class TestPrometheusExposition:
    def test_scrape_is_strictly_valid_and_content_negotiated(self, make_raw):
        _, client = make_raw()
        client.post("/snapshots", {"name": "lab", "configs": net1(2)})
        client.post("/snapshots/lab/questions/routes")
        status, headers, raw = client.raw(
            "GET", "/metrics", headers={"Accept": "text/plain"}
        )
        assert status == 200
        assert "version=0.0.4" in headers.get("Content-Type", "")
        families = parse_exposition(raw.decode())
        assert "repro_service_request_seconds" in families
        assert "repro_service_queue_depth" in families
        request_family = families["repro_service_request_seconds"]
        assert request_family["type"] == "histogram"
        labels = [
            labels for name, labels, _ in request_family["samples"]
            if name.endswith("_bucket")
        ]
        assert any(
            l.get("question") == "routes" and l.get("disposition") == "ok"
            for l in labels
        )

    def test_json_mode_remains_default_with_slo_and_flight(self, make_raw):
        _, client = make_raw(slos={"routes": 5.0})
        client.post("/snapshots", {"name": "lab", "configs": net1(2)})
        client.post("/snapshots/lab/questions/routes")
        status, headers, body = client.get("/metrics")
        assert status == 200
        assert "application/json" in headers.get("Content-Type", "")
        assert body["flight"]["capacity"] > 0
        slo = body["slo"]["routes"]
        assert slo["objective_seconds"] == 5.0
        assert slo["requests"] >= 1
        assert slo["breaches"] == 0
        assert slo["burn_rate"] == 0.0


class TestReadiness:
    def test_ready_when_idle(self, make_raw):
        _, client = make_raw()
        status, _, body = client.get("/readyz")
        assert status == 200 and body["ready"] is True

    def test_saturated_queue_fails_readiness_but_not_liveness(self, make_raw):
        service, client = make_raw(workers=1, max_queue=1, debug=True)
        client.post("/snapshots", {"name": "lab", "configs": net1(2)})
        # Occupy the only worker, then fill the queue to capacity.
        client.post(
            "/snapshots/lab/questions/sleep",
            {"params": {"seconds": 1.5}, "wait": False},
        )
        client.post(
            "/snapshots/lab/questions/routes", {"wait": False}
        )
        status, _, body = client.get("/readyz")
        assert status == 503
        assert body["ready"] is False and body["reason"] == "saturated"
        status, _, health = client.get("/healthz")
        assert status == 200 and health["status"] == "ok"
        assert health["queue_oldest_age_seconds"] >= 0.0
        service.queue.drain(timeout=10.0)

    def test_draining_fails_readiness(self, make_raw):
        service, client = make_raw(workers=1, debug=True)
        client.post("/snapshots", {"name": "lab", "configs": net1(2)})
        client.post(
            "/snapshots/lab/questions/sleep",
            {"params": {"seconds": 1.0}, "wait": False},
        )
        # Start the drain without closing the HTTP listener: readiness
        # must flip while in-flight work is still being served.
        service.queue.drain(timeout=0.05)
        status, _, body = client.get("/readyz")
        assert status == 503
        assert body["ready"] is False and body["reason"] == "draining"
        service.queue.drain(timeout=10.0)


class TestPostmortems:
    def test_deadline_expired_job_leaves_retrievable_bundle(self, make_raw):
        service, client = make_raw(workers=1, debug=True)
        client.post("/snapshots", {"name": "lab", "configs": net1(2)})
        # Occupy the only worker so the deadlined job expires queued.
        client.post(
            "/snapshots/lab/questions/sleep",
            {"params": {"seconds": 1.0}, "wait": False},
        )
        rid = "req-e2e-deadline"
        status, _, body = client.post(
            "/snapshots/lab/questions/routes",
            {"wait": False, "timeout_s": 0.2},
            headers={"X-Request-Id": rid},
        )
        assert status == 202

        def expired_bundle():
            _, _, dump = client.get("/debug/flightrecorder")
            for bundle in dump["bundles"]:
                if (
                    bundle["reason"] == "deadline_expired"
                    and bundle.get("request_id") == rid
                ):
                    return bundle
            return None

        bundle = poll(expired_bundle, timeout=30.0)
        assert bundle is not None
        assert bundle["question"] == "routes"
        # The bundle froze the ring: the doomed job's submit event is in
        # the captured window.
        assert any(
            e.get("kind") == "job" and e.get("rid") == rid
            for e in bundle["events"]
        )

    def test_slo_breach_produces_bundle_and_counters(self, make_raw):
        _, client = make_raw(slos={"sleep": 0.05}, debug=True)
        client.post("/snapshots", {"name": "lab", "configs": net1(2)})
        rid = "req-e2e-slo"
        status, _, body = client.post(
            "/snapshots/lab/questions/sleep",
            {"params": {"seconds": 0.3}},
            headers={"X-Request-Id": rid},
        )
        assert status == 200 and body["status"] == "done"
        _, _, metrics = client.get("/metrics")
        slo = metrics["slo"]["sleep"]
        assert slo["breaches"] == 1
        assert slo["budget_consumed"] > 0
        assert metrics["obs"]["counters"]["slo.breaches.sleep"] == 1
        _, _, dump = client.get("/debug/flightrecorder")
        assert any(
            b["reason"] == "slo_breach" and b.get("request_id") == rid
            for b in dump["bundles"]
        )
