"""Tests for the JSON boundary: decoders, encoders, and dispatch."""

import pytest

from repro.hdr import fields as f
from repro.service.errors import InvalidRequestError, UnknownQuestionError
from repro.service.serialize import (
    QUESTIONS,
    headerspace_from_json,
    packet_from_json,
    packet_to_json,
    protocol_from_json,
    run_question,
    settings_from_json,
    sources_from_json,
)
from repro.service.store import SnapshotStore
from repro.synth.special import net1


@pytest.fixture(scope="module")
def store():
    store = SnapshotStore()
    store.init("lab", net1(2))
    return store


class TestDecoders:
    def test_packet_roundtrip(self):
        packet = packet_from_json(
            {"dst_ip": "10.0.0.1", "src_ip": "10.0.0.2", "dst_port": 443,
             "ip_protocol": "tcp"}
        )
        assert str(packet.dst_ip) == "10.0.0.1"
        assert packet.ip_protocol == f.PROTO_TCP
        encoded = packet_to_json(packet)
        assert encoded["dst_port"] == 443
        assert "tcp" in encoded["description"]

    def test_packet_rejects_unknown_fields(self):
        with pytest.raises(InvalidRequestError):
            packet_from_json({"dst_ip": "10.0.0.1", "ttl": 3})

    def test_packet_rejects_bad_values(self):
        with pytest.raises(InvalidRequestError):
            packet_from_json({"dst_port": 70000})
        with pytest.raises(InvalidRequestError):
            packet_from_json({"dst_ip": "not-an-ip"})
        with pytest.raises(InvalidRequestError):
            packet_from_json("tcp")

    def test_protocol_names_and_numbers(self):
        assert protocol_from_json("TCP") == f.PROTO_TCP
        assert protocol_from_json(89) == 89
        with pytest.raises(InvalidRequestError):
            protocol_from_json("quic")
        with pytest.raises(InvalidRequestError):
            protocol_from_json(True)

    def test_headerspace_defaults_and_ports(self):
        assert headerspace_from_json(None).dst_prefixes == ()
        space = headerspace_from_json(
            {"dst": "10.0.0.0/8", "dst_ports": [443, [8000, 8999]],
             "protocols": ["tcp"]}
        )
        assert space.dst_ports == ((443, 443), (8000, 8999))
        assert space.ip_protocols == (f.PROTO_TCP,)
        with pytest.raises(InvalidRequestError):
            headerspace_from_json({"dst_ports": ["443-444"]})
        with pytest.raises(InvalidRequestError):
            headerspace_from_json({"destination": "10.0.0.0/8"})

    def test_settings(self):
        assert settings_from_json(None) is None
        settings = settings_from_json({"schedule": "lockstep", "max_iterations": 9})
        assert settings.schedule == "lockstep"
        assert settings.max_iterations == 9
        with pytest.raises(InvalidRequestError):
            settings_from_json({"tempo": "fast"})

    def test_sources(self):
        assert sources_from_json(None) is None
        assert sources_from_json(["r1", ["r2", "eth0"], ["r3"]]) == [
            ("r1", None), ("r2", "eth0"), ("r3", None),
        ]
        with pytest.raises(InvalidRequestError):
            sources_from_json([42])


class TestDispatch:
    def test_routes(self, store):
        result = run_question(store, "lab", "routes", {})
        assert result["count"] == len(result["rows"]) > 0
        one = run_question(store, "lab", "routes", {"node": "net1-core0"})
        assert all(row["node"] == "net1-core0" for row in one["rows"])

    def test_reachability_has_witnesses(self, store):
        result = run_question(store, "lab", "reachability", {})
        assert result["success"]
        assert result["dispositions"]
        example = next(iter(result["dispositions"].values()))["example"]
        assert "dst_ip" in example

    def test_test_filter(self, store):
        result = run_question(
            store, "lab", "test_filter",
            {"node": "net1-core0", "filter": "SPUR_FILTER",
             "packet": {"dst_port": 23}},
        )
        assert result["action"] == "deny"

    def test_traceroute(self, store):
        result = run_question(
            store, "lab", "traceroute",
            {"packet": {"src_ip": "172.19.0.10", "dst_ip": "172.19.1.10",
                        "dst_port": 80},
             "node": "net1-spur0", "interface": "Vlan10"},
        )
        trace = result["traces"][0]
        assert trace["path"]
        assert trace["hops"][0]["steps"]

    def test_config_questions_clean_snapshot(self, store):
        assert run_question(store, "lab", "undefined_references", {})["rows"] == []
        assert run_question(store, "lab", "duplicate_ips", {})["rows"] == []
        assert run_question(store, "lab", "parse_warnings", {})["rows"] == []

    def test_route_diff_self_is_empty(self, store):
        result = run_question(store, "lab", "route_diff", {"candidate": "lab"})
        assert result["rows"] == []

    def test_missing_required_param(self, store):
        with pytest.raises(InvalidRequestError):
            run_question(store, "lab", "traceroute", {"node": "net1-spur0"})

    def test_unknown_question(self, store):
        with pytest.raises(UnknownQuestionError) as excinfo:
            run_question(store, "lab", "divination", {})
        assert excinfo.value.status == 400
        assert "routes" in excinfo.value.details["available"]

    def test_debug_questions_gated(self, store):
        with pytest.raises(UnknownQuestionError):
            run_question(store, "lab", "sleep", {})
        result = run_question(
            store, "lab", "sleep", {"seconds": 0.0}, debug=True
        )
        assert result["slept_s"] == 0.0

    def test_registry_is_complete(self):
        assert {"routes", "reachability", "traceroute", "test_filter",
                "explain_route", "route_diff"} <= set(QUESTIONS)
