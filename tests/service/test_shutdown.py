"""SIGTERM drain test against a real ``python -m repro.service``
subprocess: in-flight jobs must complete before the process exits."""

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.synth.special import net1

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _post(port, path, body):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(body).encode(),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


@pytest.mark.skipif(
    not hasattr(signal, "SIGTERM") or os.name == "nt",
    reason="POSIX signal semantics required",
)
def test_sigterm_drains_inflight_jobs_before_exit():
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service",
            "--port", "0", "--workers", "1", "--debug-questions",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        banner = process.stdout.readline()
        match = re.search(r"http://127\.0\.0\.1:(\d+)", banner)
        assert match, f"no listen banner: {banner!r}"
        port = int(match.group(1))

        status, _ = _post(port, "/snapshots", {"name": "lab", "configs": net1(2)})
        assert status == 201
        # An in-flight job (running on the single worker) ...
        status, job = _post(
            port, "/snapshots/lab/questions/sleep",
            {"params": {"seconds": 1.5}, "wait": False},
        )
        assert status == 202
        # ... and a queued one behind it.
        status, queued = _post(
            port, "/snapshots/lab/questions/routes", {"wait": False}
        )
        assert status == 202
        time.sleep(0.1)  # let the sleep job actually start

        started = time.monotonic()
        process.send_signal(signal.SIGTERM)
        output, _ = process.communicate(timeout=60)
        elapsed = time.monotonic() - started

        assert process.returncode == 0, output
        # Exit waited for the 1.5s sleep job instead of killing it.
        assert elapsed >= 1.0, (elapsed, output)
        summary = re.search(
            r"drained: completed=(\d+) failed=(\d+) cancelled=(\d+).*clean=True",
            output,
        )
        assert summary, output
        # sleep + routes both completed; nothing failed or was dropped.
        assert int(summary.group(1)) >= 2, output
        assert int(summary.group(2)) == 0, output
        assert int(summary.group(3)) == 0, output
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate(timeout=10)
