"""Tests for the named-snapshot store."""

import pytest

from repro.core.cache import SnapshotCache
from repro.service.errors import (
    InvalidRequestError,
    SnapshotConflictError,
    SnapshotNotFoundError,
)
from repro.service.store import SnapshotStore
from repro.synth.special import net1


@pytest.fixture
def configs():
    return net1(2)


class TestLifecycle:
    def test_init_get_list_delete(self, configs):
        store = SnapshotStore()
        record = store.init("lab", configs)
        assert record.name == "lab"
        assert record.device_count == 4
        assert len(record.key) == 64
        assert store.get("lab").snapshot.hostnames()
        assert [r.name for r in store.list()] == ["lab"]
        assert len(store) == 1
        store.delete("lab")
        assert len(store) == 0

    def test_get_unknown_raises_404(self):
        store = SnapshotStore()
        with pytest.raises(SnapshotNotFoundError) as excinfo:
            store.get("ghost")
        assert excinfo.value.status == 404
        with pytest.raises(SnapshotNotFoundError):
            store.record("ghost")
        with pytest.raises(SnapshotNotFoundError):
            store.delete("ghost")

    def test_duplicate_name_conflicts(self, configs):
        store = SnapshotStore()
        store.init("lab", configs)
        with pytest.raises(SnapshotConflictError) as excinfo:
            store.init("lab", configs)
        assert excinfo.value.status == 409

    def test_force_replaces(self, configs):
        store = SnapshotStore()
        store.init("lab", configs)
        edited = dict(configs)
        name = sorted(edited)[0]
        edited[name] = edited[name] + "\n! re-init\n"
        record = store.init("lab", edited, force=True)
        assert len(store) == 1
        assert record.key != store.init("other", configs).key

    def test_list_is_sorted_by_name(self, configs):
        store = SnapshotStore()
        for name in ("zeta", "alpha", "mid"):
            store.init(name, configs)
        assert [r.name for r in store.list()] == ["alpha", "mid", "zeta"]


class TestValidation:
    @pytest.mark.parametrize("name", ["", "a/b", "..", "-lead", "x" * 101, 7])
    def test_bad_names_rejected(self, configs, name):
        store = SnapshotStore()
        with pytest.raises(InvalidRequestError):
            store.init(name, configs)

    @pytest.mark.parametrize("bad", [None, {}, [], {"r1": 7}, {7: "text"}])
    def test_bad_configs_rejected(self, bad):
        store = SnapshotStore()
        with pytest.raises(InvalidRequestError):
            store.init("lab", bad)


class TestCacheIntegration:
    def test_identical_configs_share_cache_entries(self, tmp_path, configs):
        cache = SnapshotCache(str(tmp_path))
        store = SnapshotStore(cache=cache)
        first = store.init("a", configs)
        second = store.init("b", configs)
        # Same content => same content key, and the second init was a
        # cache hit instead of a re-parse.
        assert first.key == second.key
        assert cache.stats()["hits"] >= 1

    def test_content_key_tracks_settings(self, configs):
        from repro.routing.engine import ConvergenceSettings

        store = SnapshotStore()
        default = store.init("a", configs)
        tuned = store.init(
            "b", configs, settings=ConvergenceSettings(max_iterations=7)
        )
        assert default.key != tuned.key
