"""End-to-end tests for the sweep question: async-202 by default,
poll-to-done with streamed progress, strict parameter validation."""

import sys
import time

import pytest

sys.path.insert(0, "tests")
from sweep.conftest import LAB_CONFIGS  # noqa: E402


def _poll_done(client, job_id, timeout=60.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        status, body = client.get(f"/jobs/{job_id}")
        assert status == 200
        if body["status"] in ("done", "failed"):
            return body
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never finished: {body}")


CHAIN_PARAMS = {
    "k": 1,
    "kinds": ["link"],
    "property": {
        "src_node": "r1",
        "src_interface": "Ethernet0",
        "dst_ip": "10.99.0.1",
    },
}


class TestSweepQuestion:
    def test_async_by_default(self, make_service):
        _, client = make_service()
        client.post("/snapshots", {"name": "lab", "configs": dict(LAB_CONFIGS)})
        status, body = client.post(
            "/snapshots/lab/questions/sweep", {"params": CHAIN_PARAMS}
        )
        # sweep defaults to submit-then-poll, unlike every sync question
        assert status in (200, 202)
        assert "id" in body
        result = _poll_done(client, body["id"])
        assert result["status"] == "done", result
        answer = result["result"]
        assert answer["schema"] == "repro-sweep/v1"
        assert answer["base_verdict"]["holds"] is True
        assert answer["stats"]["scenarios"] == 3
        spofs = [f for f in answer["findings"]
                 if f["rule"] == "single-point-of-failure"]
        assert len(spofs) == 2

    def test_wait_true_overrides_async_default(self, make_service):
        _, client = make_service()
        client.post("/snapshots", {"name": "lab", "configs": dict(LAB_CONFIGS)})
        status, body = client.post(
            "/snapshots/lab/questions/sweep",
            {"params": CHAIN_PARAMS, "wait": True},
        )
        assert status == 200
        assert body["status"] == "done"
        assert body["result"]["schema"] == "repro-sweep/v1"

    def test_invalid_params_are_400(self, make_service):
        _, client = make_service()
        client.post("/snapshots", {"name": "lab", "configs": dict(LAB_CONFIGS)})
        for params in (
            {"k": 0},
            {"k": True},
            {"kinds": ["link", "gremlin"]},
            {"unknown_knob": 1},
            {"property": {"src_node": "r1"}},  # incomplete property
        ):
            status, body = client.post(
                "/snapshots/lab/questions/sweep",
                {"params": params, "wait": True},
            )
            assert status == 400, (params, body)
            assert body["error"]["code"] == "invalid_request"

    def test_unknown_snapshot_is_404(self, make_service):
        _, client = make_service()
        status, body = client.post(
            "/snapshots/ghost/questions/sweep",
            {"params": CHAIN_PARAMS, "wait": True},
        )
        assert status == 404

    def test_default_property_when_omitted(self, make_service):
        _, client = make_service()
        client.post("/snapshots", {"name": "lab", "configs": dict(LAB_CONFIGS)})
        status, body = client.post(
            "/snapshots/lab/questions/sweep",
            {"params": {"k": 1, "kinds": ["link"]}, "wait": True},
        )
        assert status == 200
        assert "property" in body["result"]
