"""Shared fixtures: a tiny hand-written lab where every sweep behavior
is predictable by inspection.

Topology (OSPF everywhere, /30 links)::

    r1 ---- r2 ---- r3        island1 ---- island2
       L12     L23               (separate component)

``r3`` also owns a host subnet 10.99.0.1/24 — the default sweep target.
The island pair is disconnected from the r-chain, so every island-only
failure is prunable as *disconnected* for properties scoped to the
chain.
"""

from __future__ import annotations

import pytest

from repro.core.session import Session


def _cisco(host: str, ifaces, statics=()):
    lines = [f"hostname {host}", "!"]
    for name, addr, mask in ifaces:
        lines += [
            f"interface {name}",
            f" ip address {addr} {mask}",
            " ip ospf area 0",
            "!",
        ]
    for prefix, mask, nh in statics:
        lines.append(f"ip route {prefix} {mask} {nh}")
    lines.append("router ospf 1")
    lines.append("!")
    return "\n".join(lines) + "\n"


LAB_CONFIGS = {
    "r1.cfg": _cisco(
        "r1",
        [("Ethernet0", "10.0.12.1", "255.255.255.252")],
    ),
    "r2.cfg": _cisco(
        "r2",
        [
            ("Ethernet0", "10.0.12.2", "255.255.255.252"),
            ("Ethernet1", "10.0.23.1", "255.255.255.252"),
        ],
    ),
    "r3.cfg": _cisco(
        "r3",
        [
            ("Ethernet0", "10.0.23.2", "255.255.255.252"),
            ("Ethernet1", "10.99.0.1", "255.255.255.0"),
        ],
    ),
    "island1.cfg": _cisco(
        "island1",
        [("Ethernet0", "10.7.0.1", "255.255.255.252")],
    ),
    "island2.cfg": _cisco(
        "island2",
        [("Ethernet0", "10.7.0.2", "255.255.255.252")],
    ),
}


@pytest.fixture(scope="session")
def lab_configs():
    return dict(LAB_CONFIGS)


@pytest.fixture()
def lab_session(lab_configs):
    return Session.from_texts(lab_configs)
