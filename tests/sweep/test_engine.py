"""End-to-end sweep engine behavior on the lab network."""

import os

import pytest

from repro.core.session import Session
from repro.sweep import (
    BASE_SCENARIO_ID,
    EVALUATED,
    ReachabilityProperty,
    minimal_failing_sets,
    sweep_session,
)
from repro.sweep.prune import (
    PRUNED_CUT,
    PRUNED_DISCONNECTED,
    PRUNED_FINGERPRINT,
)
from repro.sweep.scenarios import evaluate_property

CHAIN_PROP = ReachabilityProperty(
    src_node="r1", src_interface="Ethernet0", dst_ip="10.99.0.1"
)


class TestSweepLab:
    def test_k1_stats_and_statuses(self, lab_session):
        result = sweep_session(lab_session, k=1, prop=CHAIN_PROP)
        stats = result.stats
        assert stats.scenarios == 21
        assert stats.evaluated == 5
        assert stats.pruned_disconnected == 7
        assert stats.pruned_cut == 9
        assert stats.pruned == 16
        assert stats.truncated == 0
        assert result.base_verdict.holds is True
        assert not result.base_broken
        assert len(result.outcomes) == stats.scenarios

    def test_pruned_verdicts_match_brute_force(self, lab_configs):
        """The acceptance-criterion invariant in miniature: canonical
        verdict bytes identical with and without pruning."""
        session = Session.from_texts(lab_configs, cache=False)
        pruned = sweep_session(session, k=1, prop=CHAIN_PROP)
        brute = sweep_session(session, k=1, prop=CHAIN_PROP, prune=False)
        assert len(pruned.outcomes) == len(brute.outcomes)
        for a, b in zip(pruned.outcomes, brute.outcomes):
            assert a.scenario_id == b.scenario_id
            assert a.verdict.canonical() == b.verdict.canonical()

    def test_verdict_resolution_per_status(self, lab_session):
        result = sweep_session(lab_session, k=1, prop=CHAIN_PROP)
        for outcome in result.outcomes:
            if outcome.status == PRUNED_DISCONNECTED:
                # inherits the base verdict verbatim
                assert outcome.verdict.canonical() == (
                    result.base_verdict.canonical()
                )
                assert outcome.representative == BASE_SCENARIO_ID
            elif outcome.status == PRUNED_CUT:
                # proved broken without simulating
                assert outcome.verdict.holds is False
                assert outcome.verdict.converged is None
            elif outcome.status == EVALUATED:
                assert outcome.verdict.converged is not None
                assert outcome.seconds >= 0.0

    def test_fingerprint_outcome_copies_representative(self, lab_session):
        prop = ReachabilityProperty(
            src_node="r2", src_interface="Ethernet1", dst_ip="10.99.0.1"
        )
        result = sweep_session(
            lab_session, k=2, kinds=("link", "interface"), prop=prop
        )
        pair = result.outcome("iface:r1[Ethernet0]+iface:r2[Ethernet0]")
        assert pair is not None
        assert pair.status == PRUNED_FINGERPRINT
        rep = result.outcome(pair.representative)
        assert rep is not None
        assert rep.status == EVALUATED
        assert pair.verdict.canonical() == rep.verdict.canonical()

    def test_minimal_sets_are_spofs_on_the_chain(self, lab_session):
        result = sweep_session(
            lab_session, k=1, kinds=("link",), prop=CHAIN_PROP
        )
        assert result.single_points_of_failure() == [
            ("link:r1[Ethernet0]--r2[Ethernet0]",),
            ("link:r2[Ethernet1]--r3[Ethernet0]",),
        ]

    def test_k2_supersets_of_spofs_not_minimal(self, lab_session):
        result = sweep_session(
            lab_session, k=2, kinds=("link",), prop=CHAIN_PROP
        )
        chain = {
            "link:r1[Ethernet0]--r2[Ethernet0]",
            "link:r2[Ethernet1]--r3[Ethernet0]",
        }
        for failing_set in result.minimal_failing_sets:
            members = set(failing_set)
            # any failing pair containing a SPOF is shadowed by it
            if len(members) > 1:
                assert not members & chain

    def test_progress_callback_sees_final_total(self, lab_session):
        seen = []
        result = sweep_session(
            lab_session,
            k=1,
            prop=CHAIN_PROP,
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen, "progress callback never invoked"
        done, total = seen[-1]
        assert total == result.stats.scenarios
        assert done == total

    def test_base_broken_short_circuits(self, lab_session):
        prop = ReachabilityProperty(
            src_node="island1", src_interface="Ethernet0", dst_ip="10.99.0.1"
        )
        result = sweep_session(lab_session, k=1, prop=prop)
        assert result.base_broken
        assert result.minimal_failing_sets == []

    def test_requires_configs(self, lab_configs):
        session = Session.from_texts(lab_configs, cache=False)
        session._configs = None
        with pytest.raises(ValueError, match="config"):
            sweep_session(session, k=1, prop=CHAIN_PROP)

    def test_limit_truncates(self, lab_session):
        result = sweep_session(
            lab_session, k=2, kinds=("link",), prop=CHAIN_PROP, limit=4
        )
        assert result.stats.scenarios == 4
        assert result.stats.truncated == 2

    def test_to_json_schema(self, lab_session):
        body = sweep_session(lab_session, k=1, prop=CHAIN_PROP).to_json()
        assert body["schema"] == "repro-sweep/v1"
        assert body["k"] == 1
        assert body["base_verdict"]["holds"] is True
        assert len(body["scenarios"]) == body["stats"]["scenarios"]
        assert isinstance(body["minimal_failing_sets"], list)


class TestSweepCacheDiscipline:
    def test_scenario_dataplanes_stay_out_of_cache(self, lab_configs, tmp_path):
        cache_dir = tmp_path / "cache"
        session = Session.from_texts(lab_configs, cache=str(cache_dir))
        session.dataplane  # materialize the base entries

        def heavy(entries):
            # per-device parse entries are content-addressed and cheap;
            # the discipline is about snapshots and data planes
            return sorted(
                e
                for e in entries
                if e.startswith("snapshot-") or e.startswith("dataplane-")
            )

        before = heavy(os.listdir(cache_dir))
        result = sweep_session(session, k=1, prop=CHAIN_PROP)
        assert result.stats.evaluated > 0
        after = heavy(os.listdir(cache_dir))
        assert after == before, "sweep leaked scenario entries into the cache"

    def test_base_entries_survive_sweep(self, lab_configs, tmp_path):
        cache_dir = tmp_path / "cache"
        session = Session.from_texts(lab_configs, cache=str(cache_dir))
        session.dataplane
        sweep_session(session, k=1, prop=CHAIN_PROP)
        # a fresh session over the same configs warm-starts from cache
        warm = Session.from_texts(lab_configs, cache=str(cache_dir))
        assert warm.dataplane.converged


class TestMinimalFailingSets:
    def _outcome(self, elements, holds):
        class Stub:
            pass

        stub = Stub()
        stub.elements = tuple(elements)
        stub.verdict = type("V", (), {"holds": holds})()
        return stub

    def test_brute_semantics_on_synthetic_lattice(self):
        outcomes = [
            self._outcome(("a",), True),
            self._outcome(("b",), False),
            self._outcome(("a", "b"), False),
            self._outcome(("a", "c"), False),
            self._outcome(("c",), True),
        ]
        sets = minimal_failing_sets(outcomes, base_holds=True)
        assert sorted(sorted(s) for s in sets) == [["a", "c"], ["b"]]

    def test_base_broken_returns_empty(self):
        outcomes = [self._outcome(("a",), False)]
        assert minimal_failing_sets(outcomes, base_holds=False) == []
