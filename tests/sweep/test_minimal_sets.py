"""Property-based checks for minimal-failing-set extraction.

The satellite contract: every reported minimal set actually breaks the
property, and every enumerated proper subset of it does not — both on
randomized subset lattices (routing is not monotone, so failure labels
are arbitrary booleans) and cross-checked against brute-force
simulation on a small registry network.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.session import Session
from repro.sweep import minimal_failing_sets, sweep_session
from repro.sweep.scenarios import evaluate_property
from repro.synth.networks import network_by_name

ELEMENTS = ("a", "b", "c", "d", "e")


class _Outcome:
    """The duck type minimal_failing_sets consumes."""

    def __init__(self, elements, holds):
        self.elements = tuple(sorted(elements))
        self.verdict = type("V", (), {"holds": holds})()


def _universe(k):
    subsets = []
    for size in range(1, k + 1):
        subsets.extend(itertools.combinations(ELEMENTS, size))
    return subsets


@st.composite
def labeled_lattices(draw):
    """A k<=3 subset universe with arbitrary holds/fails labels —
    deliberately NOT monotone, like real routing under failures."""
    k = draw(st.integers(min_value=1, max_value=3))
    subsets = _universe(k)
    labels = draw(
        st.lists(
            st.booleans(), min_size=len(subsets), max_size=len(subsets)
        )
    )
    return [
        _Outcome(subset, holds)
        for subset, holds in zip(subsets, labels)
    ]


@given(labeled_lattices())
@settings(max_examples=200, deadline=None)
def test_minimal_sets_match_brute_force_definition(outcomes):
    reported = minimal_failing_sets(outcomes, base_holds=True)

    failing = {
        frozenset(o.elements) for o in outcomes if not o.verdict.holds
    }
    # 1. every reported set breaks the property
    for s in reported:
        assert frozenset(s) in failing
    # 2. no enumerated proper subset of a reported set fails
    for s in reported:
        for other in failing:
            assert not other < frozenset(s)
    # 3. completeness: every failing set with no failing proper subset
    #    is reported, exactly once
    expected = {
        f for f in failing if not any(o < f for o in failing)
    }
    assert {frozenset(s) for s in reported} == expected
    assert len(reported) == len(expected)
    # 4. deterministic order: by size, then lexicographically
    keys = [(len(s), tuple(sorted(s))) for s in reported]
    assert keys == sorted(keys)


@given(labeled_lattices())
@settings(max_examples=50, deadline=None)
def test_broken_base_dominates_everything(outcomes):
    assert minimal_failing_sets(outcomes, base_holds=False) == []


def test_cross_check_against_brute_force_on_registry_network():
    """On NET1 the sweep's minimal sets must agree with an independent
    from-scratch simulation of every enumerated scenario."""
    configs = network_by_name("NET1").generate(1)
    session = Session.from_texts(configs, cache=False)
    result = sweep_session(
        session, k=2, kinds=("link",), max_elements=5
    )
    assert not result.base_broken

    def brute_holds(outcome):
        plan_session = Session.from_texts(configs, cache=False)
        changed = {}
        from repro.sweep.scenarios import render_scenario_edits

        scenario = next(
            o.scenario
            for o in _scenarios(session, result)
            if o.scenario.scenario_id == outcome
        )
        changed = render_scenario_edits(
            plan_session.snapshot, configs, scenario
        )
        merged = dict(configs)
        merged.update(changed)
        broken = Session.from_texts(merged, cache=False)
        return evaluate_property(broken, result.prop).holds

    failing_ids = {
        frozenset(o.elements): o.scenario_id
        for o in result.outcomes
        if not o.verdict.holds
    }
    for minimal in result.minimal_failing_sets:
        key = frozenset(minimal)
        # the reported set itself fails under brute-force simulation
        assert brute_holds(failing_ids[key]) is False
        # every enumerated proper subset holds
        for outcome in result.outcomes:
            subset = frozenset(outcome.elements)
            if subset < key:
                assert outcome.verdict.holds, (
                    f"{sorted(subset)} fails yet {sorted(key)} was "
                    "reported minimal"
                )


def _scenarios(session, result):
    """Re-derive the plan entries so brute force replays the exact
    scenario universe the sweep saw."""
    from repro.sweep.prune import plan_sweep
    from repro.sweep.scenarios import enumerate_elements, enumerate_scenarios

    elements = enumerate_elements(
        session.snapshot, kinds=result.kinds, max_elements=5
    )
    scenarios, _ = enumerate_scenarios(elements, k=result.k)
    return plan_sweep(
        session.snapshot,
        session._configs,
        scenarios,
        result.prop,
        prune=False,
    ).entries
