"""Equivalence-class pruning: influence scope, physical cuts, and
config fingerprints."""

from repro.routing.topology import InterfaceId
from repro.sweep.prune import (
    EVALUATE,
    PRUNED_CUT,
    PRUNED_DISCONNECTED,
    PRUNED_FINGERPRINT,
    CutChecker,
    FingerprintMemo,
    influence_edges,
    plan_sweep,
    property_scope,
)
from repro.sweep.scenarios import (
    BASE_SCENARIO_ID,
    ReachabilityProperty,
    enumerate_elements,
    enumerate_scenarios,
)

CHAIN_PROP = ReachabilityProperty(
    src_node="r1", src_interface="Ethernet0", dst_ip="10.99.0.1"
)


class TestScope:
    def test_influence_edges_split_the_lab(self, lab_session):
        edges = influence_edges(lab_session.snapshot)
        assert ("r1", "r2") in edges
        assert ("r2", "r3") in edges
        assert ("island1", "island2") in edges
        # nothing couples the island pair to the chain
        assert not any(
            ("island" in a) != ("island" in b) for a, b in edges
        )

    def test_property_scope_excludes_islands(self, lab_session):
        scope, owners = property_scope(lab_session.snapshot, CHAIN_PROP)
        assert scope == {"r1", "r2", "r3"}
        assert owners == {"r3"}

    def test_scope_keeps_unknown_source(self, lab_session):
        prop = ReachabilityProperty(
            src_node="ghost", src_interface="Ethernet0", dst_ip="10.99.0.1"
        )
        scope, _owners = property_scope(lab_session.snapshot, prop)
        assert "ghost" in scope


class TestCutChecker:
    def _checker(self, session):
        _scope, owners = property_scope(session.snapshot, CHAIN_PROP)
        return CutChecker(session.snapshot, CHAIN_PROP, owners)

    def test_chain_link_is_a_cut(self, lab_session):
        cuts = self._checker(lab_session)
        assert cuts.severed(
            {InterfaceId("r1", "Ethernet0")}
        )  # one-sided flap severs the only path
        assert cuts.severed(
            {InterfaceId("r2", "Ethernet1"), InterfaceId("r3", "Ethernet0")}
        )

    def test_island_failure_is_not_a_cut(self, lab_session):
        cuts = self._checker(lab_session)
        assert not cuts.severed({InterfaceId("island1", "Ethernet0")})
        assert not cuts.severed(set())

    def test_src_owner_disables_check(self, lab_session):
        prop = ReachabilityProperty(
            src_node="r3", src_interface="Ethernet0", dst_ip="10.99.0.1"
        )
        cuts = CutChecker(lab_session.snapshot, prop, {"r3"})
        # src owns the destination: delivery never crosses a link, so
        # no shutdown set is provably severing.
        assert not cuts.severed({InterfaceId("r3", "Ethernet0")})

    def test_no_owners_disables_check(self, lab_session):
        prop = ReachabilityProperty(
            src_node="r1", src_interface="Ethernet0", dst_ip="203.0.113.9"
        )
        cuts = CutChecker(lab_session.snapshot, prop, set())
        assert not cuts.severed({InterfaceId("r1", "Ethernet0")})


class TestFingerprintMemo:
    def test_flap_pair_matches_link(self, lab_session, lab_configs):
        """{flap u, flap v} edits both configs exactly like the link
        element u--v: equal delta keys, one simulation."""
        memo = FingerprintMemo(lab_session.snapshot, lab_configs)
        elements = enumerate_elements(lab_session.snapshot)
        by_id = {e.element_id: e for e in elements}
        link = by_id["link:r1[Ethernet0]--r2[Ethernet0]"]
        flap_a = by_id["iface:r1[Ethernet0]"]
        flap_b = by_id["iface:r2[Ethernet0]"]
        link_scenarios, _ = enumerate_scenarios([link], k=1)
        pair_scenarios, _ = enumerate_scenarios([flap_a, flap_b], k=2)
        pair = pair_scenarios[-1]
        assert len(pair.elements) == 2
        assert memo.delta_key(pair) == memo.delta_key(link_scenarios[0])
        assert memo.delta_key(pair) != memo.delta_key(
            enumerate_scenarios([flap_a], k=1)[0][0]
        )

    def test_noop_edit_has_empty_key(self, lab_session, lab_configs):
        """Toggling OSPF passive on an interface that the parser already
        treats identically yields a moved fingerprint; a genuinely inert
        scenario (no elements) yields an empty key."""
        memo = FingerprintMemo(lab_session.snapshot, lab_configs)
        empty, _ = enumerate_scenarios(
            enumerate_elements(lab_session.snapshot, kinds=("link",)), k=1
        )
        assert memo.delta_key(empty[0]) != frozenset()


class TestPlanSweep:
    def test_lab_k1_classification(self, lab_session, lab_configs):
        elements = enumerate_elements(lab_session.snapshot)
        scenarios, _ = enumerate_scenarios(elements, k=1)
        plan = plan_sweep(
            lab_session.snapshot, lab_configs, scenarios, CHAIN_PROP
        )
        by_status = {}
        for entry in plan.entries:
            by_status.setdefault(entry.status, []).append(
                entry.scenario.scenario_id
            )
        # Everything island-only is out of scope for the chain property.
        assert all(
            "island" in sid for sid in by_status[PRUNED_DISCONNECTED]
        )
        assert len(by_status[PRUNED_DISCONNECTED]) == 7
        # Every chain shutdown severs the linear topology.
        assert len(by_status[PRUNED_CUT]) == 9
        # OSPF-passive toggles don't shut anything: they simulate.
        assert sorted(by_status[EVALUATE]) == [
            "ospf-passive:r1[Ethernet0]",
            "ospf-passive:r2[Ethernet0]",
            "ospf-passive:r2[Ethernet1]",
            "ospf-passive:r3[Ethernet0]",
            "ospf-passive:r3[Ethernet1]",
        ]
        counts = plan.counts()
        assert counts[EVALUATE] == 5
        assert counts[PRUNED_CUT] == 9

    def test_evaluate_entries_carry_configs(self, lab_session, lab_configs):
        elements = enumerate_elements(lab_session.snapshot, kinds=("policy",))
        scenarios, _ = enumerate_scenarios(elements, k=1)
        plan = plan_sweep(
            lab_session.snapshot, lab_configs, scenarios, CHAIN_PROP
        )
        for entry in plan.entries:
            if entry.status == EVALUATE:
                assert entry.changed_configs
            else:
                assert entry.changed_configs is None

    def test_fingerprint_representative_is_first_seen(
        self, lab_session, lab_configs
    ):
        """With a property rooted at r2, the r1-side failures are
        neither disconnected nor cuts, so the {flap,flap} pair
        fingerprints onto its singleton link representative."""
        prop = ReachabilityProperty(
            src_node="r2", src_interface="Ethernet1", dst_ip="10.99.0.1"
        )
        elements = enumerate_elements(lab_session.snapshot)
        by_id = {e.element_id: e for e in elements}
        chosen = [
            by_id["link:r1[Ethernet0]--r2[Ethernet0]"],
            by_id["iface:r1[Ethernet0]"],
            by_id["iface:r2[Ethernet0]"],
        ]
        scenarios, _ = enumerate_scenarios(chosen, k=2)
        plan = plan_sweep(lab_session.snapshot, lab_configs, scenarios, prop)
        entry = {
            e.scenario.scenario_id: e for e in plan.entries
        }["iface:r1[Ethernet0]+iface:r2[Ethernet0]"]
        assert entry.status == PRUNED_FINGERPRINT
        assert entry.representative == "link:r1[Ethernet0]--r2[Ethernet0]"

    def test_prune_false_evaluates_everything(self, lab_session, lab_configs):
        elements = enumerate_elements(lab_session.snapshot)
        scenarios, _ = enumerate_scenarios(elements, k=1)
        plan = plan_sweep(
            lab_session.snapshot, lab_configs, scenarios, CHAIN_PROP,
            prune=False,
        )
        assert all(e.status == EVALUATE for e in plan.entries)
        assert plan.counts()[EVALUATE] == len(scenarios)

    def test_base_representative_id_reserved(self):
        assert BASE_SCENARIO_ID == "<base>"
