"""Resilience report: findings, gates, renderers, and the CLI."""

import json
import subprocess
import sys

import pytest

from repro.sweep import sweep_session
from repro.sweep.report import (
    RULE_BASE_BROKEN,
    RULE_FAILURE_SET,
    RULE_SPOF,
    SARIF_SCHEMA,
    findings_from_result,
    gate_exit_code,
    render_json,
    render_sarif,
    render_text,
    to_sarif,
)
from repro.sweep.scenarios import ReachabilityProperty, host_files

CHAIN_PROP = ReachabilityProperty(
    src_node="r1", src_interface="Ethernet0", dst_ip="10.99.0.1"
)


@pytest.fixture(scope="module")
def chain_result(lab_configs):
    from repro.core.session import Session

    session = Session.from_texts(lab_configs, cache=False)
    return sweep_session(session, k=1, kinds=("link",), prop=CHAIN_PROP)


@pytest.fixture(scope="module")
def broken_result(lab_configs):
    from repro.core.session import Session

    session = Session.from_texts(lab_configs, cache=False)
    prop = ReachabilityProperty(
        src_node="island1", src_interface="Ethernet0", dst_ip="10.99.0.1"
    )
    return sweep_session(session, k=1, kinds=("link",), prop=prop)


class TestFindings:
    def test_spofs_become_error_findings(self, chain_result, lab_session):
        findings = findings_from_result(
            chain_result, host_files(lab_session.snapshot)
        )
        assert len(findings) == 2
        assert all(f.rule_id == RULE_SPOF for f in findings)
        assert all(f.level == "error" for f in findings)
        # anchored at the config file of the first host in the element id
        assert findings[0].file in {"r1.cfg", "r2.cfg"}

    def test_base_broken_short_circuits(self, broken_result):
        findings = findings_from_result(broken_result)
        assert [f.rule_id for f in findings] == [RULE_BASE_BROKEN]
        assert findings[0].level == "error"

    def test_multi_element_sets_are_warnings(self, chain_result):
        from repro.sweep.report import ResilienceFinding  # noqa: F401
        from repro.sweep.engine import SweepResult

        doctored = SweepResult(
            prop=chain_result.prop,
            k=2,
            kinds=chain_result.kinds,
            base_verdict=chain_result.base_verdict,
            outcomes=chain_result.outcomes,
            minimal_failing_sets=[("link:a[e0]--b[e0]", "link:c[e0]--d[e0]")],
            stats=chain_result.stats,
        )
        findings = findings_from_result(doctored)
        assert [f.rule_id for f in findings] == [RULE_FAILURE_SET]
        assert findings[0].level == "warning"


class TestGate:
    def test_levels(self, chain_result, broken_result):
        spof = findings_from_result(chain_result)
        base = findings_from_result(broken_result)
        assert gate_exit_code(spof, "none") == 0
        assert gate_exit_code(spof, "base") == 0
        assert gate_exit_code(spof, "spof") == 1
        assert gate_exit_code(spof, "any") == 1
        assert gate_exit_code(base, "base") == 1
        assert gate_exit_code([], "any") == 0

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError, match="unknown --fail-on"):
            gate_exit_code([], "sometimes")


class TestRenderers:
    def test_text(self, chain_result):
        findings = findings_from_result(chain_result)
        text = render_text(chain_result, findings)
        assert "== resilience sweep ==" in text
        assert "single point of failure" in text
        assert "scenarios/s" in text

    def test_text_verbose_lists_scenarios(self, chain_result):
        text = render_text(chain_result, [], verbose=True)
        assert "per-scenario verdicts:" in text
        assert "link:r1[Ethernet0]--r2[Ethernet0]" in text

    def test_json_round_trips(self, chain_result):
        findings = findings_from_result(chain_result)
        body = json.loads(render_json(chain_result, findings))
        assert body["schema"] == "repro-sweep/v1"
        assert len(body["findings"]) == len(findings)

    def test_sarif_shape(self, chain_result, lab_session):
        findings = findings_from_result(
            chain_result, host_files(lab_session.snapshot)
        )
        sarif = to_sarif(chain_result, findings)
        assert sarif["$schema"] == SARIF_SCHEMA
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-sweep"
        assert len(run["results"]) == len(findings)
        result = run["results"][0]
        assert result["ruleId"] == RULE_SPOF
        rules = run["tool"]["driver"]["rules"]
        assert rules[result["ruleIndex"]]["id"] == result["ruleId"]
        # round-trips through json
        json.loads(render_sarif(chain_result, findings))


class TestObsReportSection:
    def test_sweep_counters_surface_in_trace_report(self):
        from repro.obs.report import TraceReport

        report = TraceReport()
        report.metrics.inc("sweep.runs")
        report.metrics.inc("sweep.scenarios", 21)
        report.metrics.inc("sweep.scenarios_evaluated", 5)
        report.metrics.inc("sweep.scenarios_pruned", 16)
        report.metrics.inc("sweep.scenarios_pruned.disconnected", 7)
        report.metrics.inc("sweep.scenarios_pruned.cut", 9)
        report.metrics.inc("sweep.minimal_sets_found", 2)
        text = report.render()
        assert "== resilience sweeps ==" in text
        assert "pruned: 16/21" in text
        body = report.to_json()
        assert body["sweep"]["sweep.scenarios"] == 21


class TestCli:
    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro.sweep", *argv],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd="/root/repo",
            timeout=240,
        )

    def test_report_text_gate_spof(self):
        proc = self._run(
            "--network", "NET1", "-k", "1", "--kinds", "link",
            "--fail-on", "none",
        )
        assert proc.returncode == 0, proc.stderr
        assert "== resilience sweep ==" in proc.stdout

    def test_report_sarif_to_file(self, tmp_path):
        out = tmp_path / "sweep.sarif"
        proc = self._run(
            "--network", "NET1", "-k", "1", "--kinds", "link",
            "--format", "sarif", "--out", str(out), "--fail-on", "none",
        )
        assert proc.returncode == 0, proc.stderr
        sarif = json.loads(out.read_text())
        assert sarif["version"] == "2.1.0"

    def test_fail_on_any_exits_nonzero_when_findings(self):
        proc = self._run(
            "--network", "NET1", "-k", "1", "--fail-on", "any",
        )
        # NET1 has single points of failure, so the gate trips
        assert proc.returncode == 1, proc.stdout + proc.stderr

    def test_validate_smoke_single_network(self):
        proc = self._run(
            "validate", "--networks", "NET1", "-k", "1",
            "--max-elements", "4",
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "1 network(s)" in proc.stdout
        assert "0 failed" in proc.stdout
