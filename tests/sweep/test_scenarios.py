"""Scenario enumeration, edit rendering, and verdicts."""

import pytest

from repro.config.loader import parse_config_text
from repro.core.session import Session
from repro.sweep.scenarios import (
    ALL_KINDS,
    BASE_SCENARIO_ID,
    ReachabilityProperty,
    Verdict,
    default_property,
    enumerate_elements,
    enumerate_scenarios,
    evaluate_property,
    host_files,
    render_scenario_edits,
)


class TestEnumerateElements:
    def test_all_kinds_on_lab(self, lab_session):
        elements = enumerate_elements(lab_session.snapshot)
        ids = [e.element_id for e in elements]
        assert ids == sorted(ids)
        # 3 links (r1-r2, r2-r3, island pair), 5 nodes, 6 topology
        # interfaces, 7 ospf-active interfaces (r3[Ethernet1] is on the
        # topology-free host subnet but still runs OSPF).
        assert sum(1 for i in ids if i.startswith("link:")) == 3
        assert sum(1 for i in ids if i.startswith("node:")) == 5
        assert sum(1 for i in ids if i.startswith("iface:")) == 6
        assert sum(1 for i in ids if i.startswith("ospf-passive:")) == 7

    def test_kind_filter(self, lab_session):
        links = enumerate_elements(lab_session.snapshot, kinds=("link",))
        assert [e.element_id for e in links] == [
            "link:island1[Ethernet0]--island2[Ethernet0]",
            "link:r1[Ethernet0]--r2[Ethernet0]",
            "link:r2[Ethernet1]--r3[Ethernet0]",
        ]
        # A link shuts both endpoints; an interface flap only one.
        assert all(len(e.ops) == 2 for e in links)
        flaps = enumerate_elements(lab_session.snapshot, kinds=("interface",))
        assert all(len(e.ops) == 1 for e in flaps)

    def test_unknown_kind_raises(self, lab_session):
        with pytest.raises(ValueError, match="unknown element kind"):
            enumerate_elements(lab_session.snapshot, kinds=("link", "bogus"))

    def test_max_elements_truncates_deterministically(self, lab_session):
        full = enumerate_elements(lab_session.snapshot)
        capped = enumerate_elements(lab_session.snapshot, max_elements=4)
        assert capped == full[:4]

    def test_deterministic_across_parses(self, lab_configs):
        a = Session.from_texts(lab_configs, cache=False)
        b = Session.from_texts(lab_configs, cache=False)
        assert enumerate_elements(a.snapshot) == enumerate_elements(b.snapshot)


class TestEnumerateScenarios:
    def test_k1_is_singletons(self, lab_session):
        elements = enumerate_elements(lab_session.snapshot, kinds=("link",))
        scenarios, truncated = enumerate_scenarios(elements, k=1)
        assert truncated == 0
        assert [s.scenario_id for s in scenarios] == [
            e.element_id for e in elements
        ]

    def test_k2_counts_and_order(self, lab_session):
        elements = enumerate_elements(lab_session.snapshot, kinds=("link",))
        scenarios, truncated = enumerate_scenarios(elements, k=2)
        assert truncated == 0
        assert len(scenarios) == 3 + 3  # C(3,1) + C(3,2)
        sizes = [len(s.elements) for s in scenarios]
        assert sizes == sorted(sizes)  # singletons before pairs
        pair = scenarios[-1]
        assert pair.scenario_id == "+".join(pair.element_ids())

    def test_limit_reports_truncation(self, lab_session):
        elements = enumerate_elements(lab_session.snapshot, kinds=("link",))
        scenarios, truncated = enumerate_scenarios(elements, k=2, limit=4)
        assert len(scenarios) == 4
        assert truncated == 2

    def test_k_zero_rejected(self, lab_session):
        elements = enumerate_elements(lab_session.snapshot, kinds=("link",))
        with pytest.raises(ValueError, match="k must be >= 1"):
            enumerate_scenarios(elements, k=0)


class TestRenderEdits:
    def test_cisco_shutdown_parses_and_disables(self, lab_session, lab_configs):
        (element,) = [
            e
            for e in enumerate_elements(lab_session.snapshot, kinds=("interface",))
            if e.element_id == "iface:r1[Ethernet0]"
        ]
        scenarios, _ = enumerate_scenarios([element], k=1)
        changed = render_scenario_edits(
            lab_session.snapshot, lab_configs, scenarios[0]
        )
        assert set(changed) == {"r1.cfg"}
        assert changed["r1.cfg"].startswith(lab_configs["r1.cfg"])  # append-only
        device, _ = parse_config_text(changed["r1.cfg"])
        assert device.interfaces["Ethernet0"].enabled is False
        # the address survives the appended shutdown stanza
        assert device.interfaces["Ethernet0"].address is not None

    def test_cisco_ospf_passive(self, lab_session, lab_configs):
        (element,) = [
            e
            for e in enumerate_elements(lab_session.snapshot, kinds=("policy",))
            if e.element_id == "ospf-passive:r2[Ethernet0]"
        ]
        scenarios, _ = enumerate_scenarios([element], k=1)
        changed = render_scenario_edits(
            lab_session.snapshot, lab_configs, scenarios[0]
        )
        device, _ = parse_config_text(changed["r2.cfg"])
        assert device.interfaces["Ethernet0"].ospf_passive is True
        assert device.interfaces["Ethernet0"].enabled is True
        assert device.interfaces["Ethernet1"].ospf_passive is False

    def test_juniper_edits_parse(self):
        configs = {
            "j1.cfg": (
                "set system host-name j1\n"
                "set interfaces ge-0/0/0 unit 0 family inet address 10.0.1.1/30\n"
                "set protocols ospf area 0 interface ge-0/0/0 metric 10\n"
            ),
            "j2.cfg": (
                "set system host-name j2\n"
                "set interfaces ge-0/0/0 unit 0 family inet address 10.0.1.2/30\n"
                "set protocols ospf area 0 interface ge-0/0/0 metric 10\n"
            ),
        }
        session = Session.from_texts(configs, cache=False)
        elements = enumerate_elements(session.snapshot)
        by_id = {e.element_id: e for e in elements}
        link = by_id["link:j1[ge-0/0/0]--j2[ge-0/0/0]"]
        scenarios, _ = enumerate_scenarios([link], k=1)
        changed = render_scenario_edits(session.snapshot, configs, scenarios[0])
        assert set(changed) == {"j1.cfg", "j2.cfg"}
        assert "set interfaces ge-0/0/0 disable" in changed["j1.cfg"]
        device, _ = parse_config_text(changed["j1.cfg"])
        assert device.interfaces["ge-0/0/0"].enabled is False

        passive = by_id["ospf-passive:j1[ge-0/0/0]"]
        scenarios, _ = enumerate_scenarios([passive], k=1)
        changed = render_scenario_edits(session.snapshot, configs, scenarios[0])
        device, _ = parse_config_text(changed["j1.cfg"])
        assert device.interfaces["ge-0/0/0"].ospf_passive is True

    def test_multi_element_scenario_merges_per_host(
        self, lab_session, lab_configs
    ):
        elements = enumerate_elements(lab_session.snapshot, kinds=("interface",))
        r2_flaps = [e for e in elements if "r2" in e.element_id]
        assert len(r2_flaps) == 2
        scenarios, _ = enumerate_scenarios(r2_flaps, k=2)
        both = scenarios[-1]
        changed = render_scenario_edits(lab_session.snapshot, lab_configs, both)
        assert set(changed) == {"r2.cfg"}
        device, _ = parse_config_text(changed["r2.cfg"])
        assert device.interfaces["Ethernet0"].enabled is False
        assert device.interfaces["Ethernet1"].enabled is False


class TestHostFiles:
    def test_maps_every_host(self, lab_session):
        files = host_files(lab_session.snapshot)
        assert files["r1"] == "r1.cfg"
        assert set(files) == {"r1", "r2", "r3", "island1", "island2"}


class TestVerdicts:
    def test_canonical_is_holds_only(self):
        a = Verdict(holds=True, converged=True, dispositions=("accepted",), paths=2)
        b = Verdict(holds=True, converged=None)
        assert a.canonical() == b.canonical()
        assert a.canonical() != Verdict(holds=False).canonical()

    def test_to_json_omits_unsimulated_fields(self):
        proved = Verdict(holds=False, converged=None)
        body = proved.to_json()
        assert body["holds"] is False
        assert "converged" not in body

    def test_evaluate_on_base(self, lab_session):
        prop = ReachabilityProperty(
            src_node="r1", src_interface="Ethernet0", dst_ip="10.99.0.1"
        )
        verdict = evaluate_property(lab_session, prop)
        assert verdict.holds is True
        assert verdict.dispositions == ("accepted",)

    def test_default_property_is_deterministic(self, lab_configs):
        a = default_property(Session.from_texts(lab_configs, cache=False))
        b = default_property(Session.from_texts(lab_configs, cache=False))
        assert a == b

    def test_base_scenario_id_reserved(self, lab_session):
        elements = enumerate_elements(lab_session.snapshot)
        assert BASE_SCENARIO_ID not in {e.element_id for e in elements}
        assert set(ALL_KINDS) == {"link", "node", "interface", "policy"}
