"""Tests for the synthetic network generators and the Table 1 registry."""

import pytest

from repro.config.loader import load_snapshot_from_texts
from repro.hdr.ip import Ip, Prefix
from repro.routing.engine import compute_dataplane
from repro.synth.base import (
    CiscoishBuilder,
    InterfaceSpec,
    JuniperishBuilder,
    NeighborSpec,
    host_subnet,
    loopback_ip,
    p2p_subnet,
)
from repro.synth.campus import campus
from repro.synth.fattree import fattree, fattree_host_subnets
from repro.synth.firewall_dc import enterprise_firewall, paired_dc
from repro.synth.isp import isp
from repro.synth.networks import (
    NETWORKS,
    apt_comparison_network,
    network_by_name,
)
from repro.synth.special import figure1a, figure1b, net1
from repro.synth.wan import wan


class TestBuilders:
    def test_ciscoish_render_parses_clean(self):
        builder = CiscoishBuilder("r1")
        builder.router_id("1.1.1.1")
        builder.interface(
            InterfaceSpec("Ethernet0", "10.0.0.1", 24, ospf_area=0,
                          ospf_cost=10, acl_in="A", description="test")
        )
        builder.acl("A", ["permit ip any any"])
        builder.static("0.0.0.0/0", "10.0.0.2")
        builder.bgp(65000)
        builder.bgp_neighbor(NeighborSpec(peer_ip="10.0.0.2", remote_as=65001))
        builder.ntp("192.0.2.1")
        snapshot = load_snapshot_from_texts({"r1": builder.render()})
        assert snapshot.warnings == []
        device = snapshot.device("r1")
        assert device.interfaces["Ethernet0"].ospf_cost == 10
        assert device.bgp.local_as == 65000

    def test_juniperish_render_parses_clean(self):
        builder = JuniperishBuilder("r2")
        builder.router_id("2.2.2.2")
        builder.interface(
            InterfaceSpec("ge-0/0/0", "10.0.0.2", 24, ospf_area=0,
                          acl_in="F")
        )
        builder.filter_term("F", "all", froms=["protocol tcp"], then="accept")
        builder.bgp_local_as(65001)
        builder.bgp_neighbor(NeighborSpec(peer_ip="10.0.0.1", remote_as=65000))
        builder.static("0.0.0.0/0", "10.0.0.1")
        snapshot = load_snapshot_from_texts({"r2": builder.render()})
        assert snapshot.warnings == []
        assert snapshot.device("r2").vendor == "juniperish"

    def test_p2p_subnet_deterministic_and_disjoint(self):
        a1, b1, plen = p2p_subnet(1, 0)
        a2, b2, _ = p2p_subnet(1, 1)
        assert plen == 30
        assert a1 != a2
        assert Prefix(Ip(a1).value, 30) != Prefix(Ip(a2).value, 30)
        assert p2p_subnet(1, 0) == (a1, b1, 30)

    def test_p2p_subnet_range_check(self):
        with pytest.raises(ValueError):
            p2p_subnet(1, 1 << 14)

    def test_host_subnet_and_loopback(self):
        assert host_subnet(0, 0) == Prefix("172.16.0.0/24")
        assert loopback_ip(1) == "192.168.0.1"


class TestFatTree:
    def test_structure(self):
        configs = fattree(k=4)
        assert len(configs) == 4 + 8 + 8  # cores + aggs + edges

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            fattree(k=3)

    def test_host_subnets_unique(self):
        subnets = fattree_host_subnets(8)
        assert len(subnets) == len(set(subnets))

    def test_all_sessions_establish(self):
        dataplane = compute_dataplane(load_snapshot_from_texts(fattree(4)))
        assert dataplane.session_issues == []
        assert all(s.established for s in dataplane.sessions)

    def test_ecmp_present(self):
        """Core-level multipath: an edge should have multiple equal BGP
        paths to a remote pod's subnet."""
        dataplane = compute_dataplane(load_snapshot_from_texts(fattree(4)))
        subnets = fattree_host_subnets(4)
        match = dataplane.main_rib("edge0-0").longest_match(
            subnets[-1].first_ip
        )
        assert match is not None
        assert len(match[1]) >= 2  # maximum-paths in effect

    def test_mixed_vendor_parses_clean(self):
        snapshot = load_snapshot_from_texts(
            fattree(4, vendors=("ciscoish", "juniperish"))
        )
        vendors = {d.vendor for d in snapshot.devices.values()}
        assert vendors == {"ciscoish", "juniperish"}
        assert snapshot.warnings == []


class TestOtherGenerators:
    @pytest.mark.parametrize(
        "generate",
        [
            lambda: wan(2, 4, 1),
            lambda: campus(2, 2),
            lambda: campus(2, 2, vendors=("ciscoish", "juniperish")),
            lambda: isp(3, 4, 1),
            lambda: enterprise_firewall(2),
            lambda: paired_dc(4),
            lambda: net1(3),
            figure1a,
        ],
        ids=["wan", "campus", "campus-mixed", "isp", "firewall", "paired-dc",
             "net1", "fig1a"],
    )
    def test_generates_clean_convergent_network(self, generate):
        snapshot = load_snapshot_from_texts(generate())
        assert snapshot.warnings == [], [
            (w.text, w.comment) for w in snapshot.warnings[:3]
        ]
        dataplane = compute_dataplane(snapshot)
        assert dataplane.converged
        assert dataplane.stats.total_routes > 0

    def test_figure1b_is_the_paper_pattern(self):
        from repro.routing.engine import ConvergenceSettings

        snapshot = load_snapshot_from_texts(figure1b())
        lockstep = compute_dataplane(
            snapshot, ConvergenceSettings(schedule="lockstep", max_iterations=40)
        )
        assert not lockstep.converged

    def test_paired_dc_cross_reachability(self):
        dataplane = compute_dataplane(load_snapshot_from_texts(paired_dc(4)))
        match = dataplane.main_rib("edge0-0").longest_match(Ip("172.24.0.5"))
        assert match is not None
        # The cross-DC AS path passes through both DC cores.
        route = match[1][0]
        assert 64901 in route.as_path

    def test_isp_policy_prefers_customers(self):
        """Gao-Rexford: customer routes carry local-pref 200, peer
        routes 100, and peers only hear customer routes."""
        dataplane = compute_dataplane(load_snapshot_from_texts(isp(3, 4, 2)))
        core = dataplane.nodes["isp0"]
        customer_route = core.main_rib.longest_match(Ip("100.64.0.1"))
        assert customer_route is not None
        best = customer_route[1][0]
        assert best.local_pref == 200
        assert "64600:100" in best.communities
        # Peers must not receive other peers' routes.
        peer0 = dataplane.nodes["peer0"]
        other_peer_prefix = Ip("100.129.0.1")  # peer1's prefix
        assert peer0.main_rib.longest_match(other_peer_prefix) is None
        # But they do receive customer routes.
        assert peer0.main_rib.longest_match(Ip("100.64.0.1")) is not None


class TestRegistry:
    def test_eleven_networks(self):
        assert len(NETWORKS) == 11
        assert [spec.name for spec in NETWORKS] == [
            f"NET{i}" for i in range(1, 12)
        ]

    def test_lookup(self):
        assert network_by_name("NET5").network_type.startswith("WAN")
        with pytest.raises(KeyError):
            network_by_name("NET99")

    def test_type_diversity(self):
        types = {spec.network_type for spec in NETWORKS}
        assert len(types) >= 8  # diverse, like Table 1

    def test_apt_network_is_92_devices(self):
        assert len(apt_comparison_network()) == 92

    def test_scale_knob_grows_networks(self):
        small = network_by_name("NET5").generate(1)
        large = network_by_name("NET5").generate(2)
        assert len(large) > len(small)
