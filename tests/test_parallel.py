"""Tests for the fork-safe process-pool map (repro.parallel)."""

import multiprocessing
import os

import pytest

from repro.parallel import chunked, default_jobs, fork_available, pmap


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("boom")
    return x


def _pid_of(_x):
    return os.getpid()


def test_pmap_preserves_input_order():
    items = list(range(40))
    assert pmap(_square, items, jobs=4) == [x * x for x in items]


def test_pmap_serial_fallback_small_input():
    # Below min_items the pool is skipped entirely; results identical.
    assert pmap(_square, [1, 2], jobs=4, min_items=8) == [1, 4]


def test_pmap_jobs_one_is_serial():
    # jobs=1 must not fork: every "worker" is this process.
    pids = set(pmap(_pid_of, list(range(10)), jobs=1, min_items=1))
    assert pids == {os.getpid()}


def test_pmap_supports_closures_serially():
    # Serial paths accept closures (the pool path requires module-level
    # callables, which every production call site uses).
    offset = 7
    assert pmap(lambda x: x + offset, [1, 2, 3], jobs=1) == [8, 9, 10]


def test_pmap_propagates_exceptions():
    with pytest.raises(ValueError, match="boom"):
        pmap(_fail_on_three, [1, 2, 3, 4, 5, 6, 7, 8], jobs=2, min_items=1)


def test_pmap_empty_input():
    assert pmap(_square, [], jobs=4) == []


@pytest.mark.skipif(not fork_available(), reason="requires fork start method")
def test_pmap_matches_serial_results():
    items = list(range(100))
    assert pmap(_square, items, jobs=4, min_items=1) == pmap(
        _square, items, jobs=1
    )


def test_default_jobs_env_knob(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert default_jobs() == 3
    monkeypatch.setenv("REPRO_JOBS", "not-a-number")
    with pytest.raises(ValueError, match="REPRO_JOBS"):
        default_jobs()
    monkeypatch.delenv("REPRO_JOBS")
    assert default_jobs() == (os.cpu_count() or 1)


def test_default_jobs_zero_means_cpu_count(monkeypatch):
    # REPRO_JOBS=0 (or any non-positive value) explicitly requests the
    # CPU count, overriding a pinned value without unsetting the var.
    monkeypatch.setenv("REPRO_JOBS", "0")
    assert default_jobs() == (os.cpu_count() or 1)
    monkeypatch.setenv("REPRO_JOBS", "-2")
    assert default_jobs() == (os.cpu_count() or 1)


def test_pmap_merges_worker_metrics(tmp_path):
    # With obs enabled, pool workers ship their metric deltas back and
    # the parent merges them: counters must reflect every item exactly
    # once, and pmap emits fan-out telemetry.
    if not fork_available():
        pytest.skip("requires fork start method")
    from repro import obs

    obs.disable()
    obs.reset()
    obs.enable()
    try:
        assert pmap(_count_item, list(range(20)), jobs=4, min_items=1) == [
            x * x for x in range(20)
        ]
        metrics = obs.metrics()
        assert metrics.counter("worker.items") == 20
        assert metrics.counter("pmap.pool_calls") == 1
        assert metrics.counter("pmap.items") == 20
        assert metrics.gauge_value("pmap.jobs") == 4
        assert metrics.histogram("pmap.chunk_seconds").count >= 1
    finally:
        obs.disable()
        obs.reset()


def _count_item(x):
    from repro import obs

    obs.add("worker.items")
    return x * x


def test_chunked_covers_all_items_in_order():
    items = list(range(10))
    chunks = chunked(items, 3)
    assert [len(c) for c in chunks] == [3, 3, 3, 1]
    assert [x for chunk in chunks for x in chunk] == items


def test_pmap_inside_daemon_worker_falls_back_to_serial():
    # A pool worker is daemonic and cannot fork grandchildren; pmap
    # must detect that and run serially instead of crashing.
    if not fork_available():
        pytest.skip("requires fork start method")
    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(1) as pool:
        assert pool.map(_nested_pmap, [0]) == [[0, 1, 4, 9]]


def _nested_pmap(_x):
    return pmap(_square, [0, 1, 2, 3], jobs=4, min_items=1)
