"""Traceroute over a synthetic 3-node lab: edge -> core -> leaf.

Exercises the three canonical fates (forwarded end to end, dropped by
an ACL, no route) and pins hop sequences as stable under serial vs
parallel parsing (``REPRO_JOBS=1`` vs ``4``) — the concrete-engine
analogue of the determinism contract the BDD engine tests enforce.
"""

import pytest

from repro.config.loader import load_snapshot_from_texts
from repro.dataplane.fib import compute_fibs
from repro.hdr.ip import Ip
from repro.hdr.packet import Packet
from repro.reachability.graph import Disposition
from repro.routing.engine import compute_dataplane
from repro.traceroute.engine import TracerouteEngine

LAB3 = {
    "edge.cfg": """
hostname edge
interface eth0
 ip address 10.0.1.1 255.255.255.0
interface eth1
 ip address 10.0.12.1 255.255.255.0
ip route 10.0.2.0 255.255.255.0 10.0.12.2
ip route 10.0.23.0 255.255.255.0 10.0.12.2
""",
    "core.cfg": """
hostname core
interface eth0
 ip address 10.0.12.2 255.255.255.0
interface eth1
 ip address 10.0.23.1 255.255.255.0
 ip access-group CORE_OUT out
ip route 10.0.1.0 255.255.255.0 10.0.12.1
ip route 10.0.2.0 255.255.255.0 10.0.23.2
ip access-list extended CORE_OUT
 deny tcp any any eq 23
 permit ip any any
""",
    "leaf.cfg": """
hostname leaf
interface eth0
 ip address 10.0.23.2 255.255.255.0
interface eth1
 ip address 10.0.2.1 255.255.255.0
ip route 10.0.1.0 255.255.255.0 10.0.23.1
""",
}


def build_tracer(jobs=None):
    snapshot = load_snapshot_from_texts(LAB3, jobs=jobs)
    dataplane = compute_dataplane(snapshot)
    return TracerouteEngine(dataplane, compute_fibs(dataplane))


@pytest.fixture(scope="module")
def tracer():
    return build_tracer()


class TestLab3Dispositions:
    def test_forwarded_end_to_end(self, tracer):
        packet = Packet(
            src_ip=Ip("10.0.1.5"), dst_ip=Ip("10.0.2.9"), dst_port=443
        )
        traces = tracer.trace(packet, "edge", "eth0")
        assert len(traces) == 1
        assert traces[0].disposition is Disposition.DELIVERED
        assert traces[0].path_nodes() == ["edge", "core", "leaf"]

    def test_acl_drop_at_core_egress(self, tracer):
        packet = Packet(
            src_ip=Ip("10.0.1.5"), dst_ip=Ip("10.0.2.9"), dst_port=23
        )
        traces = tracer.trace(packet, "edge", "eth0")
        assert traces[0].disposition is Disposition.DENIED_OUT
        assert traces[0].path_nodes() == ["edge", "core"]
        acl_steps = [
            step.detail
            for hop in traces[0].hops
            for step in hop.steps
            if step.kind == "acl"
        ]
        assert any("CORE_OUT" in detail for detail in acl_steps)

    def test_no_route(self, tracer):
        packet = Packet(src_ip=Ip("10.0.1.5"), dst_ip=Ip("203.0.113.7"))
        traces = tracer.trace(packet, "edge", "eth0")
        assert traces[0].disposition is Disposition.NO_ROUTE
        assert traces[0].path_nodes() == ["edge"]


class TestJobsStability:
    PACKETS = [
        Packet(src_ip=Ip("10.0.1.5"), dst_ip=Ip("10.0.2.9"), dst_port=443),
        Packet(src_ip=Ip("10.0.1.5"), dst_ip=Ip("10.0.2.9"), dst_port=23),
        Packet(src_ip=Ip("10.0.1.5"), dst_ip=Ip("203.0.113.7")),
    ]

    @staticmethod
    def hop_transcript(tracer) -> list:
        transcript = []
        for packet in TestJobsStability.PACKETS:
            for trace in tracer.trace(packet, "edge", "eth0"):
                transcript.append(
                    (trace.disposition.value, tuple(trace.path_nodes()))
                )
        return transcript

    def test_hops_identical_serial_vs_parallel(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "1")
        serial = self.hop_transcript(build_tracer(jobs=1))
        monkeypatch.setenv("REPRO_JOBS", "4")
        parallel = self.hop_transcript(build_tracer(jobs=4))
        assert serial == parallel
        assert len(serial) == 3
