"""Tests for the concrete traceroute engine, including multipath, loops,
NAT, and zone behaviour."""

import pytest

from repro.config.loader import load_snapshot_from_texts
from repro.dataplane.fib import compute_fibs
from repro.hdr.ip import Ip
from repro.hdr.packet import Packet
from repro.reachability.graph import Disposition
from repro.routing.engine import compute_dataplane
from repro.synth.firewall_dc import enterprise_firewall
from repro.traceroute.engine import TracerouteEngine

CHAIN = {
    "r1": """
hostname r1
interface i0
 ip address 10.0.1.1 255.255.255.0
interface i1
 ip address 10.0.12.1 255.255.255.0
 ip access-group NO_TELNET out
ip route 10.0.2.0 255.255.255.0 10.0.12.2
ip route 172.31.0.0 255.255.0.0 Null0
ip access-list extended NO_TELNET
 deny tcp any any eq 23
 permit ip any any
""",
    "r2": """
hostname r2
interface i0
 ip address 10.0.2.1 255.255.255.0
interface i1
 ip address 10.0.12.2 255.255.255.0
 ip access-group NO_BAD_SRC in
ip route 10.0.1.0 255.255.255.0 10.0.12.1
ip access-list extended NO_BAD_SRC
 deny ip 10.99.0.0 0.0.255.255 any
 permit ip any any
""",
}

LOOP = {
    "a": """
hostname a
interface i0
 ip address 10.0.0.1 255.255.255.0
ip route 192.168.0.0 255.255.0.0 10.0.0.2
""",
    "b": """
hostname b
interface i0
 ip address 10.0.0.2 255.255.255.0
ip route 192.168.0.0 255.255.0.0 10.0.0.1
""",
}


@pytest.fixture(scope="module")
def tracer():
    dataplane = compute_dataplane(load_snapshot_from_texts(CHAIN))
    return TracerouteEngine(dataplane, compute_fibs(dataplane))


class TestBasics:
    def test_delivered(self, tracer):
        packet = Packet(src_ip=Ip("10.0.1.5"), dst_ip=Ip("10.0.2.9"), dst_port=80)
        traces = tracer.trace(packet, "r1", "i0")
        assert len(traces) == 1
        assert traces[0].disposition is Disposition.DELIVERED
        assert traces[0].path_nodes() == ["r1", "r2"]

    def test_accepted_at_router(self, tracer):
        packet = Packet(src_ip=Ip("10.0.1.5"), dst_ip=Ip("10.0.12.2"))
        traces = tracer.trace(packet, "r1", "i0")
        assert traces[0].disposition is Disposition.ACCEPTED
        assert traces[0].hops[-1].node == "r2"

    def test_no_route(self, tracer):
        packet = Packet(src_ip=Ip("10.0.1.5"), dst_ip=Ip("203.0.113.1"))
        traces = tracer.trace(packet, "r1", "i0")
        assert traces[0].disposition is Disposition.NO_ROUTE

    def test_null_routed(self, tracer):
        packet = Packet(src_ip=Ip("10.0.1.5"), dst_ip=Ip("172.31.1.1"))
        traces = tracer.trace(packet, "r1", "i0")
        assert traces[0].disposition is Disposition.NULL_ROUTED

    def test_denied_out(self, tracer):
        packet = Packet(src_ip=Ip("10.0.1.5"), dst_ip=Ip("10.0.2.9"), dst_port=23)
        traces = tracer.trace(packet, "r1", "i0")
        assert traces[0].disposition is Disposition.DENIED_OUT
        assert traces[0].path_nodes() == ["r1"]

    def test_denied_in_at_receiver(self, tracer):
        packet = Packet(src_ip=Ip("10.99.1.1"), dst_ip=Ip("10.0.2.9"), dst_port=80)
        traces = tracer.trace(packet, "r1", "i0")
        assert traces[0].disposition is Disposition.DENIED_IN
        assert traces[0].hops[-1].node == "r2"

    def test_trace_records_acl_details(self, tracer):
        packet = Packet(src_ip=Ip("10.0.1.5"), dst_ip=Ip("10.0.2.9"), dst_port=23)
        trace = tracer.trace(packet, "r1", "i0")[0]
        acl_steps = [
            step.detail
            for hop in trace.hops
            for step in hop.steps
            if step.kind == "acl"
        ]
        assert any("NO_TELNET" in detail for detail in acl_steps)


class TestLoop:
    def test_loop_detected(self):
        dataplane = compute_dataplane(load_snapshot_from_texts(LOOP))
        tracer = TracerouteEngine(dataplane, compute_fibs(dataplane))
        packet = Packet(src_ip=Ip("10.0.0.9"), dst_ip=Ip("192.168.1.1"))
        traces = tracer.trace(packet, "a", "i0")
        assert traces[0].disposition is Disposition.LOOP


class TestMultipath:
    CONFIGS = {
        "src": """
hostname src
interface i0
 ip address 10.0.0.1 255.255.255.0
interface i1
 ip address 10.1.0.1 255.255.255.0
interface i2
 ip address 10.2.0.1 255.255.255.0
ip route 192.168.0.0 255.255.0.0 10.1.0.2
ip route 192.168.0.0 255.255.0.0 10.2.0.2
""",
        "left": """
hostname left
interface i0
 ip address 10.1.0.2 255.255.255.0
interface i1
 ip address 192.168.1.1 255.255.255.0
""",
        "right": """
hostname right
interface i0
 ip address 10.2.0.2 255.255.255.0
interface i1
 ip address 192.168.1.2 255.255.255.0
""",
    }

    def test_ecmp_produces_multiple_traces(self):
        dataplane = compute_dataplane(load_snapshot_from_texts(self.CONFIGS))
        tracer = TracerouteEngine(dataplane, compute_fibs(dataplane))
        packet = Packet(src_ip=Ip("10.0.0.9"), dst_ip=Ip("192.168.1.77"))
        traces = tracer.trace(packet, "src", "i0")
        assert len(traces) == 2
        last_nodes = {trace.hops[-1].node for trace in traces}
        assert last_nodes == {"left", "right"}
        assert all(t.disposition is Disposition.DELIVERED for t in traces)


class TestNatAndZones:
    def test_nat_and_zone_steps_recorded(self):
        snapshot = load_snapshot_from_texts(enterprise_firewall(2))
        dataplane = compute_dataplane(snapshot)
        tracer = TracerouteEngine(dataplane, compute_fibs(dataplane))
        packet = Packet(
            src_ip=Ip("172.28.0.10"), dst_ip=Ip("198.18.0.1"), dst_port=443,
        )
        traces = tracer.trace(packet, "inside0", "Vlan10")
        assert traces[0].disposition is Disposition.EXITS_NETWORK
        assert traces[0].final_packet.src_ip != packet.src_ip  # NAT'd
        kinds = {
            step.kind for hop in traces[0].hops for step in hop.steps
        }
        assert "nat" in kinds and "zone" in kinds

    def test_zone_policy_denies(self):
        snapshot = load_snapshot_from_texts(enterprise_firewall(2))
        dataplane = compute_dataplane(snapshot)
        tracer = TracerouteEngine(dataplane, compute_fibs(dataplane))
        packet = Packet(
            src_ip=Ip("172.28.0.10"), dst_ip=Ip("198.18.0.1"), dst_port=23,
        )
        traces = tracer.trace(packet, "inside0", "Vlan10")
        assert traces[0].disposition is Disposition.DENIED_OUT
